//! Event-driven free-running ring oscillator.
//!
//! The entropy source of the paper (Figure 2): an `n`-stage ring of one
//! NAND (enable) plus buffers, implemented in LUTs. Every stage
//! traversal adds the stage's deterministic, process-varied delay plus
//! run-time noise (white thermal jitter — the entropy source —,
//! optional flicker, global modulation and attacker injection; see
//! [`crate::noise`]).
//!
//! For an odd inverting ring exactly one transition circulates in
//! steady state, so the simulation is a single-event loop: node `i`
//! toggles, then stage `i+1` schedules its own toggle one noisy stage
//! delay later. Each node keeps an [`EdgeTrain`] covering a bounded
//! recent window so that the tapped delay lines can look back in time.
//!
//! For very long accumulation times (the elementary-TRNG comparison
//! runs to microseconds per bit) a closed-form *fast-forward* jumps
//! whole ring traversals using the exact distribution of the elapsed
//! time (sum of i.i.d. Gaussian stage delays). Fast-forward is only
//! available for white-only noise; time-correlated sources require the
//! exact event path.

use crate::edge_train::{EdgeCursor, EdgeTrain, SignalSource};
use crate::noise::{NoiseBackend, NoiseConfig, StageNoise};
use crate::primitives::LutDelay;
use crate::process::{DeviceSeed, ProcessVariation};
use crate::rng::SimRng;
use crate::time::Ps;

/// Configuration of a ring oscillator.
#[derive(Debug, Clone)]
pub struct RingOscillatorConfig {
    /// Number of stages `n` (must be odd so the ring oscillates).
    pub stages: usize,
    /// Nominal per-stage delay `d0`.
    pub stage_delay: Ps,
    /// Noise environment.
    pub noise: NoiseConfig,
    /// Process variation magnitudes.
    pub process: ProcessVariation,
    /// Device identity (freezes process variation).
    pub device: DeviceSeed,
    /// Fabric sites of the stage LUTs: `(x, y)` of stage 0; stage `i`
    /// is at `(x + 2*i, y)` matching [`TrngPlacement`](crate::placement::TrngPlacement)'s one column per
    /// line layout.
    pub base_site: (u64, u64),
    /// How much transition history each node retains.
    pub history_window: Ps,
    /// How noise variates are synthesised ([`NoiseBackend::Scalar`]
    /// is the replay-exact default; [`NoiseBackend::Batched`] swaps
    /// Gaussian draws to the block ziggurat).
    pub backend: NoiseBackend,
}

impl RingOscillatorConfig {
    /// The paper's configuration: `n = 3` stages of 480 ps with 2.6 ps
    /// white jitter, default process variation, 2 ns history.
    pub fn paper_default() -> Self {
        RingOscillatorConfig {
            stages: 3,
            stage_delay: Ps::from_ps(480.0),
            noise: NoiseConfig::white_only(Ps::from_ps(2.6)),
            process: ProcessVariation::default(),
            device: DeviceSeed::new(0),
            base_site: (4, 0),
            history_window: Ps::from_ns(2.0),
            backend: NoiseBackend::Scalar,
        }
    }

    /// An idealized configuration without process variation, for
    /// deterministic tests: `n` stages of exactly `stage_delay`, white
    /// sigma as given.
    pub fn ideal(stages: usize, stage_delay: Ps, white_sigma: Ps) -> Self {
        RingOscillatorConfig {
            stages,
            stage_delay,
            noise: NoiseConfig::white_only(white_sigma),
            process: ProcessVariation::NONE,
            device: DeviceSeed::new(0),
            base_site: (0, 0),
            history_window: Ps::from_ns(2.0),
            backend: NoiseBackend::Scalar,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages == 0 || self.stages.is_multiple_of(2) {
            return Err(format!(
                "ring needs an odd number of stages to oscillate, got {}",
                self.stages
            ));
        }
        if self.stage_delay.as_ps() <= 0.0 {
            return Err(format!(
                "stage delay must be positive, got {}",
                self.stage_delay
            ));
        }
        if self.history_window.as_ps() <= 0.0 {
            return Err(format!(
                "history window must be positive, got {}",
                self.history_window
            ));
        }
        Ok(())
    }
}

impl Default for RingOscillatorConfig {
    fn default() -> Self {
        RingOscillatorConfig::paper_default()
    }
}

/// Error returned when fast-forward cannot be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastForwardUnsupported;

impl core::fmt::Display for FastForwardUnsupported {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "fast-forward requires white-only noise; flicker/global/attack sources need the exact event path"
        )
    }
}

impl std::error::Error for FastForwardUnsupported {}

/// A running, free-running ring oscillator.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
/// use trng_fpga_sim::rng::SimRng;
/// use trng_fpga_sim::time::Ps;
///
/// let mut ro = RingOscillator::new(
///     RingOscillatorConfig::paper_default(),
///     SimRng::seed_from(1),
/// ).expect("valid config");
/// ro.run_until(Ps::from_ns(100.0));
/// // The ring has period ~2.88 ns; node 0 has toggled ~70 times.
/// let node0 = ro.node(0);
/// # let _ = node0;
/// ```
#[derive(Debug, Clone)]
pub struct RingOscillator {
    config: RingOscillatorConfig,
    stages: Vec<LutDelay>,
    stage_noise: Vec<StageNoise>,
    trains: Vec<EdgeTrain>,
    /// Stage index whose *output node* toggles at `next_time`.
    next_stage: usize,
    next_time: Ps,
    now: Ps,
    rng: SimRng,
}

impl RingOscillator {
    /// Creates and enables an oscillator at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns the validation message for an invalid configuration.
    pub fn new(config: RingOscillatorConfig, mut rng: SimRng) -> Result<Self, String> {
        config.validate()?;
        if config.backend == NoiseBackend::Batched {
            // Gaussian draws (white jitter, flicker innovations) switch
            // to the block ziggurat; the draw sequence changes but the
            // distributions do not.
            rng.enable_batched_normals();
        }
        let n = config.stages;
        let (bx, by) = config.base_site;
        let stages: Vec<LutDelay> = (0..n)
            .map(|i| {
                LutDelay::placed(
                    config.stage_delay,
                    config.device,
                    &config.process,
                    bx + 2 * i as u64,
                    by,
                )
            })
            .collect();
        let stage_noise: Vec<StageNoise> = (0..n)
            .map(|_| StageNoise::new(&config.noise, &mut rng))
            .collect();
        // Alternating initial levels; for odd n the inconsistency
        // between node n-1 and node 0 is the circulating transition.
        let trains: Vec<EdgeTrain> = (0..n)
            .map(|i| EdgeTrain::new(i % 2 == 1, Ps::ZERO))
            .collect();
        let mut ro = RingOscillator {
            config,
            stages,
            stage_noise,
            trains,
            next_stage: 0,
            next_time: Ps::ZERO,
            now: Ps::ZERO,
            rng,
        };
        // First event: stage 0 output toggles one stage delay after enable.
        let d = ro.draw_stage_delay(0, Ps::ZERO);
        ro.next_time = d;
        Ok(ro)
    }

    /// The configuration this oscillator was built with.
    pub fn config(&self) -> &RingOscillatorConfig {
        &self.config
    }

    /// Deterministic (noise-free) half period: one full traversal of
    /// the ring, i.e. the time between consecutive toggles of a node.
    pub fn half_period(&self) -> Ps {
        self.stages.iter().map(|s| s.delay()).sum()
    }

    /// Deterministic full period (two traversals).
    pub fn period(&self) -> Ps {
        self.half_period() * 2.0
    }

    /// Deterministic frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        1.0 / self.period().as_s()
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Processes all transitions up to and including time `t`.
    ///
    /// After the call every node's [`EdgeTrain`] is complete for
    /// queries in `(t - history_window, t]`.
    pub fn run_until(&mut self, t: Ps) {
        while self.next_time <= t {
            let stage = self.next_stage;
            let toggle_t = self.next_time;
            self.trains[stage].push(toggle_t);
            let next = (stage + 1) % self.config.stages;
            let d = self.draw_stage_delay(next, toggle_t);
            self.next_stage = next;
            self.next_time = toggle_t + d;
        }
        self.now = t;
        let keep_from = t - self.config.history_window;
        if keep_from > Ps::ZERO {
            for train in &mut self.trains {
                train.prune_before(keep_from);
            }
        }
    }

    /// Jumps ahead by whole ring traversals using the closed-form
    /// distribution of the elapsed time, then runs the exact event loop
    /// for the remaining `exact_tail` before `t`.
    ///
    /// Statistically equivalent to [`RingOscillator::run_until`] for
    /// white-only noise: the time of the `K·n`-th future transition is
    /// `sum of K·n independent N(d_i, sigma^2)` variates, which is
    /// sampled in O(1). Node levels after `K` full traversals flip iff
    /// `K` is odd.
    ///
    /// # Errors
    ///
    /// Returns [`FastForwardUnsupported`] if flicker, global or attack
    /// noise is enabled (their time correlation cannot be jumped).
    pub fn fast_forward_to(&mut self, t: Ps, exact_tail: Ps) -> Result<(), FastForwardUnsupported> {
        if !self.config.noise.is_white_only() {
            return Err(FastForwardUnsupported);
        }
        let half = self.half_period();
        let n = self.config.stages as f64;
        let sigma = self.config.noise.white.sigma().as_ps();
        // Provisional jump size with the minimal tail, then enlarge the
        // tail to 8 sigma of the jump's own spread so the (random)
        // landing point almost surely stays before `t`.
        let base_tail = exact_tail.max(self.config.history_window);
        let lead0 = (t - base_tail - self.next_time).max(Ps::ZERO);
        let k0 = (lead0 / half).floor().max(0.0);
        let spread = Ps::from_ps(8.0 * sigma * (k0 * n).sqrt());
        let tail = base_tail + spread;
        let lead = t - tail - self.next_time;
        let k = (lead / half).floor();
        if k >= 2.0 {
            let k = k as u64;
            let events = k as f64 * n;
            let elapsed = Ps::from_ps(
                self.rng
                    .gaussian(half.as_ps() * k as f64, sigma * events.sqrt()),
            )
            // Guard absurd tails on both sides; the upper clamp keeps the
            // landing point inside the exact-tail region before `t`.
            .max(half * (k as f64 * 0.5))
            .min(t - base_tail - self.next_time);
            let new_next = self.next_time + elapsed;
            // Rebuild trains: levels flip iff k is odd; history restarts.
            let flip = k % 2 == 1;
            for train in &mut self.trains {
                let level = train.level_at(self.now.max(train.valid_from())) ^ flip;
                // A fresh train valid from the jump point.
                *train = EdgeTrain::new(level, new_next.min(t));
            }
            self.next_time = new_next;
            self.now = new_next.min(t);
        }
        self.run_until(t);
        Ok(())
    }

    /// Advances to `t`, fast-forwarding when profitable and supported,
    /// falling back to the exact path otherwise.
    pub fn advance_to(&mut self, t: Ps) {
        let lead = t - self.next_time;
        if lead > self.half_period() * 64.0 && self.config.noise.is_white_only() {
            // Unwrap is safe: white-only checked above.
            self.fast_forward_to(t, self.config.history_window)
                .expect("white-only fast-forward");
        } else {
            self.run_until(t);
        }
    }

    /// A borrowed view of node `i` usable as a [`SignalSource`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> RingNode<'_> {
        assert!(i < self.config.stages, "node {i} out of range");
        RingNode {
            train: &self.trains[i],
        }
    }

    /// Number of transitions of node `i` recorded in the half-open
    /// window `(from, to]` — half-open so that adjacent windows tile
    /// without double counting (transition counting measurements scan
    /// in chunks).
    ///
    /// The caller must have advanced the oscillator to at least `to`
    /// and the window must lie within retained history.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count_transitions(&self, i: usize, from: Ps, to: Ps) -> usize {
        assert!(i < self.config.stages, "node {i} out of range");
        self.trains[i]
            .edges_in(from, to)
            .filter(|&e| e > from)
            .count()
    }

    fn draw_stage_delay(&mut self, stage: usize, t: Ps) -> Ps {
        let nominal = self.stages[stage].delay();
        self.stage_noise[stage].stage_delay(&self.config.noise, nominal, t, &mut self.rng)
    }
}

/// Borrowed view of one oscillator node.
#[derive(Debug, Clone, Copy)]
pub struct RingNode<'a> {
    train: &'a EdgeTrain,
}

impl SignalSource for RingNode<'_> {
    fn level_at(&self, t: Ps) -> bool {
        self.train.level_at(t)
    }

    fn nearest_edge_distance(&self, t: Ps) -> Option<Ps> {
        self.train.nearest_edge_distance(t)
    }

    fn level_at_with(&self, t: Ps, cursor: &mut EdgeCursor) -> bool {
        self.train.level_at_with(t, cursor)
    }

    fn nearest_edge_distance_with(&self, t: Ps, cursor: &mut EdgeCursor) -> Option<Ps> {
        self.train.nearest_edge_distance_with(t, cursor)
    }

    fn as_edge_train(&self) -> Option<&EdgeTrain> {
        Some(self.train)
    }
}

impl<'a> RingNode<'a> {
    /// The underlying transition history.
    pub fn edge_train(&self) -> &'a EdgeTrain {
        self.train
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_ro(sigma: f64) -> RingOscillator {
        RingOscillator::new(
            RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(sigma)),
            SimRng::seed_from(42),
        )
        .expect("valid")
    }

    #[test]
    fn period_matches_stage_delays() {
        let ro = ideal_ro(0.0);
        assert_eq!(ro.half_period(), Ps::from_ps(1440.0));
        assert_eq!(ro.period(), Ps::from_ps(2880.0));
        let f = ro.frequency_hz();
        assert!((f - 1.0 / 2.88e-9).abs() / f < 1e-12);
    }

    #[test]
    fn noiseless_ring_toggles_each_node_every_half_period() {
        let mut ro = ideal_ro(0.0);
        ro.run_until(Ps::from_ns(30.0));
        // Node 0 toggles at 480, 1920, 3360, ... (every 1440 ps).
        let n0 = ro.count_transitions(0, Ps::from_ns(28.0), Ps::from_ns(30.0));
        // 2 ns window / 1.44 ns -> 1 or 2 edges.
        assert!((1..=2).contains(&n0), "{n0} edges");
        // All three nodes toggle at the same average rate.
        for i in 0..3 {
            let c = ro.count_transitions(i, Ps::from_ns(28.5), Ps::from_ns(30.0));
            assert!((1..=2).contains(&c), "node {i}: {c}");
        }
    }

    #[test]
    fn exactly_one_node_toggles_per_stage_delay() {
        let mut ro = ideal_ro(0.0);
        ro.run_until(Ps::from_ns(2.0));
        // In [0, 1.44ns] each node toggles exactly once (one traversal).
        let total: usize = (0..3)
            .map(|i| ro.count_transitions(i, Ps::ZERO, Ps::from_ps(1440.0)))
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn node_levels_are_consistent_square_waves() {
        let mut ro = ideal_ro(0.0);
        // Stay within the 2 ns history window so early queries are valid.
        ro.run_until(Ps::from_ns(1.8));
        // Immediately before a node-0 toggle and after differ.
        let n0 = ro.node(0);
        let before = n0.level_at(Ps::from_ps(479.0));
        let after = n0.level_at(Ps::from_ps(481.0));
        assert_ne!(before, after);
    }

    #[test]
    fn jitter_accumulates_with_sqrt_of_time() {
        // Measure the spread of the K-th toggle time of node 0 over many
        // runs; it must match sigma * sqrt(#events).
        let sigma = 3.0;
        let traversals = 40usize; // node 0 toggles once per traversal
        let runs = 3000;
        let mut times = Vec::with_capacity(runs);
        for seed in 0..runs {
            // Large history window so the K-th toggle is not pruned.
            let cfg = RingOscillatorConfig {
                history_window: Ps::from_us(1.0),
                ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(sigma))
            };
            let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed as u64)).expect("valid");
            let horizon = Ps::from_ps(1440.0) * (traversals as f64 + 2.0);
            ro.run_until(horizon);
            // K-th toggle of node 0 = edges at 480 + k*1440.
            let k_th = Ps::from_ps(480.0 + (traversals as f64 - 1.0) * 1440.0);
            let edge = ro
                .node(0)
                .edge_train()
                .edges_in(k_th - Ps::from_ps(400.0), k_th + Ps::from_ps(400.0))
                .next();
            if let Some(e) = edge {
                times.push(e.as_ps());
            }
        }
        assert!(times.len() > runs * 9 / 10, "lost too many edges");
        let n = times.len() as f64;
        let mean = times.iter().sum::<f64>() / n;
        let sd = (times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt();
        // #events to the K-th toggle of node0 = 1 + (K-1)*3 stage events...
        // toggle j of node 0 happens after 3*j - 2 stage traversals.
        let events = (3 * traversals - 2) as f64;
        let expected = sigma * events.sqrt();
        assert!(
            (sd - expected).abs() < expected * 0.15,
            "sd {sd} expected {expected}"
        );
    }

    #[test]
    fn history_is_pruned() {
        let mut ro = ideal_ro(2.0);
        ro.run_until(Ps::from_us(1.0));
        // 2 ns window at 480 ps/event: ~13 edges per node retained.
        for i in 0..3 {
            assert!(ro.node(i).edge_train().len() < 40);
        }
    }

    #[test]
    fn fast_forward_matches_exact_marginals() {
        // Compare the distribution of the offset between the sampling
        // instant and the most recent node-0 toggle under the exact and
        // the fast-forward path: means and standard deviations must
        // agree (the offset spread is exactly the accumulated jitter).
        let t = Ps::from_us(2.0);
        let runs = 1500u64;
        let offsets = |fast: bool| -> (f64, f64) {
            let mut xs = Vec::with_capacity(runs as usize);
            for seed in 0..runs {
                let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.0));
                let salt = if fast { 1_000_000 } else { 0 };
                let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed + salt)).unwrap();
                if fast {
                    ro.fast_forward_to(t, Ps::from_ns(5.0)).unwrap();
                } else {
                    ro.run_until(t);
                }
                let last = ro
                    .node(0)
                    .edge_train()
                    .edges_in(t - Ps::from_ns(2.0), t)
                    .last()
                    .expect("an edge within the window");
                xs.push((t - last).as_ps());
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let sd = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt();
            (mean, sd)
        };
        let (mean_exact, sd_exact) = offsets(false);
        let (mean_ff, sd_ff) = offsets(true);
        // sigma_acc(2us) = 2 * sqrt(2e6/480) ~ 129 ps; means within a
        // few standard errors, sds within 15 %.
        assert!(
            (mean_exact - mean_ff).abs() < 20.0,
            "means {mean_exact} vs {mean_ff}"
        );
        assert!(
            (sd_exact - sd_ff).abs() < 0.15 * sd_exact,
            "sds {sd_exact} vs {sd_ff}"
        );
    }

    #[test]
    fn fast_forward_rejected_with_flicker() {
        let cfg = RingOscillatorConfig {
            noise: NoiseConfig::white_only(Ps::from_ps(2.0))
                .with_flicker(crate::noise::FlickerParams::default()),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.0))
        };
        let mut ro = RingOscillator::new(cfg, SimRng::seed_from(0)).unwrap();
        assert_eq!(
            ro.fast_forward_to(Ps::from_us(10.0), Ps::from_ns(5.0)),
            Err(FastForwardUnsupported)
        );
    }

    #[test]
    fn advance_to_uses_exact_path_for_short_steps() {
        let mut ro = ideal_ro(2.0);
        ro.advance_to(Ps::from_ns(10.0));
        assert_eq!(ro.now(), Ps::from_ns(10.0));
        // Short step: full history retained since t=0 minus window.
        assert!(!ro.node(0).edge_train().is_empty());
    }

    #[test]
    fn even_stage_count_is_rejected() {
        let cfg = RingOscillatorConfig::ideal(4, Ps::from_ps(480.0), Ps::ZERO);
        assert!(RingOscillator::new(cfg, SimRng::seed_from(0)).is_err());
    }

    #[test]
    fn process_variation_changes_period() {
        let cfg = RingOscillatorConfig {
            process: ProcessVariation::default(),
            device: DeviceSeed::new(3),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO)
        };
        let ro = RingOscillator::new(cfg, SimRng::seed_from(0)).unwrap();
        assert_ne!(ro.half_period(), Ps::from_ps(1440.0));
        assert!((ro.half_period().as_ps() - 1440.0).abs() < 1440.0 * 0.2);
    }
}
