//! ASCII timing-diagram rendering.
//!
//! Debug aid: render [`EdgeTrain`](crate::edge_train::EdgeTrain)s (e.g. ring-oscillator nodes) as
//! oscilloscope-style traces over a time window, optionally with the
//! TDC sampling grid marked — the visual counterpart of the paper's
//! Figures 2/3.
//!
//! ```text
//! node 0: ▔▔▔▔▔╲▁▁▁▁▁▁▁▁╱▔▔▔▔▔▔▔▔╲▁▁▁▁▁
//! node 1: ▁▁▁╱▔▔▔▔▔▔▔▔╲▁▁▁▁▁▁▁▁╱▔▔▔▔▔▔▔
//! ```

use crate::edge_train::SignalSource;
use crate::time::Ps;

/// Renders one signal over `[from, to]` into `width` columns using
/// high/low/edge glyphs.
///
/// Each column shows the signal level at the column's *centre*
/// instant; columns where the level changes relative to the previous
/// column render as an edge glyph (`/` rising, `\` falling).
///
/// # Panics
///
/// Panics if `width < 2` or `to <= from`.
pub fn render_signal<S: SignalSource + ?Sized>(
    signal: &S,
    from: Ps,
    to: Ps,
    width: usize,
) -> String {
    assert!(width >= 2, "need at least two columns");
    assert!(to > from, "window must be non-empty");
    let step = (to - from) / (width as f64);
    let mut out = String::with_capacity(width);
    let mut prev: Option<bool> = None;
    for i in 0..width {
        let t = from + step * (i as f64 + 0.5);
        let level = signal.level_at(t);
        let glyph = match (prev, level) {
            (Some(false), true) => '/',
            (Some(true), false) => '\\',
            (_, true) => '‾',
            (_, false) => '_',
        };
        out.push(glyph);
        prev = Some(level);
    }
    out
}

/// Renders several labelled signals over the same window, one line per
/// signal, plus a time axis.
///
/// # Panics
///
/// Panics under the same conditions as [`render_signal`].
pub fn render_traces<S: SignalSource>(
    signals: &[(&str, &S)],
    from: Ps,
    to: Ps,
    width: usize,
) -> String {
    let label_width = signals
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (name, signal) in signals {
        out.push_str(&format!("{name:>label_width$} "));
        out.push_str(&render_signal(*signal, from, to, width));
        out.push('\n');
    }
    out.push_str(&format!("{:>label_width$} {} .. {}\n", "t:", from, to));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_train::EdgeTrain;

    fn square_wave() -> EdgeTrain {
        let mut t = EdgeTrain::new(false, Ps::ZERO);
        for e in [100.0, 200.0, 300.0] {
            t.push(Ps::from_ps(e));
        }
        t
    }

    #[test]
    fn renders_levels_and_edges() {
        let s = square_wave();
        let r = render_signal(&s, Ps::ZERO, Ps::from_ps(400.0), 40);
        assert_eq!(r.chars().count(), 40);
        assert!(r.contains('/'), "{r}");
        assert!(r.contains('\\'), "{r}");
        assert!(r.contains('‾'));
        assert!(r.contains('_'));
        // Edges in order: rising then falling then rising.
        let rise = r.find('/').unwrap();
        let fall = r.find('\\').unwrap();
        assert!(rise < fall, "{r}");
    }

    #[test]
    fn constant_signal_renders_flat() {
        let s = EdgeTrain::new(true, Ps::ZERO);
        let r = render_signal(&s, Ps::ZERO, Ps::from_ps(100.0), 10);
        assert_eq!(r, "‾‾‾‾‾‾‾‾‾‾");
    }

    #[test]
    fn multi_trace_layout() {
        let a = square_wave();
        let b = EdgeTrain::new(false, Ps::ZERO);
        let out = render_traces(&[("osc", &a), ("en", &b)], Ps::ZERO, Ps::from_ps(400.0), 20);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("osc "));
        assert!(lines[1].starts_with(" en "));
        assert!(lines[2].contains("400"));
    }

    #[test]
    fn ring_oscillator_traces_look_periodic() {
        use crate::ring_oscillator::{RingOscillator, RingOscillatorConfig};
        use crate::rng::SimRng;
        let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
        let mut ro = RingOscillator::new(cfg, SimRng::seed_from(0)).unwrap();
        ro.run_until(Ps::from_ns(6.0));
        let node = ro.node(0);
        let r = render_signal(&node, Ps::from_ns(4.2), Ps::from_ns(6.0), 60);
        // 1.8 ns window over a 2.88 ns period: at least one edge visible.
        assert!(r.contains('/') || r.contains('\\'), "{r}");
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn rejects_empty_window() {
        let s = square_wave();
        let _ = render_signal(&s, Ps::from_ps(10.0), Ps::from_ps(10.0), 10);
    }
}
