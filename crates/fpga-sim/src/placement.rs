//! Placement of the TRNG on the fabric.
//!
//! Mirrors the paper's Section 5: "Stages of the ring-oscillator are
//! implemented using LUTs, and fast delay lines are implemented using
//! carry-chain primitives. [...] Delay stages of the oscillator are
//! placed in slices directly below the fast delay lines. These are the
//! only placement constraints that we used." plus Section 5.2's
//! single-clock-region constraint for TDC linearity.

use core::fmt;
use std::error::Error;

use crate::fabric::{Fabric, SliceCoord};
use crate::primitives::CARRY4_BINS;

/// Placement of one TRNG instance: `n` delay lines, each a vertical
/// carry chain, with the matching oscillator LUT directly below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrngPlacement {
    /// Carry column used by each delay line (one line per column).
    pub line_columns: Vec<u32>,
    /// First slice row of every carry chain.
    pub first_row: u32,
    /// CARRY4 primitives per chain (`m / 4`).
    pub carry4s_per_line: u32,
    /// Row of the oscillator LUTs (directly below the chains).
    pub oscillator_row: u32,
}

impl TrngPlacement {
    /// Auto-places a TRNG with `n` oscillator stages and `m` TDC taps,
    /// starting from the given carry column and row.
    ///
    /// Lines occupy consecutive carry columns (`start_column`,
    /// `start_column + 2`, ...); each chain starts at `first_row` and
    /// runs upward; oscillator LUTs sit at `first_row - 1`.
    ///
    /// # Errors
    ///
    /// Returns a [`PlacementError`] if `m` is not a positive multiple
    /// of 4, `first_row` is 0 (no room for the oscillator below), the
    /// start column is not a carry column, or the footprint leaves the
    /// fabric.
    pub fn auto(
        fabric: &Fabric,
        n: usize,
        m: usize,
        start_column: u32,
        first_row: u32,
    ) -> Result<Self, PlacementError> {
        if m == 0 || !m.is_multiple_of(CARRY4_BINS) {
            return Err(PlacementError::TapCountNotMultipleOf4 { m });
        }
        if n == 0 {
            return Err(PlacementError::NoOscillatorStages);
        }
        if first_row == 0 {
            return Err(PlacementError::NoRoomForOscillator);
        }
        if !fabric.has_carry(start_column) {
            return Err(PlacementError::NotACarryColumn {
                column: start_column,
            });
        }
        let carry4s_per_line = (m / CARRY4_BINS) as u32;
        let line_columns: Vec<u32> = (0..n as u32).map(|i| start_column + 2 * i).collect();
        let placement = TrngPlacement {
            line_columns,
            first_row,
            carry4s_per_line,
            oscillator_row: first_row - 1,
        };
        placement.validate(fabric)?;
        Ok(placement)
    }

    /// The last (topmost) row occupied by the carry chains.
    pub fn last_row(&self) -> u32 {
        self.first_row + self.carry4s_per_line - 1
    }

    /// Number of TDC taps per line.
    pub fn taps_per_line(&self) -> usize {
        self.carry4s_per_line as usize * CARRY4_BINS
    }

    /// Slice coordinate of CARRY4 `index` (0-based from the chain
    /// start) of delay line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` or `index` is out of range.
    pub fn carry4_site(&self, line: usize, index: u32) -> SliceCoord {
        assert!(line < self.line_columns.len(), "line {line} out of range");
        assert!(
            index < self.carry4s_per_line,
            "carry4 index {index} out of range"
        );
        SliceCoord::new(self.line_columns[line], self.first_row + index)
    }

    /// Slice coordinate of the oscillator LUT feeding delay line `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn oscillator_site(&self, line: usize) -> SliceCoord {
        assert!(line < self.line_columns.len(), "line {line} out of range");
        SliceCoord::new(self.line_columns[line], self.oscillator_row)
    }

    /// `true` if every carry chain stays inside one clock region —
    /// the linearity constraint of Section 5.2.
    pub fn within_one_clock_region(&self, fabric: &Fabric) -> bool {
        fabric.same_clock_region(self.first_row, self.last_row())
    }

    /// Checks the placement against a fabric.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint. Note that spanning a
    /// clock region boundary is *legal* (the paper's initial designs
    /// did) — query [`TrngPlacement::within_one_clock_region`]
    /// separately to assess linearity.
    pub fn validate(&self, fabric: &Fabric) -> Result<(), PlacementError> {
        for &col in &self.line_columns {
            if !fabric.has_carry(col) {
                return Err(PlacementError::NotACarryColumn { column: col });
            }
            let top = SliceCoord::new(col, self.last_row());
            if !fabric.contains(top) {
                return Err(PlacementError::OffFabric { coord: top });
            }
            let osc = SliceCoord::new(col, self.oscillator_row);
            if !fabric.contains(osc) {
                return Err(PlacementError::OffFabric { coord: osc });
            }
        }
        Ok(())
    }
}

/// A violated placement constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementError {
    /// `m` must be a positive multiple of 4 (CARRY4 granularity).
    TapCountNotMultipleOf4 {
        /// The offending tap count.
        m: usize,
    },
    /// At least one oscillator stage is required.
    NoOscillatorStages,
    /// `first_row` must leave a row below for the oscillator LUT.
    NoRoomForOscillator,
    /// The column does not contain carry primitives.
    NotACarryColumn {
        /// The offending column.
        column: u32,
    },
    /// A required slice is outside the fabric.
    OffFabric {
        /// The offending coordinate.
        coord: SliceCoord,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::TapCountNotMultipleOf4 { m } => {
                write!(f, "tap count m={m} is not a positive multiple of 4")
            }
            PlacementError::NoOscillatorStages => write!(f, "oscillator needs at least one stage"),
            PlacementError::NoRoomForOscillator => {
                write!(f, "first row 0 leaves no slice below for the oscillator")
            }
            PlacementError::NotACarryColumn { column } => {
                write!(f, "column {column} has no carry primitives")
            }
            PlacementError::OffFabric { coord } => write!(f, "slice {coord} is outside the fabric"),
        }
    }
}

impl Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_placement_fits_one_clock_region() {
        // n=3, m=36 -> 9 CARRY4s per line; rows 1..=9 within region 0.
        let fabric = Fabric::spartan6();
        let p = TrngPlacement::auto(&fabric, 3, 36, 4, 1).expect("placement");
        assert_eq!(p.carry4s_per_line, 9);
        assert_eq!(p.taps_per_line(), 36);
        assert_eq!(p.line_columns, vec![4, 6, 8]);
        assert_eq!(p.last_row(), 9);
        assert!(p.within_one_clock_region(&fabric));
    }

    #[test]
    fn placement_can_cross_clock_regions() {
        let fabric = Fabric::spartan6();
        // Starting at row 12, a 9-CARRY4 chain ends at row 20 -> crosses
        // the row-16 boundary. Legal but non-linear.
        let p = TrngPlacement::auto(&fabric, 3, 36, 4, 12).expect("placement");
        assert!(!p.within_one_clock_region(&fabric));
        assert!(p.validate(&fabric).is_ok());
    }

    #[test]
    fn site_lookup() {
        let fabric = Fabric::spartan6();
        let p = TrngPlacement::auto(&fabric, 3, 36, 4, 1).expect("placement");
        assert_eq!(p.carry4_site(0, 0), SliceCoord::new(4, 1));
        assert_eq!(p.carry4_site(2, 8), SliceCoord::new(8, 9));
        assert_eq!(p.oscillator_site(1), SliceCoord::new(6, 0));
    }

    #[test]
    fn rejects_bad_tap_count() {
        let fabric = Fabric::spartan6();
        assert_eq!(
            TrngPlacement::auto(&fabric, 3, 34, 4, 1).unwrap_err(),
            PlacementError::TapCountNotMultipleOf4 { m: 34 }
        );
        assert_eq!(
            TrngPlacement::auto(&fabric, 3, 0, 4, 1).unwrap_err(),
            PlacementError::TapCountNotMultipleOf4 { m: 0 }
        );
    }

    #[test]
    fn rejects_odd_column() {
        let fabric = Fabric::spartan6();
        assert_eq!(
            TrngPlacement::auto(&fabric, 3, 36, 5, 1).unwrap_err(),
            PlacementError::NotACarryColumn { column: 5 }
        );
    }

    #[test]
    fn rejects_row_zero_and_off_fabric() {
        let fabric = Fabric::spartan6();
        assert_eq!(
            TrngPlacement::auto(&fabric, 3, 36, 4, 0).unwrap_err(),
            PlacementError::NoRoomForOscillator
        );
        assert!(matches!(
            TrngPlacement::auto(&fabric, 3, 36, 4, 125).unwrap_err(),
            PlacementError::OffFabric { .. }
        ));
        assert!(matches!(
            TrngPlacement::auto(&fabric, 40, 36, 4, 1).unwrap_err(),
            PlacementError::OffFabric { .. }
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PlacementError::TapCountNotMultipleOf4 { m: 34 };
        assert!(format!("{e}").contains("34"));
        let e = PlacementError::OffFabric {
            coord: SliceCoord::new(70, 0),
        };
        assert!(format!("{e}").contains("SLICE_X70Y0"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn site_lookup_bounds_checked() {
        let fabric = Fabric::spartan6();
        let p = TrngPlacement::auto(&fabric, 3, 36, 4, 1).expect("placement");
        let _ = p.carry4_site(3, 0);
    }
}
