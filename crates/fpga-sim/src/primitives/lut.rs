//! LUT delay-stage model.
//!
//! Ring-oscillator stages are implemented with LUTs (Figure 8 of the
//! paper). Each physical LUT instance has a frozen, process-varied
//! deterministic delay `d0 · (1 + ε_site)`; the *random* per-transition
//! component is added by the noise machinery
//! ([`StageNoise`](crate::noise::StageNoise)), not here.

use crate::process::{DeviceSeed, ProcessVariation};
use crate::time::Ps;

/// One placed LUT acting as a delay stage.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::primitives::LutDelay;
/// use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
/// use trng_fpga_sim::time::Ps;
///
/// let lut = LutDelay::placed(
///     Ps::from_ps(480.0),
///     DeviceSeed::new(1),
///     &ProcessVariation::default(),
///     4, 17,
/// );
/// // within +-4 sigma of 4 %:
/// assert!((lut.delay().as_ps() - 480.0).abs() < 480.0 * 0.16 + 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutDelay {
    nominal: Ps,
    actual: Ps,
    x: u64,
    y: u64,
}

impl LutDelay {
    /// Creates an *ideal* LUT with exactly the nominal delay.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not strictly positive.
    pub fn ideal(nominal: Ps) -> Self {
        assert!(
            nominal.as_ps() > 0.0,
            "LUT delay must be positive, got {nominal}"
        );
        LutDelay {
            nominal,
            actual: nominal,
            x: 0,
            y: 0,
        }
    }

    /// Creates a LUT at fabric site `(x, y)` with frozen process
    /// variation drawn from the device seed.
    ///
    /// # Panics
    ///
    /// Panics if `nominal` is not strictly positive.
    pub fn placed(
        nominal: Ps,
        device: DeviceSeed,
        variation: &ProcessVariation,
        x: u64,
        y: u64,
    ) -> Self {
        assert!(
            nominal.as_ps() > 0.0,
            "LUT delay must be positive, got {nominal}"
        );
        let factor = variation.delay_multiplier(device, x, y);
        LutDelay {
            nominal,
            actual: nominal * factor,
            x,
            y,
        }
    }

    /// The datasheet (nominal) delay.
    pub fn nominal(&self) -> Ps {
        self.nominal
    }

    /// The frozen, process-adjusted deterministic delay of this instance.
    pub fn delay(&self) -> Ps {
        self.actual
    }

    /// Fabric coordinates of this instance.
    pub fn site(&self) -> (u64, u64) {
        (self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_lut_has_nominal_delay() {
        let lut = LutDelay::ideal(Ps::from_ps(480.0));
        assert_eq!(lut.delay(), Ps::from_ps(480.0));
        assert_eq!(lut.nominal(), Ps::from_ps(480.0));
    }

    #[test]
    fn placed_lut_is_frozen() {
        let d = DeviceSeed::new(5);
        let pv = ProcessVariation::default();
        let a = LutDelay::placed(Ps::from_ps(480.0), d, &pv, 2, 3);
        let b = LutDelay::placed(Ps::from_ps(480.0), d, &pv, 2, 3);
        assert_eq!(a.delay(), b.delay());
        assert_eq!(a.site(), (2, 3));
    }

    #[test]
    fn different_sites_have_different_delays() {
        let d = DeviceSeed::new(5);
        let pv = ProcessVariation::default();
        let a = LutDelay::placed(Ps::from_ps(480.0), d, &pv, 0, 0);
        let b = LutDelay::placed(Ps::from_ps(480.0), d, &pv, 0, 1);
        assert_ne!(a.delay(), b.delay());
    }

    #[test]
    fn population_mean_is_nominal() {
        let d = DeviceSeed::new(9);
        let pv = ProcessVariation::default();
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| {
                LutDelay::placed(Ps::from_ps(480.0), d, &pv, i, 0)
                    .delay()
                    .as_ps()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 480.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "LUT delay must be positive")]
    fn rejects_zero_delay() {
        let _ = LutDelay::ideal(Ps::ZERO);
    }
}
