//! Fabric primitive models: LUTs, CARRY4 chains and capture flip-flops.
//!
//! These mirror the three Xilinx primitives the paper builds on
//! (Section 3 and Figure 8): LUT delay stages form the ring
//! oscillator, CARRY4 primitives form the fast tapped delay lines, and
//! slice flip-flops capture the delayed signal on the sampling clock
//! edge (where timing violations produce metastability — the "bubbles"
//! of Figure 4(c)).

pub mod carry4;
pub mod flipflop;
pub mod lut;

pub use carry4::{Carry4, CARRY4_BINS};
pub use flipflop::CaptureFf;
pub use lut::LutDelay;
