//! Capture flip-flop with a metastability model.
//!
//! The paper (Section 3): "Due to the timing violations during
//! sampling, some flip-flops may be driven to the metastable state
//! which can produce 'bubbles' in the code." A flip-flop whose data
//! input transitions within the setup/hold aperture around the clock
//! edge resolves to an essentially random value.
//!
//! The model: if the nearest input edge is within `±w_meta` of the
//! effective capture instant, the captured bit is Bernoulli with a
//! probability that ramps linearly across the aperture from the old
//! level to the new level (a first-order approximation of the
//! metastability resolution probability); outside the aperture the
//! capture is deterministic.

use crate::edge_train::{EdgeCursor, SignalSource};
use crate::rng::SimRng;
use crate::time::Ps;

/// A clocked capture flip-flop.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::primitives::CaptureFf;
/// use trng_fpga_sim::edge_train::EdgeTrain;
/// use trng_fpga_sim::rng::SimRng;
/// use trng_fpga_sim::time::Ps;
///
/// let mut signal = EdgeTrain::new(false, Ps::ZERO);
/// signal.push(Ps::from_ps(100.0));
/// let ff = CaptureFf::new(Ps::from_ps(5.0));
/// let mut rng = SimRng::seed_from(0);
/// // Far from the edge: deterministic capture.
/// assert!(!ff.capture(&signal, Ps::from_ps(50.0), &mut rng));
/// assert!(ff.capture(&signal, Ps::from_ps(150.0), &mut rng));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureFf {
    meta_window: Ps,
}

impl CaptureFf {
    /// Creates a flip-flop with the given metastability half-aperture.
    ///
    /// A window of zero gives an ideal (always deterministic) FF.
    ///
    /// # Panics
    ///
    /// Panics if `meta_window` is negative or not finite.
    pub fn new(meta_window: Ps) -> Self {
        assert!(
            meta_window.as_ps() >= 0.0 && meta_window.is_finite(),
            "metastability window must be finite and non-negative, got {meta_window}"
        );
        CaptureFf { meta_window }
    }

    /// An ideal flip-flop without metastability.
    pub fn ideal() -> Self {
        CaptureFf::new(Ps::ZERO)
    }

    /// The metastability half-aperture.
    pub fn meta_window(&self) -> Ps {
        self.meta_window
    }

    /// Captures `signal` at instant `t`.
    ///
    /// If the nearest signal edge falls inside the aperture, the
    /// result is random with a probability ramping across the window;
    /// otherwise it is the exact signal level at `t`.
    pub fn capture<S: SignalSource + ?Sized>(&self, signal: &S, t: Ps, rng: &mut SimRng) -> bool {
        let level = signal.level_at(t);
        if self.meta_window == Ps::ZERO {
            return level;
        }
        match signal.nearest_edge_distance(t) {
            Some(d) if d < self.meta_window => {
                // Distance 0 -> pure coin flip; distance w -> certain.
                let p_correct = 0.5 + 0.5 * (d / self.meta_window);
                if rng.bernoulli(p_correct) {
                    level
                } else {
                    !level
                }
            }
            _ => level,
        }
    }

    /// [`CaptureFf::capture`] with a resumable [`EdgeCursor`]: bit- and
    /// draw-identical (the metastability coin is flipped under exactly
    /// the same condition, from the same RNG position), but level and
    /// edge-distance lookups walk the cursor instead of binary
    /// searching.
    pub fn capture_with<S: SignalSource + ?Sized>(
        &self,
        signal: &S,
        t: Ps,
        cursor: &mut EdgeCursor,
        rng: &mut SimRng,
    ) -> bool {
        let level = signal.level_at_with(t, cursor);
        if self.meta_window == Ps::ZERO {
            return level;
        }
        match signal.nearest_edge_distance_with(t, cursor) {
            Some(d) if d < self.meta_window => {
                let p_correct = 0.5 + 0.5 * (d / self.meta_window);
                if rng.bernoulli(p_correct) {
                    level
                } else {
                    !level
                }
            }
            _ => level,
        }
    }
}

impl Default for CaptureFf {
    /// Default half-aperture of 9 ps.
    ///
    /// Chosen so that the apertures of *adjacent* taps overlap on the
    /// narrow CARRY4 bins (≈ 13.6 ps with the structural DNL pattern):
    /// an edge landing in the overlap randomizes two neighbouring
    /// flip-flops at once, which is what produces the isolated-bit
    /// "bubbles" of the paper's Figure 4 (c). A smaller aperture can
    /// only *move* the decoded edge by one bin and never produces a
    /// bubble; the real TDC observably does.
    fn default() -> Self {
        CaptureFf::new(Ps::from_ps(9.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_train::EdgeTrain;

    fn edge_at_100() -> EdgeTrain {
        let mut s = EdgeTrain::new(false, Ps::ZERO);
        s.push(Ps::from_ps(100.0));
        s
    }

    #[test]
    fn far_captures_are_deterministic() {
        let s = edge_at_100();
        let ff = CaptureFf::new(Ps::from_ps(5.0));
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            assert!(!ff.capture(&s, Ps::from_ps(90.0), &mut rng));
            assert!(ff.capture(&s, Ps::from_ps(110.0), &mut rng));
        }
    }

    #[test]
    fn capture_exactly_on_edge_is_a_coin_flip() {
        let s = edge_at_100();
        let ff = CaptureFf::new(Ps::from_ps(5.0));
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let ones = (0..n)
            .filter(|_| ff.capture(&s, Ps::from_ps(100.0), &mut rng))
            .count() as f64
            / n as f64;
        assert!((ones - 0.5).abs() < 0.02, "ones {ones}");
    }

    #[test]
    fn probability_ramps_across_aperture() {
        let s = edge_at_100();
        let ff = CaptureFf::new(Ps::from_ps(10.0));
        let mut rng = SimRng::seed_from(2);
        let n = 40_000;
        // 5 ps after the edge: level=true, p_correct = 0.75.
        let ones = (0..n)
            .filter(|_| ff.capture(&s, Ps::from_ps(105.0), &mut rng))
            .count() as f64
            / n as f64;
        assert!((ones - 0.75).abs() < 0.02, "ones {ones}");
    }

    #[test]
    fn ideal_ff_never_randomizes() {
        let s = edge_at_100();
        let ff = CaptureFf::ideal();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert!(ff.capture(&s, Ps::from_ps(100.0), &mut rng));
            assert!(!ff.capture(&s, Ps::from_ps(99.999), &mut rng));
        }
    }

    #[test]
    fn window_boundary_is_deterministic() {
        let s = edge_at_100();
        let ff = CaptureFf::new(Ps::from_ps(5.0));
        let mut rng = SimRng::seed_from(4);
        for _ in 0..100 {
            assert!(ff.capture(&s, Ps::from_ps(105.0), &mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "metastability window must be finite")]
    fn rejects_negative_window() {
        let _ = CaptureFf::new(Ps::from_ps(-1.0));
    }
}
