//! CARRY4 primitive model.
//!
//! On Spartan-6 half of the slices contain a carry-chain primitive with
//! four MUXCY stages whose carry path is far faster than general
//! routing (~17 ps per stage measured in the paper). Chaining the
//! primitives of vertically adjacent slices yields a tapped delay line
//! usable as a time-to-digital converter.
//!
//! The model captures the two structural non-linearity sources the
//! paper discusses (Section 5.2, citing Menninga et al. \[6\]):
//!
//! * the *internal structure* of CARRY4 — the four stages do not have
//!   equal delays; we apply a fixed 4-periodic DNL pattern;
//! * *process variation* — per-bin random width factors frozen per
//!   device.
//!
//! (The third source, the unbalanced clock tree, lives in the
//! clock-region model of [`delay_line`](crate::delay_line) /
//! [`fabric`](crate::fabric) since it is a property of the capture
//! clock rather than the carry chain itself.)

use crate::process::{DeviceSeed, ProcessVariation};
use crate::time::Ps;

/// Number of carry stages (taps) per CARRY4 primitive.
pub const CARRY4_BINS: usize = 4;

/// Relative DNL pattern of the four MUXCY stages inside one CARRY4.
///
/// The pattern sums to zero so the *average* bin width stays at the
/// nominal `tstep`. Values are fractions of the nominal width and are
/// loosely based on published FPGA TDC characterizations: the first
/// stage (CIN entry / LUT bypass) is wider, middle stages are narrow.
pub const CARRY4_DNL_PATTERN: [f64; CARRY4_BINS] = [0.35, -0.20, 0.05, -0.20];

/// One placed CARRY4 primitive: four consecutive TDC bins.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::primitives::Carry4;
/// use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
/// use trng_fpga_sim::time::Ps;
///
/// let c4 = Carry4::placed(
///     Ps::from_ps(17.0),
///     DeviceSeed::new(1),
///     &ProcessVariation::default(),
///     4,  // column
///     10, // slice row
/// );
/// let widths = c4.bin_widths();
/// assert_eq!(widths.len(), 4);
/// assert!(widths.iter().all(|w| w.as_ps() > 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Carry4 {
    widths: [Ps; CARRY4_BINS],
    column: u64,
    row: u64,
}

impl Carry4 {
    /// Creates an *ideal* primitive: four equal bins of `tstep`.
    ///
    /// # Panics
    ///
    /// Panics if `tstep` is not strictly positive.
    pub fn ideal(tstep: Ps) -> Self {
        assert!(tstep.as_ps() > 0.0, "tstep must be positive, got {tstep}");
        Carry4 {
            widths: [tstep; CARRY4_BINS],
            column: 0,
            row: 0,
        }
    }

    /// Creates a primitive at fabric site `(column, row)` with the
    /// structural DNL pattern and frozen per-bin process variation.
    ///
    /// # Panics
    ///
    /// Panics if `tstep` is not strictly positive.
    pub fn placed(
        tstep: Ps,
        device: DeviceSeed,
        variation: &ProcessVariation,
        column: u64,
        row: u64,
    ) -> Self {
        assert!(tstep.as_ps() > 0.0, "tstep must be positive, got {tstep}");
        let mut widths = [Ps::ZERO; CARRY4_BINS];
        for (i, w) in widths.iter_mut().enumerate() {
            let structural = 1.0 + CARRY4_DNL_PATTERN[i];
            let bin_id = row * CARRY4_BINS as u64 + i as u64;
            let process = variation.carry_bin_multiplier(device, column, bin_id);
            // Bins cannot collapse below 20 % of nominal.
            *w = (tstep * (structural * process)).max(tstep * 0.2);
        }
        Carry4 {
            widths,
            column,
            row,
        }
    }

    /// The four bin widths, in carry-propagation order.
    pub fn bin_widths(&self) -> [Ps; CARRY4_BINS] {
        self.widths
    }

    /// Total propagation delay through the primitive.
    pub fn total_delay(&self) -> Ps {
        self.widths.into_iter().sum()
    }

    /// Fabric site `(column, row)`.
    pub fn site(&self) -> (u64, u64) {
        (self.column, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnl_pattern_is_zero_mean() {
        let sum: f64 = CARRY4_DNL_PATTERN.iter().sum();
        assert!(sum.abs() < 1e-12, "pattern sum {sum}");
    }

    #[test]
    fn ideal_bins_are_equal() {
        let c = Carry4::ideal(Ps::from_ps(17.0));
        for w in c.bin_widths() {
            assert_eq!(w, Ps::from_ps(17.0));
        }
        assert_eq!(c.total_delay(), Ps::from_ps(68.0));
    }

    #[test]
    fn placed_bins_follow_structural_pattern() {
        // With zero process variation the DNL pattern alone shapes bins.
        let c = Carry4::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(1),
            &ProcessVariation::NONE,
            4,
            0,
        );
        let w = c.bin_widths();
        assert!((w[0].as_ps() - 17.0 * 1.35).abs() < 1e-9);
        assert!((w[1].as_ps() - 17.0 * 0.80).abs() < 1e-9);
        assert!((w[2].as_ps() - 17.0 * 1.05).abs() < 1e-9);
        assert!((w[3].as_ps() - 17.0 * 0.80).abs() < 1e-9);
        // Zero-mean pattern preserves the total.
        assert!((c.total_delay().as_ps() - 68.0).abs() < 1e-9);
    }

    #[test]
    fn process_variation_perturbs_bins_reproducibly() {
        let d = DeviceSeed::new(2);
        let pv = ProcessVariation::default();
        let a = Carry4::placed(Ps::from_ps(17.0), d, &pv, 4, 7);
        let b = Carry4::placed(Ps::from_ps(17.0), d, &pv, 4, 7);
        assert_eq!(a, b);
        let c = Carry4::placed(Ps::from_ps(17.0), d, &pv, 4, 8);
        assert_ne!(a.bin_widths(), c.bin_widths());
    }

    #[test]
    fn chained_rows_have_distinct_bin_variations() {
        // Bin ids must not repeat across rows, else the same variation
        // pattern would tile down the chain.
        let d = DeviceSeed::new(3);
        let pv = ProcessVariation::new(0.0, 0.1, 0.0);
        let r0 = Carry4::placed(Ps::from_ps(17.0), d, &pv, 4, 0).bin_widths();
        let r1 = Carry4::placed(Ps::from_ps(17.0), d, &pv, 4, 1).bin_widths();
        assert_ne!(r0, r1);
    }

    #[test]
    fn bins_never_collapse() {
        let d = DeviceSeed::new(4);
        let pv = ProcessVariation::new(0.0, 0.24, 0.0);
        for row in 0..1000 {
            let c = Carry4::placed(Ps::from_ps(17.0), d, &pv, 2, row);
            for w in c.bin_widths() {
                assert!(w.as_ps() >= 17.0 * 0.2 - 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "tstep must be positive")]
    fn rejects_non_positive_tstep() {
        let _ = Carry4::ideal(Ps::ZERO);
    }
}
