//! Per-device process variation.
//!
//! FPGA fabric delays vary from die to die and from site to site on the
//! same die. The paper's Section 5.2 relies on this: with `m = 32` TDC
//! taps the signal edge was missed in 0.8 % of samples "probably due to
//! the fact that d0 is the *average* delay value and some LUTs may be
//! slower", which forced the authors to use `m = 36`.
//!
//! A [`DeviceSeed`] freezes one fabricated device: the same seed always
//! yields the same per-site delay multipliers, so experiments can hold
//! the device fixed while varying noise realizations, or sweep devices
//! to study yield.

use crate::rng::{hash_to_standard_normal, splitmix64};

/// Identifies one fabricated device instance.
///
/// All process-variation quantities are pure functions of
/// `(DeviceSeed, site coordinates, purpose tag)`, evaluated lazily —
/// no per-device tables are stored.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
///
/// let device = DeviceSeed::new(1);
/// let pv = ProcessVariation::default();
/// let a = pv.delay_multiplier(device, 0, 0);
/// let b = pv.delay_multiplier(device, 0, 0);
/// assert_eq!(a, b); // frozen at fabrication
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DeviceSeed(u64);

impl DeviceSeed {
    /// Creates a device identity from a 64-bit seed.
    pub const fn new(seed: u64) -> Self {
        DeviceSeed(seed)
    }

    /// Returns the raw seed value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Derives a deterministic 64-bit hash for a `(site, tag)` pair.
    #[inline]
    pub fn site_hash(self, x: u64, y: u64, tag: u64) -> u64 {
        let mut h = splitmix64(self.0 ^ 0xA076_1D64_78BD_642F);
        h = splitmix64(h ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h = splitmix64(h ^ y.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        splitmix64(h ^ tag)
    }

    /// Derives a deterministic standard-normal variate for `(site, tag)`.
    #[inline]
    pub fn site_normal(self, x: u64, y: u64, tag: u64) -> f64 {
        let h1 = self.site_hash(x, y, tag);
        let h2 = self.site_hash(x, y, tag ^ 0xDEAD_BEEF_CAFE_F00D);
        hash_to_standard_normal(h1, h2)
    }
}

/// Tags separating independent process-variation purposes at one site.
pub mod tag {
    /// LUT propagation-delay variation.
    pub const LUT_DELAY: u64 = 1;
    /// Carry-chain bin-width variation.
    pub const CARRY_BIN: u64 = 2;
    /// Flip-flop setup/hold (metastability window centre) variation.
    pub const FF_WINDOW: u64 = 3;
    /// Clock-tree leaf insertion-delay variation.
    pub const CLOCK_LEAF: u64 = 4;
}

/// Magnitude of process variation applied to fabric elements.
///
/// Relative sigmas are standard deviations of multiplicative factors
/// `(1 + epsilon)` applied to nominal delays; values are truncated at
/// ±4 sigma to keep delays physical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// Relative sigma of LUT delay (typ. 4 % on 45 nm fabric).
    pub lut_sigma_rel: f64,
    /// Relative sigma of a single carry-chain bin width.
    pub carry_sigma_rel: f64,
    /// Relative sigma of per-leaf clock insertion delay.
    pub clock_sigma_rel: f64,
}

impl ProcessVariation {
    /// No variation at all — every site is nominal.
    ///
    /// Useful for deterministic unit tests of downstream logic.
    pub const NONE: ProcessVariation = ProcessVariation {
        lut_sigma_rel: 0.0,
        carry_sigma_rel: 0.0,
        clock_sigma_rel: 0.0,
    };

    /// Creates a variation description.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is negative, not finite, or ≥ 25 % (at which
    /// point the ±4σ truncation could produce non-positive delays).
    pub fn new(lut_sigma_rel: f64, carry_sigma_rel: f64, clock_sigma_rel: f64) -> Self {
        for (name, s) in [
            ("lut_sigma_rel", lut_sigma_rel),
            ("carry_sigma_rel", carry_sigma_rel),
            ("clock_sigma_rel", clock_sigma_rel),
        ] {
            assert!(
                s.is_finite() && (0.0..0.25).contains(&s),
                "{name} must be in [0, 0.25), got {s}"
            );
        }
        ProcessVariation {
            lut_sigma_rel,
            carry_sigma_rel,
            clock_sigma_rel,
        }
    }

    /// Multiplicative LUT-delay factor for a site (deterministic).
    pub fn delay_multiplier(&self, device: DeviceSeed, x: u64, y: u64) -> f64 {
        Self::factor(device.site_normal(x, y, tag::LUT_DELAY), self.lut_sigma_rel)
    }

    /// Multiplicative carry-bin-width factor for a site/bin.
    pub fn carry_bin_multiplier(&self, device: DeviceSeed, x: u64, bin: u64) -> f64 {
        Self::factor(
            device.site_normal(x, bin, tag::CARRY_BIN),
            self.carry_sigma_rel,
        )
    }

    /// Multiplicative clock-leaf insertion-delay factor for a site.
    pub fn clock_leaf_multiplier(&self, device: DeviceSeed, x: u64, y: u64) -> f64 {
        Self::factor(
            device.site_normal(x, y, tag::CLOCK_LEAF),
            self.clock_sigma_rel,
        )
    }

    #[inline]
    fn factor(z: f64, sigma: f64) -> f64 {
        1.0 + sigma * z.clamp(-4.0, 4.0)
    }
}

impl Default for ProcessVariation {
    /// Spartan-6-like defaults: 4 % LUT sigma, 6 % carry-bin sigma,
    /// 1 % clock-leaf sigma.
    fn default() -> Self {
        ProcessVariation::new(0.04, 0.06, 0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_values_are_frozen() {
        let d = DeviceSeed::new(99);
        assert_eq!(
            d.site_normal(3, 4, tag::LUT_DELAY),
            d.site_normal(3, 4, tag::LUT_DELAY)
        );
        assert_eq!(d.site_hash(1, 2, 3), d.site_hash(1, 2, 3));
    }

    #[test]
    fn sites_and_tags_are_independent() {
        let d = DeviceSeed::new(99);
        assert_ne!(
            d.site_normal(0, 0, tag::LUT_DELAY),
            d.site_normal(0, 1, tag::LUT_DELAY)
        );
        assert_ne!(
            d.site_normal(0, 0, tag::LUT_DELAY),
            d.site_normal(1, 0, tag::LUT_DELAY)
        );
        assert_ne!(
            d.site_normal(0, 0, tag::LUT_DELAY),
            d.site_normal(0, 0, tag::CARRY_BIN)
        );
    }

    #[test]
    fn devices_differ() {
        let a = DeviceSeed::new(1);
        let b = DeviceSeed::new(2);
        assert_ne!(a.site_normal(0, 0, 1), b.site_normal(0, 0, 1));
    }

    #[test]
    fn multipliers_have_requested_spread() {
        let pv = ProcessVariation::new(0.04, 0.06, 0.01);
        let d = DeviceSeed::new(42);
        let n = 50_000u64;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for i in 0..n {
            let f = pv.delay_multiplier(d, i, i / 7);
            assert!(f > 0.5 && f < 1.5);
            sum += f;
            sum2 += f * f;
        }
        let mean = sum / n as f64;
        let sd = (sum2 / n as f64 - mean * mean).sqrt();
        assert!((mean - 1.0).abs() < 0.002, "mean {mean}");
        assert!((sd - 0.04).abs() < 0.003, "sd {sd}");
    }

    #[test]
    fn none_variation_is_exactly_nominal() {
        let pv = ProcessVariation::NONE;
        let d = DeviceSeed::new(7);
        assert_eq!(pv.delay_multiplier(d, 5, 6), 1.0);
        assert_eq!(pv.carry_bin_multiplier(d, 5, 6), 1.0);
        assert_eq!(pv.clock_leaf_multiplier(d, 5, 6), 1.0);
    }

    #[test]
    fn multipliers_are_truncated_to_stay_positive() {
        let pv = ProcessVariation::new(0.2, 0.2, 0.2);
        let d = DeviceSeed::new(1234);
        for i in 0..100_000u64 {
            let f = pv.delay_multiplier(d, i, 0);
            assert!(f >= 1.0 - 0.2 * 4.0 - 1e-12);
            assert!(f <= 1.0 + 0.2 * 4.0 + 1e-12);
            assert!(f > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "lut_sigma_rel must be in [0, 0.25)")]
    fn rejects_out_of_range_sigma() {
        let _ = ProcessVariation::new(0.3, 0.0, 0.0);
    }
}
