//! Scripted adversarial campaigns over the noise primitives.
//!
//! The noise layer exposes attacker-facing primitives — [`AttackInjection`]
//! for manipulative injection and [`GlobalModulation`] for environmental
//! (supply/temperature) influence — but each simulation so far wired them
//! in statically. A [`Scenario`] composes those primitives into a
//! *time-scheduled campaign*: an ordered list of [`ScenarioPhase`]s, each
//! switching the ambient [`NoiseEnvironment`] at a scheduled onset. The
//! entropy-pool layer compiles scenarios into its fault schedule and replays
//! them deterministically; this module only describes *what* the adversary
//! does and *when*.
//!
//! An environment is an **override set**: each `Some` field replaces the
//! corresponding source of the base configuration it is applied to, `None`
//! keeps the base source, and `white_sigma_scale` multiplies the thermal
//! sigma. The default environment is therefore an exact identity.
//!
//! # Examples
//!
//! ```
//! use trng_fpga_sim::scenario::Scenario;
//! use trng_fpga_sim::time::Ps;
//!
//! let campaign = Scenario::injection_locking(Ps::from_us(50.0), 1e12 / 480.0, 0.8);
//! assert_eq!(campaign.phases.len(), 1);
//! assert!(campaign.phases[0].env.attack.is_some());
//! ```

use crate::noise::{
    AttackInjection, FlickerParams, GlobalModulation, NoiseConfig, SupplyTone, WhiteNoise,
};
use crate::time::Ps;

/// An override set describing the ambient noise conditions of one
/// campaign phase.
///
/// Applied to a base [`NoiseConfig`] via [`NoiseEnvironment::apply_to`]:
/// `Some` fields replace the base source, `None` fields keep it, and
/// `white_sigma_scale` multiplies the white (thermal) sigma. The
/// [`Default`] environment leaves any base configuration unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseEnvironment {
    /// Attacker-controlled injection replacing the base attack, if any.
    pub attack: Option<AttackInjection>,
    /// Global supply/temperature modulation replacing the base one.
    pub global: Option<GlobalModulation>,
    /// Flicker parameters replacing the base flicker process.
    pub flicker: Option<FlickerParams>,
    /// Multiplier applied to the white-noise sigma (1.0 = unchanged).
    pub white_sigma_scale: f64,
}

impl Default for NoiseEnvironment {
    fn default() -> Self {
        NoiseEnvironment {
            attack: None,
            global: None,
            flicker: None,
            white_sigma_scale: 1.0,
        }
    }
}

impl NoiseEnvironment {
    /// Applies the override set to a base noise configuration.
    ///
    /// # Panics
    ///
    /// Panics if the scaled white sigma is negative or not finite
    /// (enforced by [`WhiteNoise::new`]).
    pub fn apply_to(&self, base: &NoiseConfig) -> NoiseConfig {
        NoiseConfig {
            white: WhiteNoise::new(base.white.sigma() * self.white_sigma_scale),
            flicker: self.flicker.or(base.flicker),
            global: self.global.clone().or_else(|| base.global.clone()),
            attack: self.attack.or(base.attack),
        }
    }
}

/// One scheduled step of a campaign: at `onset` (relative to campaign
/// start) the ambient environment switches to `env` and stays until the
/// next phase takes over.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPhase {
    /// Time after campaign start at which this environment takes effect.
    pub onset: Ps,
    /// The environment in force from `onset` on.
    pub env: NoiseEnvironment,
}

/// A named, time-scheduled adversarial campaign.
///
/// Phases are strictly ordered by onset; the canonical constructors
/// below build the campaigns exercised by the adversarial soak and the
/// `pool_adversarial` bench.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (stable; used as a benchmark key).
    pub name: String,
    /// The scheduled phases, strictly ordered by onset.
    pub phases: Vec<ScenarioPhase>,
}

impl Scenario {
    /// Creates a scenario from explicit phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, any onset is negative or not
    /// finite, or onsets are not strictly increasing.
    pub fn new(name: impl Into<String>, phases: Vec<ScenarioPhase>) -> Self {
        assert!(!phases.is_empty(), "a scenario needs at least one phase");
        for pair in phases.windows(2) {
            assert!(
                pair[0].onset < pair[1].onset,
                "scenario phases must have strictly increasing onsets"
            );
        }
        for p in &phases {
            assert!(
                p.onset.is_finite() && p.onset >= Ps::ZERO,
                "phase onset must be finite and non-negative, got {}",
                p.onset
            );
        }
        Scenario {
            name: name.into(),
            phases,
        }
    }

    /// Temperature ramp: from `onset` on, all stage delays drift at
    /// `drift_per_s` (fractional change per second of simulated time,
    /// clamped by [`GlobalModulation::delay_factor`] to ±50 %).
    ///
    /// Slow common-mode drift does not touch the white-jitter budget,
    /// so the SP 800-90B gates — designed to tolerate worst-case edge
    /// offset — stay silent; catching it is the monitor's job.
    pub fn thermal_ramp(onset: Ps, drift_per_s: f64) -> Self {
        Scenario::new(
            "thermal_ramp",
            vec![ScenarioPhase {
                onset,
                env: NoiseEnvironment {
                    global: Some(GlobalModulation::new().with_thermal_drift(drift_per_s)),
                    ..NoiseEnvironment::default()
                },
            }],
        )
    }

    /// Escalating supply tone: starting at `onset`, a tone at
    /// `frequency_hz` ramps its relative amplitude from
    /// `peak_amplitude / steps` up to `peak_amplitude` in `steps`
    /// phases spaced `step` apart.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or the peak amplitude is outside the
    /// `[0, 0.5)` range [`SupplyTone::new`] accepts.
    pub fn supply_ramp(
        onset: Ps,
        frequency_hz: f64,
        peak_amplitude: f64,
        steps: usize,
        step: Ps,
    ) -> Self {
        assert!(steps > 0, "supply ramp needs at least one step");
        let phases = (1..=steps)
            .map(|i| ScenarioPhase {
                onset: onset + step * (i - 1) as f64,
                env: NoiseEnvironment {
                    global: Some(GlobalModulation::supply_tone(SupplyTone::new(
                        frequency_hz,
                        peak_amplitude * i as f64 / steps as f64,
                    ))),
                    ..NoiseEnvironment::default()
                },
            })
            .collect();
        Scenario::new("supply_ramp", phases)
    }

    /// Injection locking at `frequency_hz` with the given strength:
    /// the attacker pulls every transition toward a periodic grid,
    /// collapsing the accumulated jitter the entropy claim rests on.
    pub fn injection_locking(onset: Ps, frequency_hz: f64, strength: f64) -> Self {
        Scenario::new(
            "injection_locking",
            vec![ScenarioPhase {
                onset,
                env: NoiseEnvironment {
                    attack: Some(AttackInjection::locking(frequency_hz, strength)),
                    ..NoiseEnvironment::default()
                },
            }],
        )
    }

    /// Flicker-dominated regime: from `onset` on, a strong 1/f process
    /// (stationary sigma `sigma`, correlation time `tau_c`) replaces
    /// the base flicker while the thermal sigma is halved — the
    /// Saarinen regime where bit correlations grow but short-range
    /// statistics stay plausible.
    pub fn flicker_dominated(onset: Ps, sigma: Ps, tau_c: Ps) -> Self {
        Scenario::new(
            "flicker_dominated",
            vec![ScenarioPhase {
                onset,
                env: NoiseEnvironment {
                    flicker: Some(FlickerParams::new(sigma, tau_c)),
                    white_sigma_scale: 0.5,
                    ..NoiseEnvironment::default()
                },
            }],
        )
    }

    /// Cross-shard correlated supply noise: one tone at `frequency_hz`
    /// with relative amplitude `amplitude`, meant to be applied to
    /// *every* shard of a pool so their outputs pick up a common
    /// periodic component.
    pub fn shared_supply_tone(onset: Ps, frequency_hz: f64, amplitude: f64) -> Self {
        Scenario::new(
            "shared_supply_tone",
            vec![ScenarioPhase {
                onset,
                env: NoiseEnvironment {
                    global: Some(GlobalModulation::supply_tone(SupplyTone::new(
                        frequency_hz,
                        amplitude,
                    ))),
                    ..NoiseEnvironment::default()
                },
            }],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_environment_is_identity() {
        let base = NoiseConfig::white_only(Ps::from_ps(2.6))
            .with_flicker(FlickerParams::default())
            .with_attack(AttackInjection::periodic(Ps::from_ps(3.0), 5e6));
        let out = NoiseEnvironment::default().apply_to(&base);
        assert_eq!(out.white.sigma(), base.white.sigma());
        assert_eq!(out.flicker, base.flicker);
        assert_eq!(out.attack, base.attack);
        assert!(out.global.is_none());
    }

    #[test]
    fn overrides_replace_and_scale() {
        let base = NoiseConfig::white_only(Ps::from_ps(2.0)).with_flicker(FlickerParams::default());
        let env = NoiseEnvironment {
            attack: Some(AttackInjection::locking(1e12 / 480.0, 0.5)),
            white_sigma_scale: 0.5,
            ..NoiseEnvironment::default()
        };
        let out = env.apply_to(&base);
        assert_eq!(out.white.sigma(), Ps::from_ps(1.0));
        assert_eq!(out.flicker, base.flicker, "None keeps the base flicker");
        assert_eq!(out.attack, env.attack);
    }

    #[test]
    fn supply_ramp_escalates_monotonically() {
        let s = Scenario::supply_ramp(Ps::from_us(10.0), 5e6, 0.04, 4, Ps::from_us(20.0));
        assert_eq!(s.phases.len(), 4);
        let amplitude =
            |p: &ScenarioPhase| p.env.global.as_ref().expect("tone").tones[0].amplitude_rel;
        for pair in s.phases.windows(2) {
            assert!(pair[0].onset < pair[1].onset);
            assert!(amplitude(&pair[0]) < amplitude(&pair[1]));
        }
        assert!((amplitude(&s.phases[3]) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn canonical_scenarios_have_expected_shape() {
        let ramp = Scenario::thermal_ramp(Ps::from_us(30.0), 40.0);
        assert_eq!(ramp.name, "thermal_ramp");
        assert!(ramp.phases[0].env.global.is_some());

        let lock = Scenario::injection_locking(Ps::from_us(30.0), 1e12 / 480.0, 0.8);
        assert!(lock.phases[0].env.attack.is_some());

        let flicker =
            Scenario::flicker_dominated(Ps::from_us(30.0), Ps::from_ps(8.0), Ps::from_us(0.2));
        assert!(flicker.phases[0].env.flicker.is_some());
        assert!(flicker.phases[0].env.white_sigma_scale < 1.0);

        let tone = Scenario::shared_supply_tone(Ps::from_us(30.0), 5e6, 0.004);
        assert!(tone.phases[0].env.global.is_some());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_phases_are_rejected() {
        let phase = |us: f64| ScenarioPhase {
            onset: Ps::from_us(us),
            env: NoiseEnvironment::default(),
        };
        let _ = Scenario::new("bad", vec![phase(20.0), phase(10.0)]);
    }
}
