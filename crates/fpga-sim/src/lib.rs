//! Physics-level timing simulator of FPGA ring oscillators and
//! carry-chain time-to-digital converters.
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Highly Efficient Entropy Extraction for True Random Number
//! Generators on FPGAs"* (Rozic, Yang, Dehaene, Verbauwhede —
//! DAC 2015). The paper's entropy source is analog timing jitter in a
//! Xilinx Spartan-6; this crate replaces the silicon with an
//! event-driven simulation whose stochastic behaviour follows the
//! paper's own platform model:
//!
//! * [`ring_oscillator`] — free-running LUT ring with per-transition
//!   white (thermal) jitter, optional flicker noise, global supply /
//!   temperature modulation and attacker injection ([`noise`]);
//! * [`delay_line`] — CARRY4-based tapped delay lines with structural
//!   and process DNL, clock-region skew and flip-flop metastability
//!   ([`primitives`]);
//! * [`fabric`] / [`placement`] — Spartan-6-like geometry, clock
//!   regions, placement constraints and slice accounting;
//! * [`process`] — frozen per-device process variation.
//!
//! # Quick example
//!
//! Sample a noisy ring oscillator with a 17 ps TDC, as the paper's
//! digitization block does:
//!
//! ```
//! use trng_fpga_sim::delay_line::TappedDelayLine;
//! use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
//! use trng_fpga_sim::rng::SimRng;
//! use trng_fpga_sim::time::Ps;
//!
//! let mut rng = SimRng::seed_from(2015);
//! let mut ro = RingOscillator::new(RingOscillatorConfig::paper_default(), rng.fork())
//!     .expect("valid configuration");
//! let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
//!
//! let t_sample = Ps::from_ns(10.0); // tA = 10 ns of jitter accumulation
//! ro.run_until(t_sample);
//! let word = line.sample(&ro.node(0), t_sample, &mut rng);
//! assert_eq!(word.len(), 36);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod delay_line;
pub mod edge_train;
pub mod fabric;
pub mod noise;
pub mod placement;
pub mod primitives;
pub mod process;
pub mod ring_oscillator;
pub mod rng;
pub mod scenario;
pub mod time;
pub mod trace;

pub use batch::BatchedRingEngine;
pub use delay_line::TappedDelayLine;
pub use edge_train::{EdgeTrain, SignalSource};
pub use fabric::{Fabric, ResourceUsage, SliceCoord};
pub use noise::{NoiseBackend, NoiseConfig};
pub use placement::{PlacementError, TrngPlacement};
pub use process::{DeviceSeed, ProcessVariation};
pub use ring_oscillator::{RingOscillator, RingOscillatorConfig};
pub use rng::SimRng;
pub use scenario::{NoiseEnvironment, Scenario, ScenarioPhase};
pub use time::Ps;
