//! Noise sources acting on fabric delays.
//!
//! The paper's stochastic model (Section 4.1) distinguishes:
//!
//! * **White (thermal) noise** — independent Gaussian jitter per
//!   transition event, the *only* source credited with entropy
//!   ([`white`]).
//! * **Other noise sources** — flicker noise ([`flicker`]), global
//!   noises from power-supply variation ([`global`]) and manipulative
//!   attacker influence ([`attack`]). The paper deliberately does not
//!   quantify these and takes worst-case values; the simulator *does*
//!   implement them so that generated bitstreams exhibit the
//!   correlations and bias that drive the `n_NIST` column of Table 1
//!   and so that attack scenarios can be exercised.
//!
//! A [`NoiseConfig`] bundles the sources; [`StageNoise`] is the
//! per-delay-stage run-time state.

pub mod attack;
pub mod flicker;
pub mod global;
pub mod white;

pub use attack::AttackInjection;
pub use flicker::{FlickerNoise, FlickerParams};
pub use global::{GlobalModulation, SupplyTone};
pub use white::WhiteNoise;

use crate::rng::SimRng;
use crate::time::Ps;

/// How run-time noise variates are synthesised.
///
/// * [`NoiseBackend::Scalar`] — the replay/golden oracle: one
///   Box–Muller draw per transition event, in the exact sequence every
///   byte-identical stream, trace, and journal in this repository is
///   pinned to. The default.
/// * [`NoiseBackend::Batched`] — block synthesis: ziggurat Gaussians
///   filled from bulk word output and whole edge trains generated per
///   window. *Statistically* identical to `Scalar` (same distributions,
///   same OU recurrence, same modulation formulas evaluated at the
///   actual event times) but not draw-identical, so replay contracts
///   do not hold. Roughly an order of magnitude faster per raw bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoiseBackend {
    /// Scalar per-event Box–Muller synthesis (replay-exact).
    #[default]
    Scalar,
    /// Block ziggurat + whole-window edge-train synthesis
    /// (statistically equivalent, not draw-identical).
    Batched,
}

impl NoiseBackend {
    /// Stable lower-case name, used in CLI flags and metrics JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            NoiseBackend::Scalar => "scalar",
            NoiseBackend::Batched => "batched",
        }
    }

    /// Compact encoding for lock-free publication.
    pub fn as_u8(self) -> u8 {
        match self {
            NoiseBackend::Scalar => 0,
            NoiseBackend::Batched => 1,
        }
    }

    /// Inverse of [`NoiseBackend::as_u8`] (unknown values decode as the
    /// scalar default).
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => NoiseBackend::Batched,
            _ => NoiseBackend::Scalar,
        }
    }
}

impl std::fmt::Display for NoiseBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for NoiseBackend {
    type Err = String;

    /// Parses the CLI spelling ([`NoiseBackend::as_str`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(NoiseBackend::Scalar),
            "batched" => Ok(NoiseBackend::Batched),
            other => Err(format!(
                "unknown noise backend {other:?} (expected \"scalar\" or \"batched\")"
            )),
        }
    }
}

/// Full description of the noise environment of a simulation.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::noise::NoiseConfig;
/// use trng_fpga_sim::time::Ps;
///
/// // Thermal noise only, sigma = 2.6 ps per LUT transition:
/// let quiet = NoiseConfig::white_only(Ps::from_ps(2.6));
/// assert!(quiet.is_white_only());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NoiseConfig {
    /// Thermal jitter per transition event.
    pub white: WhiteNoise,
    /// Low-frequency correlated (1/f) noise, if enabled.
    pub flicker: Option<FlickerParams>,
    /// Deterministic global delay modulation (supply, temperature).
    pub global: Option<GlobalModulation>,
    /// Attacker-controlled injection.
    pub attack: Option<AttackInjection>,
}

impl NoiseConfig {
    /// A configuration with only white thermal noise of the given sigma.
    pub fn white_only(sigma: Ps) -> Self {
        NoiseConfig {
            white: WhiteNoise::new(sigma),
            ..NoiseConfig::default()
        }
    }

    /// `true` if no coloured/global/attack source is enabled.
    pub fn is_white_only(&self) -> bool {
        self.flicker.is_none() && self.global.is_none() && self.attack.is_none()
    }

    /// Adds flicker noise, builder-style.
    pub fn with_flicker(mut self, params: FlickerParams) -> Self {
        self.flicker = Some(params);
        self
    }

    /// Adds global supply/temperature modulation, builder-style.
    pub fn with_global(mut self, modulation: GlobalModulation) -> Self {
        self.global = Some(modulation);
        self
    }

    /// Adds attacker injection, builder-style.
    pub fn with_attack(mut self, attack: AttackInjection) -> Self {
        self.attack = Some(attack);
        self
    }
}

/// Run-time noise state attached to one delay stage.
///
/// Owns the flicker-process state (which is per-stage and correlated in
/// time); white noise is memoryless and global/attack terms are pure
/// functions of absolute time shared by all stages.
#[derive(Debug, Clone)]
pub struct StageNoise {
    flicker: Option<FlickerNoise>,
}

impl StageNoise {
    /// Creates the per-stage state for a configuration.
    pub fn new(config: &NoiseConfig, rng: &mut SimRng) -> Self {
        StageNoise {
            flicker: config.flicker.map(|p| FlickerNoise::new(p, rng)),
        }
    }

    /// Computes the jitter added to one transition of a stage whose
    /// nominal (process-adjusted) delay is `nominal`, occurring at
    /// absolute time `t`.
    ///
    /// Returns the *total* stage delay for this transition. The result
    /// is clamped to 5 % of nominal so that extreme tail draws cannot
    /// produce a non-causal (negative) delay.
    pub fn stage_delay(
        &mut self,
        config: &NoiseConfig,
        nominal: Ps,
        t: Ps,
        rng: &mut SimRng,
    ) -> Ps {
        let mut d = nominal;
        if let Some(g) = &config.global {
            d = d * g.delay_factor(t);
        }
        d += config.white.sample(rng);
        if let Some(f) = &mut self.flicker {
            d += f.sample(t, rng);
        }
        if let Some(a) = &config.attack {
            // The attack acts on the *prospective* edge time, so an
            // injection-locking attack can correct the accumulated
            // phase error of this very transition.
            d += a.injected_delay(t + d);
        }
        d.max(nominal * 0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_only_detection() {
        let c = NoiseConfig::white_only(Ps::from_ps(2.0));
        assert!(c.is_white_only());
        let c = c.with_flicker(FlickerParams::default());
        assert!(!c.is_white_only());
    }

    #[test]
    fn stage_delay_reduces_to_white_noise() {
        let config = NoiseConfig::white_only(Ps::from_ps(2.0));
        let mut rng = SimRng::seed_from(1);
        let mut stage = StageNoise::new(&config, &mut rng);
        let nominal = Ps::from_ps(480.0);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for i in 0..n {
            let d = stage
                .stage_delay(&config, nominal, Ps::from_ps(i as f64 * 480.0), &mut rng)
                .as_ps();
            sum += d;
            sum2 += d * d;
        }
        let mean = sum / n as f64;
        let sd = (sum2 / n as f64 - mean * mean).sqrt();
        assert!((mean - 480.0).abs() < 0.1, "mean {mean}");
        assert!((sd - 2.0).abs() < 0.1, "sd {sd}");
    }

    #[test]
    fn stage_delay_never_non_positive() {
        // Absurdly large white noise to stress the clamp.
        let config = NoiseConfig::white_only(Ps::from_ps(500.0));
        let mut rng = SimRng::seed_from(2);
        let mut stage = StageNoise::new(&config, &mut rng);
        for i in 0..10_000 {
            let d = stage.stage_delay(&config, Ps::from_ps(480.0), Ps::from_ps(i as f64), &mut rng);
            assert!(d.as_ps() > 0.0);
        }
    }

    #[test]
    fn builder_composes_all_sources() {
        let c = NoiseConfig::white_only(Ps::from_ps(2.0))
            .with_flicker(FlickerParams::default())
            .with_global(GlobalModulation::supply_tone(SupplyTone::new(1e6, 0.002)))
            .with_attack(AttackInjection::periodic(Ps::from_ps(3.0), 5e6));
        assert!(c.flicker.is_some());
        assert!(c.global.is_some());
        assert!(c.attack.is_some());
    }
}
