//! Flicker (1/f) noise — low-frequency correlated delay fluctuation.
//!
//! The paper (assumption 2, Section 4.1, and the measurement discussion
//! in Section 5.1 citing Haddad et al., DATE 2014) notes that flicker
//! noise dominates jitter measurements longer than ~1 µs and is *not*
//! credited with entropy; the stochastic model treats it as a
//! worst-case shift of the offset τ.
//!
//! The simulator models per-stage flicker as an Ornstein–Uhlenbeck
//! (OU) process sampled at transition instants. An OU process has a
//! Lorentzian spectrum — flat below the corner `1/(2π·tau_c)` and
//! `1/f²` above. Superimposing it on white noise produces the
//! practically relevant behaviour: jitter variance grows ~linearly for
//! short accumulation times (white-dominated) and super-linearly once
//! the correlated component dominates, exactly the effect that makes
//! long jitter measurements overestimate thermal sigma (Section 5.1).

use crate::rng::SimRng;
use crate::time::Ps;

/// Parameters of the per-stage flicker process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlickerParams {
    /// Stationary standard deviation of the delay fluctuation.
    pub sigma: Ps,
    /// Correlation time of the process (spectrum corner ≈ 1/(2π·tau_c)).
    pub tau_c: Ps,
}

impl FlickerParams {
    /// Creates flicker parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or `tau_c` is not strictly positive.
    pub fn new(sigma: Ps, tau_c: Ps) -> Self {
        assert!(
            sigma.as_ps() >= 0.0 && sigma.is_finite(),
            "flicker sigma must be finite and non-negative, got {sigma}"
        );
        assert!(
            tau_c.as_ps() > 0.0 && tau_c.is_finite(),
            "flicker correlation time must be positive, got {tau_c}"
        );
        FlickerParams { sigma, tau_c }
    }
}

impl Default for FlickerParams {
    /// Mild flicker: 0.5 ps stationary sigma, 1 µs correlation time.
    ///
    /// These defaults keep flicker subdominant to thermal noise at the
    /// 10–200 ns accumulation times of Table 1 while still producing
    /// visible low-frequency structure in long bitstreams.
    fn default() -> Self {
        FlickerParams::new(Ps::from_ps(0.5), Ps::from_us(1.0))
    }
}

/// Run-time state of one stage's flicker process.
///
/// The OU state `x` evolves between transition events at times
/// `t_k` as
/// `x(t_{k+1}) = x(t_k)·exp(-Δ/τ) + σ·sqrt(1 - exp(-2Δ/τ))·N(0,1)`,
/// which is the exact OU transition density — no discretization error
/// regardless of how irregular the event spacing is.
#[derive(Debug, Clone)]
pub struct FlickerNoise {
    params: FlickerParams,
    state: f64,
    last_t: Option<Ps>,
}

impl FlickerNoise {
    /// Creates a stage process with a stationary initial state.
    pub fn new(params: FlickerParams, rng: &mut SimRng) -> Self {
        let state = rng.gaussian(0.0, params.sigma.as_ps());
        FlickerNoise {
            params,
            state,
            last_t: None,
        }
    }

    /// Returns the delay perturbation at time `t`, advancing the state.
    ///
    /// Calls must be made with non-decreasing `t`; out-of-order times
    /// are treated as zero elapsed time (state unchanged).
    pub fn sample(&mut self, t: Ps, rng: &mut SimRng) -> Ps {
        if self.params.sigma == Ps::ZERO {
            return Ps::ZERO;
        }
        if let Some(last) = self.last_t {
            let dt = (t - last).max(Ps::ZERO);
            let a = (-(dt / self.params.tau_c)).exp();
            let innovation_sd = self.params.sigma.as_ps() * (1.0 - a * a).sqrt();
            self.state = self.state * a + rng.gaussian(0.0, innovation_sd);
        }
        self.last_t = Some(t);
        Ps::from_ps(self.state)
    }

    /// The current state without advancing time.
    pub fn current(&self) -> Ps {
        Ps::from_ps(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_variance_matches_sigma() {
        let params = FlickerParams::new(Ps::from_ps(2.0), Ps::from_ns(10.0));
        let mut rng = SimRng::seed_from(4);
        // Average over many independent processes at a fixed time to
        // estimate the ensemble variance.
        let n = 20_000;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let mut f = FlickerNoise::new(params, &mut rng);
            // advance well past tau_c so the initial state decorrelates
            let x = f.sample(Ps::from_ns(100.0), &mut rng).as_ps();
            let x2 = {
                let _ = x;
                f.sample(Ps::from_ns(200.0), &mut rng).as_ps()
            };
            sum2 += x2 * x2;
        }
        let sd = (sum2 / n as f64).sqrt();
        assert!((sd - 2.0).abs() < 0.08, "sd {sd}");
    }

    #[test]
    fn short_interval_samples_are_strongly_correlated() {
        let params = FlickerParams::new(Ps::from_ps(2.0), Ps::from_us(1.0));
        let mut rng = SimRng::seed_from(5);
        let mut f = FlickerNoise::new(params, &mut rng);
        let a = f.sample(Ps::from_ps(0.0), &mut rng).as_ps();
        let b = f.sample(Ps::from_ps(480.0), &mut rng).as_ps();
        // 480 ps << 1 us correlation time -> nearly identical values.
        assert!((a - b).abs() < 0.5, "a={a} b={b}");
    }

    #[test]
    fn long_interval_samples_decorrelate() {
        let params = FlickerParams::new(Ps::from_ps(2.0), Ps::from_ns(1.0));
        let mut rng = SimRng::seed_from(6);
        let n = 10_000;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let mut f = FlickerNoise::new(params, &mut rng);
            let a = f.sample(Ps::ZERO, &mut rng).as_ps();
            let b = f.sample(Ps::from_us(1.0), &mut rng).as_ps();
            pairs.push((a, b));
        }
        let ma = pairs.iter().map(|p| p.0).sum::<f64>() / n as f64;
        let mb = pairs.iter().map(|p| p.1).sum::<f64>() / n as f64;
        let cov = pairs.iter().map(|p| (p.0 - ma) * (p.1 - mb)).sum::<f64>() / n as f64;
        let corr = cov / (2.0 * 2.0);
        assert!(corr.abs() < 0.05, "corr {corr}");
    }

    #[test]
    fn zero_sigma_process_is_silent() {
        let params = FlickerParams::new(Ps::ZERO, Ps::from_ns(1.0));
        let mut rng = SimRng::seed_from(7);
        let mut f = FlickerNoise::new(params, &mut rng);
        assert_eq!(f.sample(Ps::from_ns(5.0), &mut rng), Ps::ZERO);
    }

    #[test]
    fn out_of_order_time_does_not_panic() {
        let params = FlickerParams::default();
        let mut rng = SimRng::seed_from(8);
        let mut f = FlickerNoise::new(params, &mut rng);
        let _ = f.sample(Ps::from_ns(10.0), &mut rng);
        let _ = f.sample(Ps::from_ns(5.0), &mut rng); // earlier: no-op step
        assert!(f.current().is_finite());
    }

    #[test]
    #[should_panic(expected = "flicker correlation time must be positive")]
    fn rejects_zero_tau() {
        let _ = FlickerParams::new(Ps::from_ps(1.0), Ps::ZERO);
    }
}
