//! Attacker-controlled manipulative influence.
//!
//! The paper's assumption 2 (Section 4.1) explicitly lists
//! "manipulative influence of the attacker (for example by EM
//! radiation)" among the non-quantified noise sources, and the entropy
//! lower bound is taken at the worst-case offset precisely to survive
//! such manipulation. The simulator implements two classic active
//! attacks on ring-oscillator TRNGs:
//!
//! * **Periodic injection** — an EM tone couples into the ring and
//!   adds a deterministic periodic delay perturbation. If strong
//!   enough this *injection-locks* the oscillator to the attack tone,
//!   collapsing the effective jitter seen by the sampler.
//! * **Jitter squeezing** — a perturbation proportional to the
//!   accumulated phase error pulls edges back toward the deterministic
//!   grid, directly reducing `sigma_acc`.
//!
//! Both reduce true entropy while leaving short-range statistics
//! plausible — the scenario the paper's evaluation methodology (model +
//! lower bound, not just black-box tests) is designed to catch. The
//! `attack_scenario` example demonstrates detection via the embedded
//! health tests.

use crate::time::Ps;

/// An attacker-controlled delay perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackInjection {
    /// Additive periodic delay `amplitude · sin(2π f t)` on every stage.
    Periodic {
        /// Peak additional delay per stage transition.
        amplitude: Ps,
        /// Injection frequency in Hz.
        frequency_hz: f64,
    },
    /// Deterministic square-wave injection (harmonic-rich EM pulse train).
    PulseTrain {
        /// Additional delay while the pulse is high.
        amplitude: Ps,
        /// Pulse repetition frequency in Hz.
        frequency_hz: f64,
        /// Duty cycle in (0, 1).
        duty: f64,
    },
    /// Injection locking: every transition is pulled toward the nearest
    /// point of the attack tone's phase grid — a discretized first-order
    /// Adler model. This is the attack that actually *removes* entropy:
    /// the restoring force turns the jitter random walk into a bounded
    /// Ornstein–Uhlenbeck process, collapsing `σ_acc`.
    Locking {
        /// Attack tone frequency in Hz (its period is the phase grid).
        frequency_hz: f64,
        /// Fraction of the phase error corrected per transition, in
        /// `(0, 1]`.
        strength: f64,
    },
}

impl AttackInjection {
    /// Creates a sinusoidal injection.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not positive or `amplitude` negative.
    pub fn periodic(amplitude: Ps, frequency_hz: f64) -> Self {
        assert!(
            amplitude.as_ps() >= 0.0,
            "attack amplitude must be non-negative, got {amplitude}"
        );
        assert!(
            frequency_hz > 0.0 && frequency_hz.is_finite(),
            "attack frequency must be positive, got {frequency_hz}"
        );
        AttackInjection::Periodic {
            amplitude,
            frequency_hz,
        }
    }

    /// Creates a pulse-train injection.
    ///
    /// # Panics
    ///
    /// Panics on non-positive frequency, negative amplitude or a duty
    /// cycle outside `(0, 1)`.
    pub fn pulse_train(amplitude: Ps, frequency_hz: f64, duty: f64) -> Self {
        assert!(
            amplitude.as_ps() >= 0.0,
            "attack amplitude must be non-negative"
        );
        assert!(
            frequency_hz > 0.0 && frequency_hz.is_finite(),
            "attack frequency must be positive"
        );
        assert!(
            (0.0..1.0).contains(&duty) && duty > 0.0,
            "duty cycle must be in (0, 1), got {duty}"
        );
        AttackInjection::PulseTrain {
            amplitude,
            frequency_hz,
            duty,
        }
    }

    /// Creates an injection-locking attack.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not positive or `strength` outside
    /// `(0, 1]`.
    pub fn locking(frequency_hz: f64, strength: f64) -> Self {
        assert!(
            frequency_hz > 0.0 && frequency_hz.is_finite(),
            "attack frequency must be positive, got {frequency_hz}"
        );
        assert!(
            strength > 0.0 && strength <= 1.0,
            "locking strength must be in (0, 1], got {strength}"
        );
        AttackInjection::Locking {
            frequency_hz,
            strength,
        }
    }

    /// Deterministic extra delay injected for a transition whose
    /// (prospective) edge lands at absolute time `t`.
    #[inline]
    pub fn injected_delay(&self, t: Ps) -> Ps {
        match *self {
            AttackInjection::Periodic {
                amplitude,
                frequency_hz,
            } => {
                let omega = 2.0 * core::f64::consts::PI * frequency_hz;
                amplitude * (omega * t.as_s()).sin()
            }
            AttackInjection::PulseTrain {
                amplitude,
                frequency_hz,
                duty,
            } => {
                let period_s = 1.0 / frequency_hz;
                let phase = (t.as_s() / period_s).rem_euclid(1.0);
                if phase < duty {
                    amplitude
                } else {
                    Ps::ZERO
                }
            }
            AttackInjection::Locking {
                frequency_hz,
                strength,
            } => {
                // Signed distance of `t` from the nearest grid point of
                // the attack period, corrected by `strength`.
                let period_ps = 1e12 / frequency_hz;
                let err = (t.as_ps() / period_ps + 0.5).rem_euclid(1.0) - 0.5;
                Ps::from_ps(-strength * err * period_ps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_injection_is_sinusoidal() {
        let a = AttackInjection::periodic(Ps::from_ps(5.0), 1e6);
        assert!((a.injected_delay(Ps::from_us(0.25)).as_ps() - 5.0).abs() < 1e-9);
        assert!((a.injected_delay(Ps::from_us(0.75)).as_ps() + 5.0).abs() < 1e-9);
        assert!(a.injected_delay(Ps::ZERO).abs().as_ps() < 1e-9);
    }

    #[test]
    fn pulse_train_respects_duty() {
        let a = AttackInjection::pulse_train(Ps::from_ps(10.0), 1e6, 0.25);
        // 1 MHz -> 1 us period, high for the first 0.25 us.
        assert_eq!(a.injected_delay(Ps::from_us(0.1)).as_ps(), 10.0);
        assert_eq!(a.injected_delay(Ps::from_us(0.5)).as_ps(), 0.0);
        assert_eq!(a.injected_delay(Ps::from_us(1.1)).as_ps(), 10.0);
    }

    #[test]
    fn injection_is_deterministic() {
        let a = AttackInjection::periodic(Ps::from_ps(5.0), 3.7e6);
        let t = Ps::from_ns(123.456);
        assert_eq!(a.injected_delay(t), a.injected_delay(t));
    }

    #[test]
    #[should_panic(expected = "duty cycle must be in (0, 1)")]
    fn rejects_bad_duty() {
        let _ = AttackInjection::pulse_train(Ps::from_ps(1.0), 1e6, 1.5);
    }

    #[test]
    fn locking_pulls_toward_the_grid() {
        // Grid period 480 ps, strength 0.5.
        let a = AttackInjection::locking(1e12 / 480.0, 0.5);
        // Exactly on grid: no correction.
        assert!(a.injected_delay(Ps::from_ps(960.0)).abs().as_ps() < 1e-9);
        // 100 ps late of a grid point: pulled back by 50 ps.
        let d = a.injected_delay(Ps::from_ps(960.0 + 100.0));
        assert!((d.as_ps() + 50.0).abs() < 1e-9, "{d}");
        // 100 ps early: pushed forward by 50 ps.
        let d = a.injected_delay(Ps::from_ps(960.0 - 100.0));
        assert!((d.as_ps() - 50.0).abs() < 1e-9, "{d}");
    }

    #[test]
    fn locking_bounds_accumulated_jitter() {
        use crate::ring_oscillator::{RingOscillator, RingOscillatorConfig};
        use crate::rng::SimRng;
        // Free-running vs locked ring: spread of the last-edge offset
        // at t = 5 us collapses under locking.
        let spread = |attack: Option<AttackInjection>| -> f64 {
            let mut offsets = Vec::new();
            for seed in 0..300u64 {
                let mut cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6));
                cfg.noise.attack = attack;
                let mut ro = RingOscillator::new(cfg, SimRng::seed_from(seed)).unwrap();
                let t = Ps::from_us(5.0);
                ro.run_until(t);
                let last = ro
                    .node(0)
                    .edge_train()
                    .edges_in(t - Ps::from_ns(2.0), t)
                    .last()
                    .expect("an edge");
                offsets.push((t - last).as_ps());
            }
            let n = offsets.len() as f64;
            let mean = offsets.iter().sum::<f64>() / n;
            (offsets.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / n).sqrt()
        };
        let free = spread(None);
        let locked = spread(Some(AttackInjection::locking(1e12 / 480.0, 0.5)));
        // Free-running: sigma_acc(5 us) ~ 265 ps; locked: a few ps.
        assert!(free > 100.0, "free spread {free}");
        assert!(
            locked < free / 10.0,
            "locked spread {locked} vs free {free}"
        );
    }

    #[test]
    #[should_panic(expected = "locking strength must be in (0, 1]")]
    fn rejects_bad_locking_strength() {
        let _ = AttackInjection::locking(1e9, 0.0);
    }
}
