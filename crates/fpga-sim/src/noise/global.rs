//! Global deterministic delay modulation: supply and temperature.
//!
//! Section 2 of the paper warns that a designer "may believe that the
//! randomness is caused by the thermal jitter when in fact it is coming
//! from the unstable power supply" — and that such a TRNG produces weak
//! keys once the supply is stabilized. To make that failure mode
//! reproducible, the simulator supports a *deterministic* global
//! modulation of all fabric delays: a sum of supply-ripple tones plus a
//! linear temperature drift. Because it is deterministic it contributes
//! correlations and bias but **zero entropy**, exactly like the real
//! effect.

use crate::time::Ps;

/// One sinusoidal supply-ripple tone.
///
/// Delay sensitivity to supply voltage is modelled as a relative delay
/// modulation `amplitude_rel · sin(2π f t + phase)` applied
/// multiplicatively to every stage delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyTone {
    /// Tone frequency in Hz (e.g. 1e6 for 1 MHz switching-regulator ripple).
    pub frequency_hz: f64,
    /// Peak relative delay modulation (e.g. 0.002 = 0.2 %).
    pub amplitude_rel: f64,
    /// Phase offset in radians.
    pub phase: f64,
}

impl SupplyTone {
    /// Creates a tone with zero phase.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not positive or `amplitude_rel` is
    /// negative or ≥ 50 %.
    pub fn new(frequency_hz: f64, amplitude_rel: f64) -> Self {
        assert!(
            frequency_hz > 0.0 && frequency_hz.is_finite(),
            "tone frequency must be positive, got {frequency_hz}"
        );
        assert!(
            (0.0..0.5).contains(&amplitude_rel),
            "tone amplitude must be in [0, 0.5), got {amplitude_rel}"
        );
        SupplyTone {
            frequency_hz,
            amplitude_rel,
            phase: 0.0,
        }
    }

    /// Sets the phase, builder-style.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// Relative modulation value at absolute time `t`.
    #[inline]
    pub fn value_at(&self, t: Ps) -> f64 {
        let omega = 2.0 * core::f64::consts::PI * self.frequency_hz;
        self.amplitude_rel * (omega * t.as_s() + self.phase).sin()
    }
}

/// Deterministic global modulation of all fabric delays.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::noise::{GlobalModulation, SupplyTone};
/// use trng_fpga_sim::time::Ps;
///
/// let m = GlobalModulation::supply_tone(SupplyTone::new(1.0e6, 0.002));
/// let f = m.delay_factor(Ps::from_us(0.25)); // quarter period of 1 MHz
/// assert!((f - 1.002).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GlobalModulation {
    /// Supply-ripple tones (summed).
    pub tones: Vec<SupplyTone>,
    /// Linear temperature drift: relative delay change per second.
    /// Positive = delays grow over time (device heating up).
    pub thermal_drift_per_s: f64,
}

impl GlobalModulation {
    /// Creates an empty modulation (delay factor identically 1).
    pub fn new() -> Self {
        GlobalModulation::default()
    }

    /// Convenience constructor for a single supply tone.
    pub fn supply_tone(tone: SupplyTone) -> Self {
        GlobalModulation {
            tones: vec![tone],
            thermal_drift_per_s: 0.0,
        }
    }

    /// Adds a tone, builder-style.
    pub fn with_tone(mut self, tone: SupplyTone) -> Self {
        self.tones.push(tone);
        self
    }

    /// Sets thermal drift, builder-style.
    pub fn with_thermal_drift(mut self, drift_per_s: f64) -> Self {
        self.thermal_drift_per_s = drift_per_s;
        self
    }

    /// Multiplicative delay factor at absolute time `t`.
    ///
    /// The factor is clamped to `[0.5, 1.5]` to keep delays physical
    /// even under pathological tone stacking.
    #[inline]
    pub fn delay_factor(&self, t: Ps) -> f64 {
        let mut rel = self.thermal_drift_per_s * t.as_s();
        for tone in &self.tones {
            rel += tone.value_at(t);
        }
        (1.0 + rel).clamp(0.5, 1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_modulation_is_unity() {
        let m = GlobalModulation::new();
        assert_eq!(m.delay_factor(Ps::ZERO), 1.0);
        assert_eq!(m.delay_factor(Ps::from_ms(5.0)), 1.0);
    }

    #[test]
    fn tone_peaks_at_quarter_period() {
        let m = GlobalModulation::supply_tone(SupplyTone::new(1e6, 0.01));
        // period = 1 us, peak at 0.25 us.
        assert!((m.delay_factor(Ps::from_us(0.25)) - 1.01).abs() < 1e-9);
        assert!((m.delay_factor(Ps::from_us(0.75)) - 0.99).abs() < 1e-9);
        assert!((m.delay_factor(Ps::from_us(0.5)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tones_superpose() {
        let m = GlobalModulation::new()
            .with_tone(SupplyTone::new(1e6, 0.01))
            .with_tone(SupplyTone::new(1e6, 0.02));
        assert!((m.delay_factor(Ps::from_us(0.25)) - 1.03).abs() < 1e-9);
    }

    #[test]
    fn thermal_drift_is_linear() {
        let m = GlobalModulation::new().with_thermal_drift(0.01); // 1 %/s
        assert!((m.delay_factor(Ps::from_ms(100.0)) - 1.001).abs() < 1e-12);
    }

    #[test]
    fn factor_is_clamped() {
        let m = GlobalModulation::new().with_thermal_drift(10.0);
        assert_eq!(m.delay_factor(Ps::from_s(1.0)), 1.5);
        let m = GlobalModulation::new().with_thermal_drift(-10.0);
        assert_eq!(m.delay_factor(Ps::from_s(1.0)), 0.5);
    }

    #[test]
    fn phase_shifts_the_tone() {
        let tone = SupplyTone::new(1e6, 0.01).with_phase(core::f64::consts::FRAC_PI_2);
        assert!((tone.value_at(Ps::ZERO) - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tone amplitude must be in [0, 0.5)")]
    fn rejects_huge_amplitude() {
        let _ = SupplyTone::new(1e6, 0.6);
    }
}
