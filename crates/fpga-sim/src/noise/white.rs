//! White (thermal) noise — the entropy-bearing jitter source.
//!
//! Paper assumption 1 (Section 4.1): the delay of each LUT consists of
//! a deterministic component `d0_LUT` and a random component modelled
//! by `N(0, sigma_LUT^2)`; assumption 3: the white-noise components of
//! jitter realizations are mutually independent. [`WhiteNoise`]
//! implements exactly this: an i.i.d. zero-mean Gaussian added to
//! every transition.

use crate::rng::SimRng;
use crate::time::Ps;

/// Independent Gaussian jitter added to every transition event.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::noise::WhiteNoise;
/// use trng_fpga_sim::rng::SimRng;
/// use trng_fpga_sim::time::Ps;
///
/// let noise = WhiteNoise::new(Ps::from_ps(2.6));
/// let mut rng = SimRng::seed_from(0);
/// let jitter = noise.sample(&mut rng);
/// assert!(jitter.abs().as_ps() < 2.6 * 6.0); // within 6 sigma
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WhiteNoise {
    sigma: Ps,
}

impl WhiteNoise {
    /// Creates a white-noise source with the given per-transition sigma.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: Ps) -> Self {
        assert!(
            sigma.as_ps() >= 0.0 && sigma.is_finite(),
            "white-noise sigma must be finite and non-negative, got {sigma}"
        );
        WhiteNoise { sigma }
    }

    /// The per-transition standard deviation.
    pub fn sigma(&self) -> Ps {
        self.sigma
    }

    /// Draws one jitter realization.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> Ps {
        if self.sigma == Ps::ZERO {
            return Ps::ZERO;
        }
        Ps::from_ps(rng.gaussian(0.0, self.sigma.as_ps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_silent() {
        let noise = WhiteNoise::new(Ps::ZERO);
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            assert_eq!(noise.sample(&mut rng), Ps::ZERO);
        }
    }

    #[test]
    fn samples_match_requested_sigma() {
        let noise = WhiteNoise::new(Ps::from_ps(2.6));
        let mut rng = SimRng::seed_from(77);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = noise.sample(&mut rng).as_ps();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let sd = (sum2 / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((sd - 2.6).abs() < 0.05, "sd {sd}");
    }

    #[test]
    fn consecutive_samples_are_uncorrelated() {
        let noise = WhiteNoise::new(Ps::from_ps(1.0));
        let mut rng = SimRng::seed_from(3);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| noise.sample(&mut rng).as_ps())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for w in xs.windows(2) {
            num += (w[0] - mean) * (w[1] - mean);
        }
        for x in &xs {
            den += (x - mean) * (x - mean);
        }
        let lag1 = num / den;
        // se ~ 1/sqrt(n) ~ 0.0032; 5 sigma bound.
        assert!(lag1.abs() < 0.016, "lag-1 autocorrelation {lag1}");
    }

    #[test]
    #[should_panic(expected = "white-noise sigma must be finite")]
    fn rejects_negative_sigma() {
        let _ = WhiteNoise::new(Ps::from_ps(-1.0));
    }
}
