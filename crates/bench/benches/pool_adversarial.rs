//! Adversarial detection-latency bench: scripted noise campaigns
//! against a monitored pool, measuring how many bits the pool produces
//! between attack onset and the first detection event (a monitor
//! `JitterDrift`, an SP 800-90B `Alarm`, or a pool-level
//! `CommonModeCoherence` quorum, whichever journals first), written to
//! `BENCH_adversarial.json`.
//!
//! Six rows over the same 2-shard deterministic pool (DesignXor
//! conditioning, jitter monitor every 128 bytes):
//!
//! * `thermal_ramp` — 200/s common-mode delay drift; only the
//!   monitor's period probe can see it.
//! * `thermal_runaway` — 5000/s drift railing the +50 % clamp; the
//!   monitor fires first, the 90B gate follows once capture breaks.
//! * `injection_locking` — jitter collapse; the 90B gate is provably
//!   blind (locked bits stay statistically plausible), the monitor's
//!   differential sigma probe collapses to ~0.
//! * `flicker_dominated` — Saarinen's AR(1) regime; sigma probe
//!   inflates while bit statistics barely move.
//! * `shared_supply_tone` — 0.4 % cross-shard tone, *below every
//!   per-shard detection band*: undetected when only the per-shard
//!   gates run — the blind spot the coherence detector closes.
//! * `shared_supply_tone+coherence` — the same tone with the
//!   cross-shard coherence detector enabled: detected via the quorum
//!   rule on the monitors' period-probe residual spectra
//!   (`CommonModeCoherence`), with finite latency.
//!
//! Run with `cargo bench --bench pool_adversarial`; set
//! `TRNG_ADVERSARIAL_BENCH_BYTES` to change the per-scenario volume
//! and `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_pool::{
    compile_campaign, onset_bytes, CoherenceConfig, Conditioning, EntropyPool, IncidentEvent,
    IncidentKind, MonitorConfig, PoolConfig, ProbeCode,
};
use trng_testkit::json::Json;

const ONSET: Ps = Ps::from_us(300.0);
const MONITOR_INTERVAL: u64 = 128;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Row {
    scenario: Scenario,
    targets: Vec<usize>,
    /// Run with the cross-shard coherence detector enabled, and a
    /// distinct name in the report.
    coherence: bool,
    name: String,
}

fn rows() -> Vec<Row> {
    let runaway = {
        let mut s = Scenario::thermal_ramp(ONSET, 5000.0);
        s.name = "thermal_runaway".into();
        s
    };
    let plain = |scenario: Scenario, targets: Vec<usize>| Row {
        name: scenario.name.clone(),
        scenario,
        targets,
        coherence: false,
    };
    vec![
        plain(Scenario::thermal_ramp(ONSET, 200.0), vec![0]),
        plain(runaway, vec![0]),
        plain(
            Scenario::injection_locking(ONSET, 1e12 / 480.0, 0.85),
            vec![0],
        ),
        plain(
            Scenario::flicker_dominated(ONSET, Ps::from_ps(8.0), Ps::from_us(0.2)),
            vec![0],
        ),
        plain(Scenario::shared_supply_tone(ONSET, 5e6, 0.004), vec![0, 1]),
        Row {
            name: "shared_supply_tone+coherence".into(),
            scenario: Scenario::shared_supply_tone(ONSET, 5e6, 0.004),
            targets: vec![0, 1],
            coherence: true,
        },
    ]
}

/// First detection event on the target shard, in journal order: a
/// monitor drift, a health alarm, or a pool-level coherence quorum
/// (journaled against the lowest-indexed quorum shard).
fn first_detection(journal: &[IncidentEvent], shard: usize) -> Option<IncidentEvent> {
    journal
        .iter()
        .find(|e| {
            e.shard == shard
                && matches!(
                    e.kind,
                    IncidentKind::JitterDrift
                        | IncidentKind::Alarm
                        | IncidentKind::CommonModeCoherence
                )
        })
        .cloned()
}

fn main() {
    let total = env_usize("TRNG_ADVERSARIAL_BENCH_BYTES", 6 * 1024);
    let base = TrngConfig::paper_k1();
    let onset = onset_bytes(ONSET, Conditioning::DesignXor, &base.design);
    println!(
        "pool_adversarial: {total} bytes per scenario, 2-shard deterministic pool, \
         DesignXor conditioning, monitor every {MONITOR_INTERVAL} bytes, \
         onset at {onset} bytes\n"
    );
    println!(
        "{:>28} {:>14} {:>14} {:>12}",
        "scenario", "detector", "latency bits", "probe"
    );

    let mut benchmarks = Vec::new();
    for row in rows() {
        let faults = compile_campaign(
            &row.scenario,
            Conditioning::DesignXor,
            &base.design,
            &row.targets,
            false,
        );
        let mut config = PoolConfig::new(base.clone(), 2)
            .with_conditioning(Conditioning::DesignXor)
            .with_seed(0xAD5A)
            .with_block_bytes(64)
            .with_faults(faults)
            .with_monitor(MonitorConfig::default().with_interval_bytes(MONITOR_INTERVAL))
            .deterministic(true);
        if row.coherence {
            config = config.with_coherence(CoherenceConfig::new());
        }
        let mut pool = EntropyPool::new(config).expect("pool build");
        pool.wait_online(Duration::from_secs(60))
            .expect("admission");
        let mut sink = vec![0u8; total];
        pool.fill_bytes(&mut sink).expect("bench fill");
        let stats = pool.stats();

        let detection = first_detection(&stats.journal, row.targets[0]);
        let (detector, latency_bits, probe) = match &detection {
            Some(e) => {
                assert!(
                    e.at_bytes >= onset,
                    "{}: detection at {} precedes onset {onset}",
                    row.name,
                    e.at_bytes
                );
                let latency_bits = (e.at_bytes - onset) * 8;
                let probe = ProbeCode::from_detail(e.detail).map_or("-", ProbeCode::as_str);
                match e.kind {
                    IncidentKind::JitterDrift => ("monitor_drift", Some(latency_bits), probe),
                    IncidentKind::CommonModeCoherence => ("coherence", Some(latency_bits), probe),
                    _ => ("health_alarm", Some(latency_bits), "-"),
                }
            }
            None => ("none", None, "-"),
        };
        println!(
            "{:>28} {:>14} {:>14} {:>12}",
            row.name,
            detector,
            latency_bits.map_or_else(|| "undetected".into(), |b| b.to_string()),
            probe
        );

        benchmarks.push(Json::obj(vec![
            ("name", Json::str(&row.name)),
            ("bytes", Json::u64(total as u64)),
            ("onset_bytes", Json::u64(onset)),
            ("detected", Json::Bool(detection.is_some())),
            ("detector", Json::str(detector)),
            (
                "detection_latency_bits",
                latency_bits.map_or(Json::Null, Json::u64),
            ),
            ("probe", Json::str(probe)),
            (
                "monitor_measurements",
                Json::u64(stats.shards[row.targets[0]].monitor_measurements),
            ),
            ("journal_events", Json::u64(stats.journal_recorded)),
        ]));
    }

    let report = Json::obj(vec![
        ("group", Json::str("adversarial")),
        ("shards", Json::u64(2)),
        ("conditioning", Json::str("design_xor")),
        ("onset_bytes", Json::u64(onset)),
        ("monitor_interval_bytes", Json::u64(MONITOR_INTERVAL)),
        (
            "note",
            Json::str(
                "deterministic replay pool under scripted noise campaigns; latency is \
                 bits produced on the target shard between attack onset and the first \
                 journaled detection (monitor JitterDrift, SP 800-90B Alarm, or \
                 pool-level CommonModeCoherence). shared_supply_tone stays undetected \
                 by the per-shard gates alone: the 0.4% common-mode tone sits below \
                 the period band and cancels out of the differential sigma probe. The \
                 +coherence row runs the same tone with the cross-shard coherence \
                 detector enabled, which closes that gap via a Goertzel quorum over \
                 the monitors' period-probe residuals",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_adversarial.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_adversarial.json");
    println!("\nwrote {}", path.display());
}
