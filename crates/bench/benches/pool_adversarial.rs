//! Adversarial detection-latency bench: scripted noise campaigns
//! against a monitored pool, measuring how many bits the pool produces
//! between attack onset and the first detection event (a monitor
//! `JitterDrift` or an SP 800-90B `Alarm`, whichever journals first),
//! written to `BENCH_adversarial.json`.
//!
//! Five scenarios over the same 2-shard deterministic pool (DesignXor
//! conditioning, jitter monitor every 128 bytes):
//!
//! * `thermal_ramp` — 200/s common-mode delay drift; only the
//!   monitor's period probe can see it.
//! * `thermal_runaway` — 5000/s drift railing the +50 % clamp; the
//!   monitor fires first, the 90B gate follows once capture breaks.
//! * `injection_locking` — jitter collapse; the 90B gate is provably
//!   blind (locked bits stay statistically plausible), the monitor's
//!   differential sigma probe collapses to ~0.
//! * `flicker_dominated` — Saarinen's AR(1) regime; sigma probe
//!   inflates while bit statistics barely move.
//! * `shared_supply_tone` — 0.4 % cross-shard tone, *below every
//!   detection band*: the documented gap, reported as undetected.
//!
//! Run with `cargo bench --bench pool_adversarial`; set
//! `TRNG_ADVERSARIAL_BENCH_BYTES` to change the per-scenario volume
//! and `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_pool::{
    compile_campaign, onset_bytes, Conditioning, EntropyPool, IncidentEvent, IncidentKind,
    MonitorConfig, PoolConfig,
};
use trng_testkit::json::Json;

const ONSET: Ps = Ps::from_us(300.0);
const MONITOR_INTERVAL: u64 = 128;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Row {
    scenario: Scenario,
    targets: Vec<usize>,
}

fn rows() -> Vec<Row> {
    let runaway = {
        let mut s = Scenario::thermal_ramp(ONSET, 5000.0);
        s.name = "thermal_runaway".into();
        s
    };
    vec![
        Row {
            scenario: Scenario::thermal_ramp(ONSET, 200.0),
            targets: vec![0],
        },
        Row {
            scenario: runaway,
            targets: vec![0],
        },
        Row {
            scenario: Scenario::injection_locking(ONSET, 1e12 / 480.0, 0.85),
            targets: vec![0],
        },
        Row {
            scenario: Scenario::flicker_dominated(ONSET, Ps::from_ps(8.0), Ps::from_us(0.2)),
            targets: vec![0],
        },
        Row {
            scenario: Scenario::shared_supply_tone(ONSET, 5e6, 0.004),
            targets: vec![0, 1],
        },
    ]
}

/// First detection event (monitor drift or health alarm) on the target
/// shard, in journal order.
fn first_detection(journal: &[IncidentEvent], shard: usize) -> Option<IncidentEvent> {
    journal
        .iter()
        .find(|e| {
            e.shard == shard && matches!(e.kind, IncidentKind::JitterDrift | IncidentKind::Alarm)
        })
        .cloned()
}

fn main() {
    let total = env_usize("TRNG_ADVERSARIAL_BENCH_BYTES", 6 * 1024);
    let base = TrngConfig::paper_k1();
    let onset = onset_bytes(ONSET, Conditioning::DesignXor, &base.design);
    println!(
        "pool_adversarial: {total} bytes per scenario, 2-shard deterministic pool, \
         DesignXor conditioning, monitor every {MONITOR_INTERVAL} bytes, \
         onset at {onset} bytes\n"
    );
    println!(
        "{:>20} {:>14} {:>14} {:>12}",
        "scenario", "detector", "latency bits", "probe"
    );

    let mut benchmarks = Vec::new();
    for row in rows() {
        let faults = compile_campaign(
            &row.scenario,
            Conditioning::DesignXor,
            &base.design,
            &row.targets,
            false,
        );
        let config = PoolConfig::new(base.clone(), 2)
            .with_conditioning(Conditioning::DesignXor)
            .with_seed(0xAD5A)
            .with_block_bytes(64)
            .with_faults(faults)
            .with_monitor(MonitorConfig::default().with_interval_bytes(MONITOR_INTERVAL))
            .deterministic(true);
        let mut pool = EntropyPool::new(config).expect("pool build");
        pool.wait_online(Duration::from_secs(60))
            .expect("admission");
        let mut sink = vec![0u8; total];
        pool.fill_bytes(&mut sink).expect("bench fill");
        let stats = pool.stats();

        let detection = first_detection(&stats.journal, row.targets[0]);
        let (detector, latency_bits, probe) = match &detection {
            Some(e) => {
                assert!(
                    e.at_bytes >= onset,
                    "{}: detection at {} precedes onset {onset}",
                    row.scenario.name,
                    e.at_bytes
                );
                let latency_bits = (e.at_bytes - onset) * 8;
                match e.kind {
                    IncidentKind::JitterDrift => {
                        let probe = match e.detail >> 56 {
                            1 => "sigma",
                            2 => "period",
                            _ => "unknown",
                        };
                        ("monitor_drift", Some(latency_bits), probe)
                    }
                    _ => ("health_alarm", Some(latency_bits), "-"),
                }
            }
            None => ("none", None, "-"),
        };
        println!(
            "{:>20} {:>14} {:>14} {:>12}",
            row.scenario.name,
            detector,
            latency_bits.map_or_else(|| "undetected".into(), |b| b.to_string()),
            probe
        );

        benchmarks.push(Json::obj(vec![
            ("name", Json::str(&row.scenario.name)),
            ("bytes", Json::u64(total as u64)),
            ("onset_bytes", Json::u64(onset)),
            ("detected", Json::Bool(detection.is_some())),
            ("detector", Json::str(detector)),
            (
                "detection_latency_bits",
                latency_bits.map_or(Json::Null, Json::u64),
            ),
            ("probe", Json::str(probe)),
            (
                "monitor_measurements",
                Json::u64(stats.shards[row.targets[0]].monitor_measurements),
            ),
            ("journal_events", Json::u64(stats.journal_recorded)),
        ]));
    }

    let report = Json::obj(vec![
        ("group", Json::str("adversarial")),
        ("shards", Json::u64(2)),
        ("conditioning", Json::str("design_xor")),
        ("onset_bytes", Json::u64(onset)),
        ("monitor_interval_bytes", Json::u64(MONITOR_INTERVAL)),
        (
            "note",
            Json::str(
                "deterministic replay pool under scripted noise campaigns; latency is \
                 bits produced on the target shard between attack onset and the first \
                 journaled detection (monitor JitterDrift or SP 800-90B Alarm). \
                 shared_supply_tone is the documented gap: 0.4% common-mode tone sits \
                 below the period band and cancels out of the differential sigma probe",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_adversarial.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_adversarial.json");
    println!("\nwrote {}", path.display());
}
