//! Timer-harness benches: cost of the statistical evaluation machinery —
//! the dominating wall-clock term of the Table-1 n_NIST search.

use trng_stattests::bits::BitVec;
use trng_stattests::nist;
use trng_testkit::bench::{BenchmarkId, Criterion, Throughput};
use trng_testkit::prng::{Rng, SeedableRng};
use trng_testkit::{criterion_group, criterion_main};

fn random_bits(n: usize, seed: u64) -> BitVec {
    let mut rng = trng_testkit::prng::StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

fn bench_individual_tests(c: &mut Criterion) {
    let bits = random_bits(100_000, 1);
    let mut group = c.benchmark_group("nist_tests_100k");
    group.throughput(Throughput::Elements(bits.len() as u64));
    group.sample_size(20);
    group.bench_function("frequency", |b| b.iter(|| nist::frequency::test(&bits)));
    group.bench_function("runs", |b| b.iter(|| nist::runs::test(&bits)));
    group.bench_function("rank", |b| b.iter(|| nist::rank::test(&bits)));
    group.bench_function("dft", |b| b.iter(|| nist::dft::test(&bits)));
    group.bench_function("non_overlapping_template", |b| {
        b.iter(|| nist::templates::non_overlapping(&bits))
    });
    group.bench_function("universal", |b| b.iter(|| nist::universal::test(&bits)));
    group.bench_function("linear_complexity", |b| {
        b.iter(|| nist::linear_complexity::test(&bits))
    });
    group.bench_function("serial", |b| b.iter(|| nist::serial::test(&bits)));
    group.finish();
}

fn bench_full_battery(c: &mut Criterion) {
    let mut group = c.benchmark_group("nist_battery");
    group.sample_size(10);
    for n in [50_000usize, 200_000] {
        let bits = random_bits(n, 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &bits, |b, bits| {
            b.iter(|| nist::run_battery(bits))
        });
    }
    group.finish();
}

fn bench_supporting_batteries(c: &mut Criterion) {
    let bits = random_bits(200_000, 3);
    let mut group = c.benchmark_group("other_batteries");
    group.sample_size(20);
    group.bench_function("fips140", |b| {
        b.iter(|| trng_stattests::fips140::run_fips140(&bits))
    });
    group.bench_function("ais31", |b| {
        b.iter(|| trng_stattests::ais31::run_ais31(&bits))
    });
    group.bench_function("markov_estimator", |b| {
        b.iter(|| trng_stattests::estimators::markov_min_entropy(&bits))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_individual_tests,
    bench_full_battery,
    bench_supporting_batteries
);
criterion_main!(benches);
