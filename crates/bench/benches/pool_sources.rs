//! Heterogeneous-backend bench: per-source and mixed-pool entropy
//! throughput, written to `BENCH_sources.json`.
//!
//! Each backend runs alone behind a single-shard pool (same admission
//! gate, same conditioning) so the numbers isolate the source itself;
//! the final row is a 4-shard pool mixing all four backends — the
//! heterogeneous configuration the serve layer exposes. As in
//! `pool_throughput`, wall-clock figures measure *this simulator* on
//! the host, while `sim_mbps` is throughput in each source's own
//! simulated clock domain (the OS backend ticks a nominal 1 bit/ns).
//!
//! Run with `cargo bench --bench pool_sources`; set
//! `TRNG_SOURCES_BENCH_BYTES` to change the per-configuration volume
//! and `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::sync::Arc;
use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_pool::{Conditioning, DualOscConfig, EntropyPool, PoolConfig, RecordedTrace, SourceSpec};
use trng_testkit::json::Json;

const SEED: u64 = 0x5EED5;
/// Raw bytes captured for the trace backend; replay wraps as needed.
const TRACE_BYTES: usize = 32 * 1024;

struct Run {
    name: &'static str,
    shards: usize,
    bytes: usize,
    wall: Duration,
    ns_per_bit: f64,
    wall_mbps: f64,
    sim_mbps: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn record_trace() -> Arc<RecordedTrace> {
    Arc::new(
        RecordedTrace::record(&TrngConfig::paper_k1(), SEED, TRACE_BYTES).expect("trace capture"),
    )
}

fn run_one(name: &'static str, specs: Vec<SourceSpec>, bytes: usize) -> Run {
    let shards = specs.len();
    let config = PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(SEED)
        .with_sources(specs)
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool build");
    pool.wait_online(Duration::from_secs(600))
        .expect("admission");
    let mut sink = vec![0u8; bytes];
    let t0 = Instant::now();
    pool.fill_bytes(&mut sink).expect("fill");
    let wall = t0.elapsed();
    let stats = pool.stats();
    assert_eq!(
        stats.total_alarms(),
        0,
        "healthy bench run alarmed ({name})"
    );
    Run {
        name,
        shards,
        bytes,
        wall,
        ns_per_bit: wall.as_nanos() as f64 / (bytes as f64 * 8.0),
        wall_mbps: bytes as f64 * 8.0 / wall.as_secs_f64() / 1e6,
        sim_mbps: stats.sim_throughput_bps() / 1e6,
    }
}

fn main() {
    let bytes = env_usize("TRNG_SOURCES_BENCH_BYTES", 16 * 1024);
    println!("pool_sources: {bytes} bytes per configuration, design-rate XOR\n");

    let runs = [
        run_one("carry_chain", vec![SourceSpec::CarryChain], bytes),
        run_one(
            "dual_osc",
            vec![SourceSpec::DualOscillator(Box::new(
                DualOscConfig::betrusted_default(),
            ))],
            bytes,
        ),
        run_one(
            "trace_replay",
            vec![SourceSpec::TraceReplay(record_trace())],
            bytes,
        ),
        run_one("os_entropy", vec![SourceSpec::OsEntropy], bytes),
        run_one(
            "mixed_4",
            vec![
                SourceSpec::CarryChain,
                SourceSpec::DualOscillator(Box::new(DualOscConfig::betrusted_default())),
                SourceSpec::TraceReplay(record_trace()),
                SourceSpec::OsEntropy,
            ],
            bytes,
        ),
    ];

    println!(
        "{:>13} {:>7} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "backend", "shards", "bytes", "wall", "ns/bit", "wall Mb/s", "sim Mb/s"
    );
    let benchmarks: Vec<Json> = runs
        .iter()
        .map(|r| {
            println!(
                "{:>13} {:>7} {:>10} {:>8.2} s {:>10.1} {:>12.3} {:>12.2}",
                r.name,
                r.shards,
                r.bytes,
                r.wall.as_secs_f64(),
                r.ns_per_bit,
                r.wall_mbps,
                r.sim_mbps,
            );
            Json::obj(vec![
                ("name", Json::str(r.name)),
                ("shards", Json::num(r.shards as f64)),
                ("bytes", Json::num(r.bytes as f64)),
                ("wall_ns", Json::num(r.wall.as_nanos() as f64)),
                ("ns_per_bit", Json::num(r.ns_per_bit)),
                ("wall_mbps", Json::num(r.wall_mbps)),
                ("sim_mbps", Json::num(r.sim_mbps)),
            ])
        })
        .collect();

    let report = Json::obj(vec![
        ("group", Json::str("sources")),
        ("conditioning", Json::str("design_xor")),
        (
            "note",
            Json::str(
                "single-shard rows isolate one backend behind the full pool \
                 stack; mixed_4 runs all four behind one pool. sim_mbps is \
                 throughput in each source's simulated clock domain \
                 (os_entropy ticks a nominal 1 bit/ns); wall figures are \
                 host simulator speed",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_sources.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_sources.json");
    println!("\nwrote {}", path.display());

    // Sanity: every backend served its full volume, and the OS-backed
    // pool (no event-driven simulation) outpaces the carry-chain sim
    // on the host by a wide margin.
    assert_eq!(runs.len(), 5);
    let wall = |name: &str| {
        runs.iter()
            .find(|r| r.name == name)
            .expect("run present")
            .wall_mbps
    };
    assert!(
        wall("os_entropy") > wall("carry_chain"),
        "os_entropy ({:.3} Mb/s) should outpace the simulated carry chain ({:.3} Mb/s) on the host",
        wall("os_entropy"),
        wall("carry_chain"),
    );
}
