//! Detection-latency bench for the cross-shard coherence detector:
//! how many bits the pool produces between the onset of a
//! sub-threshold shared supply tone (0.4 % @ 5 MHz — invisible to
//! every per-shard gate, DESIGN.md §16) and the journaled
//! `CommonModeCoherence` quorum event. Written to
//! `BENCH_coherence.json`.
//!
//! Three rows, all deterministic (seed 0xAD5A, DesignXor
//! conditioning, jitter monitor every 128 bytes, quorum 2):
//!
//! * `quorum_2of2` — 2-shard pool, tone on both shards.
//! * `quorum_2of3` — 3-shard pool, tone on shards 0 and 1: the third
//!   clean shard must not delay or dilute the quorum.
//! * `control_1of3` — 3-shard pool, tone on shard 0 only: a local
//!   line must NOT make quorum (reported as undetected by design).
//!
//! Environment overrides:
//! * `TRNG_COHERENCE_BENCH_BYTES` — bytes per row (default 8192)
//! * `TRNG_COHERENCE_GATE_BITS` — regression gate: fail if a quorum
//!   row is undetected or detects slower than this many bits, or if
//!   the control row detects at all
//! * `TRNG_BENCH_OUT_DIR` — where to write the JSON report

use std::time::Duration;

use trng_core::trng::TrngConfig;
use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_pool::{
    compile_campaign, decode_coherence_detail, onset_bytes, CoherenceConfig, Conditioning,
    EntropyPool, IncidentKind, MonitorConfig, PoolConfig,
};
use trng_testkit::json::Json;

const ONSET: Ps = Ps::from_us(300.0);
const MONITOR_INTERVAL: u64 = 128;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

struct Row {
    name: &'static str,
    shards: usize,
    targets: Vec<usize>,
    /// Whether the tone is expected to trip the quorum.
    expect_detection: bool,
}

fn rows() -> Vec<Row> {
    vec![
        Row {
            name: "quorum_2of2",
            shards: 2,
            targets: vec![0, 1],
            expect_detection: true,
        },
        Row {
            name: "quorum_2of3",
            shards: 3,
            targets: vec![0, 1],
            expect_detection: true,
        },
        Row {
            name: "control_1of3",
            shards: 3,
            targets: vec![0],
            expect_detection: false,
        },
    ]
}

fn main() {
    let total = env_u64("TRNG_COHERENCE_BENCH_BYTES").unwrap_or(8192) as usize;
    let gate_bits = env_u64("TRNG_COHERENCE_GATE_BITS");
    let base = TrngConfig::paper_k1();
    let onset = onset_bytes(ONSET, Conditioning::DesignXor, &base.design);
    println!(
        "pool_coherence: shared 0.4% @ 5 MHz tone, {total} bytes per row, \
         deterministic pool, monitor every {MONITOR_INTERVAL} bytes, quorum 2, \
         onset at {onset} bytes\n"
    );
    println!(
        "{:>14} {:>8} {:>14} {:>6} {:>8} {:>10}",
        "row", "shards", "latency bits", "bin", "mask", "magnitude"
    );

    let mut failures = Vec::new();
    let mut benchmarks = Vec::new();
    for row in rows() {
        let scenario = Scenario::shared_supply_tone(ONSET, 5e6, 0.004);
        let faults = compile_campaign(
            &scenario,
            Conditioning::DesignXor,
            &base.design,
            &row.targets,
            false,
        );
        let config = PoolConfig::new(base.clone(), row.shards)
            .with_conditioning(Conditioning::DesignXor)
            .with_seed(0xAD5A)
            .with_block_bytes(64)
            .with_faults(faults)
            .with_monitor(MonitorConfig::default().with_interval_bytes(MONITOR_INTERVAL))
            .with_coherence(CoherenceConfig::new().with_quorum(2))
            .deterministic(true);
        let mut pool = EntropyPool::new(config).expect("pool build");
        pool.wait_online(Duration::from_secs(60))
            .expect("admission");
        let mut sink = vec![0u8; total];
        pool.fill_bytes(&mut sink).expect("bench fill");
        let stats = pool.stats();

        let event = stats
            .journal
            .iter()
            .find(|e| e.kind == IncidentKind::CommonModeCoherence)
            .cloned();
        let detail = event
            .as_ref()
            .and_then(|e| decode_coherence_detail(e.detail));
        let latency_bits = event.as_ref().map(|e| (e.at_bytes - onset) * 8);
        let coherence = stats.coherence.as_ref().expect("coherence stats");

        match (&event, row.expect_detection) {
            (None, true) => failures.push(format!(
                "{}: the shared tone never tripped the quorum in {total} bytes",
                row.name
            )),
            (Some(e), false) => failures.push(format!(
                "{}: a single-shard tone tripped the quorum at byte {}",
                row.name, e.at_bytes
            )),
            (Some(_), true) => {
                if let (Some(bits), Some(gate)) = (latency_bits, gate_bits) {
                    if bits > gate {
                        failures.push(format!(
                            "{}: detection latency {bits} bits exceeds gate {gate}",
                            row.name
                        ));
                    }
                }
            }
            (None, false) => {}
        }

        println!(
            "{:>14} {:>8} {:>14} {:>6} {:>8} {:>10}",
            row.name,
            row.shards,
            latency_bits.map_or_else(|| "undetected".into(), |b| b.to_string()),
            detail.map_or_else(|| "-".into(), |(bin, _, _)| bin.to_string()),
            detail.map_or_else(|| "-".into(), |(_, mask, _)| format!("{mask:#b}")),
            detail.map_or_else(|| "-".into(), |(_, _, pm)| format!("{pm} permille")),
        );

        benchmarks.push(Json::obj(vec![
            ("name", Json::str(row.name)),
            ("shards", Json::u64(row.shards as u64)),
            ("tone_shards", Json::u64(row.targets.len() as u64)),
            ("bytes", Json::u64(total as u64)),
            ("onset_bytes", Json::u64(onset)),
            ("expected_detection", Json::Bool(row.expect_detection)),
            ("detected", Json::Bool(event.is_some())),
            (
                "detection_latency_bits",
                latency_bits.map_or(Json::Null, Json::u64),
            ),
            (
                "bin",
                detail.map_or(Json::Null, |(bin, _, _)| Json::u64(bin as u64)),
            ),
            (
                "quorum_mask",
                detail.map_or(Json::Null, |(_, mask, _)| Json::u64(mask)),
            ),
            (
                "magnitude_permille",
                detail.map_or(Json::Null, |(_, _, pm)| Json::u64(pm as u64)),
            ),
            ("detector_passes", Json::u64(coherence.passes)),
            ("detector_events", Json::u64(coherence.events)),
        ]));
    }

    let report = Json::obj(vec![
        ("group", Json::str("coherence")),
        ("conditioning", Json::str("design_xor")),
        ("onset_bytes", Json::u64(onset)),
        ("monitor_interval_bytes", Json::u64(MONITOR_INTERVAL)),
        ("window", Json::u64(16)),
        ("quorum", Json::u64(2)),
        (
            "note",
            Json::str(
                "cross-shard coherence detector under the 0.4% @ 5 MHz shared supply \
                 tone that every per-shard gate misses; latency is bits produced \
                 between tone onset and the journaled CommonModeCoherence quorum \
                 event. The single-shard control row must stay undetected: a local \
                 spectral line is not common-mode evidence",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_coherence.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_coherence.json");
    println!("\nwrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("pool_coherence: GATE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
