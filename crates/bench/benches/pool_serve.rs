//! Serving-layer bench: delivered entropy throughput over loopback at
//! 1 / 4 / 16 concurrent clients versus the in-process `fill_bytes`
//! baseline, written to `BENCH_serve.json`.
//!
//! The pool runs its threaded backend, so every scenario measures
//! real wall-clock delivery of the same simulated source. The
//! interesting number is the *overhead ratio*: how much of the pool's
//! in-process throughput survives framing, socket hops, and worker
//! scheduling. The source itself is the bottleneck (the simulator
//! produces ~100 KB/s, far below loopback bandwidth), so a healthy
//! serving layer keeps the ratio near 1.0 at every concurrency.
//!
//! Run with `cargo bench --bench pool_serve`; set
//! `TRNG_SERVE_BENCH_BYTES` to change the per-scenario volume and
//! `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_pool::{Conditioning, EntropyPool, PoolConfig};
use trng_serve::{Client, ServeConfig, Server};
use trng_testkit::json::Json;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 16];
const SHARDS: usize = 2;
const CHUNK: u32 = 16 * 1024;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn online_pool() -> EntropyPool {
    let config = PoolConfig::new(TrngConfig::paper_k1(), SHARDS)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0x5EB0);
    let mut pool = EntropyPool::new(config).expect("pool build");
    pool.wait_online(Duration::from_secs(600))
        .expect("admission");
    pool
}

/// In-process baseline: one consumer draining the pool directly.
fn run_baseline(total: usize) -> f64 {
    let mut pool = online_pool();
    let mut sink = vec![0u8; total];
    let t0 = Instant::now();
    pool.fill_bytes(&mut sink).expect("baseline fill");
    total as f64 * 8.0 / t0.elapsed().as_secs_f64() / 1e6
}

/// Served scenario: `clients` concurrent loopback connections share
/// `total` bytes, each streaming its slice in protocol-sized chunks.
fn run_served(clients: usize, total: usize) -> f64 {
    let server = Server::start(
        online_pool().into_shared(),
        ServeConfig::default().with_workers(clients),
    )
    .expect("server start");
    let addr = server.local_addr();
    let per_client = total / clients;

    let t0 = Instant::now();
    let fetchers: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut got = 0usize;
                while got < per_client {
                    let want = CHUNK.min((per_client - got) as u32);
                    got += client.fetch(want).expect("bench fetch").len();
                }
                got
            })
        })
        .collect();
    let delivered: usize = fetchers
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .sum();
    let wall = t0.elapsed();

    assert_eq!(delivered, per_client * clients, "short delivery");
    let report = server.shutdown();
    assert_eq!(report.bytes_served, delivered as u64);
    delivered as f64 * 8.0 / wall.as_secs_f64() / 1e6
}

fn main() {
    let total = env_usize("TRNG_SERVE_BENCH_BYTES", 192 * 1024);
    println!(
        "pool_serve: {total} bytes per scenario, {SHARDS}-shard threaded pool, raw conditioning\n"
    );

    let baseline_mbps = run_baseline(total);
    println!("{:>12} {:>14} {:>10}", "scenario", "wall Mb/s", "vs base");
    println!("{:>12} {baseline_mbps:>14.3} {:>9.2}x", "in-process", 1.0);

    let mut benchmarks = vec![Json::obj(vec![
        ("name", Json::str("in_process_baseline")),
        ("clients", Json::num(0.0)),
        ("bytes", Json::u64(total as u64)),
        ("wall_mbps", Json::num(baseline_mbps)),
        ("vs_baseline", Json::num(1.0)),
    ])];
    for &clients in &CLIENT_COUNTS {
        let mbps = run_served(clients, total);
        let ratio = mbps / baseline_mbps;
        println!(
            "{:>12} {mbps:>14.3} {ratio:>9.2}x",
            format!("{clients} client")
        );
        benchmarks.push(Json::obj(vec![
            ("name", Json::str(format!("loopback/{clients}_clients"))),
            ("clients", Json::u64(clients as u64)),
            ("bytes", Json::u64(total as u64)),
            ("wall_mbps", Json::num(mbps)),
            ("vs_baseline", Json::num(ratio)),
        ]));
    }

    let report = Json::obj(vec![
        ("group", Json::str("serve")),
        ("shards", Json::u64(SHARDS as u64)),
        ("conditioning", Json::str("raw")),
        (
            "note",
            Json::str(
                "threaded pool over loopback TCP; the simulated source (~100 KB/s) is \
                 the bottleneck, so vs_baseline near 1.0 means the serving layer adds \
                 negligible overhead at that concurrency",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {}", path.display());
}
