//! Single-TRNG hot-path bench: wall-clock cost per generated bit for
//! the packed, allocation-free sampling pipeline, written to
//! `BENCH_hotpath.json`.
//!
//! The report carries a pinned *before* column measured on the
//! pre-optimization pipeline (per-bit `Vec<Vec<bool>>` snippets,
//! per-tap binary search, per-bit `Vec` returns) at the same commit
//! the packed rewrite landed, so the speedup is a like-for-like
//! wall-clock comparison on the same noise model and RNG sequence.
//!
//! Run with `cargo bench --bench hotpath`; set
//! `TRNG_HOTPATH_BENCH_BYTES` to change the measured volume (CI uses a
//! small value for a quick smoke) and `TRNG_HOTPATH_GATE_NS` to make
//! the run fail when raw-bit cost exceeds that many ns/bit (the CI
//! regression gate). `TRNG_BENCH_OUT_DIR` redirects the JSON report.

use std::time::Instant;

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::noise::NoiseBackend;
use trng_testkit::json::Json;

/// Pre-optimization cost of one raw bit (ns), `paper_k1`, this host.
const BEFORE_RAW_NS_PER_BIT: f64 = 2909.7;
/// Pre-optimization cost of one post-processed (np = 7) bit in ns.
const BEFORE_POST_NS_PER_BIT: f64 = 19123.6;
/// Scalar packed-pipeline cost of one raw bit (ns) as measured when the
/// packed rewrite landed (PR 3) — the *before* column for the batched
/// backend, so its speedup reads as "batched over best scalar".
const SCALAR_RAW_NS_PER_BIT: f64 = 1615.12;

struct Run {
    name: &'static str,
    bytes: usize,
    wall_ns: f64,
    ns_per_bit: f64,
    wall_mbps: f64,
    before_ns_per_bit: f64,
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn measure(
    name: &'static str,
    bytes: usize,
    before_ns: f64,
    mut fill: impl FnMut(&mut [u8]),
) -> Run {
    let mut buf = vec![0u8; bytes];
    // Warm-up: reach edge-train steady state before timing.
    fill(&mut buf[..bytes.min(1024)]);
    let t0 = Instant::now();
    fill(&mut buf);
    let wall = t0.elapsed();
    assert!(buf.iter().any(|&b| b != 0), "{name}: degenerate output");
    let bits = bytes as f64 * 8.0;
    let wall_ns = wall.as_nanos() as f64;
    Run {
        name,
        bytes,
        wall_ns,
        ns_per_bit: wall_ns / bits,
        wall_mbps: bits / wall.as_secs_f64() / 1e6,
        before_ns_per_bit: before_ns,
    }
}

fn main() {
    let bytes = env_f64("TRNG_HOTPATH_BENCH_BYTES").map_or(64 * 1024, |v| v as usize);
    println!("hotpath: {bytes} bytes per run, paper_k1 (n=3, m=36, k=1, np=7)\n");

    let mut raw_trng = CarryChainTrng::new(TrngConfig::paper_k1(), 0x407).expect("build");
    let mut post_trng = CarryChainTrng::new(TrngConfig::paper_k1(), 0x407).expect("build");
    let batched_cfg = TrngConfig::paper_k1().with_noise_backend(NoiseBackend::Batched);
    let mut batched_trng = CarryChainTrng::new(batched_cfg.clone(), 0x407).expect("build");
    let mut batched_post = CarryChainTrng::new(batched_cfg, 0x407).expect("build");
    assert_eq!(
        batched_trng.active_noise_backend(),
        NoiseBackend::Batched,
        "paper_k1 layout must support the batched engine"
    );

    let runs = [
        measure("raw_bits", bytes, BEFORE_RAW_NS_PER_BIT, |buf| {
            raw_trng.fill_raw(buf)
        }),
        // np = 7 raw bits per output bit: scale the volume down so both
        // runs cost similar wall time.
        measure(
            "postprocessed_bits",
            bytes / 4,
            BEFORE_POST_NS_PER_BIT,
            |buf| post_trng.fill_postprocessed(buf),
        ),
        // Batched backend: the whole-window engine, measured against
        // the best scalar number so the column reads "x over scalar".
        measure("raw_bits_batched", bytes, SCALAR_RAW_NS_PER_BIT, |buf| {
            batched_trng.fill_raw(buf)
        }),
        measure(
            "postprocessed_bits_batched",
            bytes / 4,
            BEFORE_POST_NS_PER_BIT / BEFORE_RAW_NS_PER_BIT * SCALAR_RAW_NS_PER_BIT,
            |buf| batched_post.fill_postprocessed(buf),
        ),
    ];

    println!(
        "{:>20} {:>10} {:>14} {:>14} {:>12} {:>9}",
        "run", "bytes", "before ns/bit", "after ns/bit", "wall Mb/s", "speedup"
    );
    let benchmarks: Vec<Json> = runs
        .iter()
        .map(|r| {
            let speedup = r.before_ns_per_bit / r.ns_per_bit;
            let before_mbps = 1e3 / r.before_ns_per_bit;
            println!(
                "{:>20} {:>10} {:>14.1} {:>14.1} {:>12.3} {:>8.2}x",
                r.name, r.bytes, r.before_ns_per_bit, r.ns_per_bit, r.wall_mbps, speedup,
            );
            Json::obj(vec![
                ("name", Json::str(r.name)),
                ("bytes", Json::num(r.bytes as f64)),
                ("wall_ns", Json::num(r.wall_ns)),
                ("before_ns_per_bit", Json::num(r.before_ns_per_bit)),
                ("after_ns_per_bit", Json::num(r.ns_per_bit)),
                ("before_wall_mbps", Json::num(before_mbps)),
                ("after_wall_mbps", Json::num(r.wall_mbps)),
                ("speedup", Json::num(speedup)),
            ])
        })
        .collect();

    let report = Json::obj(vec![
        ("group", Json::str("hotpath")),
        ("config", Json::str("paper_k1_n3_m36_k1_np7")),
        (
            "note",
            Json::str(
                "raw_bits/postprocessed_bits: before = per-bit Vec<Vec<bool>> \
                 pipeline with per-tap binary search; after = packed u64 words, \
                 cursor lookups, batch byte fill, still under the byte-identical \
                 replay contract (scalar backend). That contract freezes the \
                 per-edge noise synthesis, which caps the *scalar* path; the \
                 *_batched rows drop draw-identity (never the distributions) via \
                 NoiseBackend::Batched whole-window synthesis, with before = the \
                 scalar after, so their speedup column reads 'over best scalar'",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_hotpath.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_hotpath.json");
    println!("\nwrote {}", path.display());

    if let Some(gate) = env_f64("TRNG_HOTPATH_GATE_NS") {
        let raw = &runs[0];
        assert!(
            raw.ns_per_bit <= gate,
            "raw-bit cost {:.1} ns/bit exceeds the CI gate of {gate:.1} ns/bit",
            raw.ns_per_bit
        );
        println!("gate ok: {:.1} ns/bit <= {gate:.1} ns/bit", raw.ns_per_bit);
    }

    if let Some(min_speedup) = env_f64("TRNG_HOTPATH_BATCHED_MIN_SPEEDUP") {
        // Compare the two raw rows measured in this same process so the
        // gate is host-speed independent.
        let scalar = &runs[0];
        let batched = &runs[2];
        let speedup = scalar.ns_per_bit / batched.ns_per_bit;
        assert!(
            speedup >= min_speedup,
            "batched raw path is only {speedup:.2}x scalar ({:.1} vs {:.1} ns/bit), \
             CI gate requires >= {min_speedup:.1}x",
            batched.ns_per_bit,
            scalar.ns_per_bit
        );
        println!("batched gate ok: {speedup:.2}x >= {min_speedup:.1}x over scalar");
    }
}
