//! Pool scaling bench: aggregate entropy throughput versus shard
//! count, on both noise backends, written to `BENCH_pool.json`.
//!
//! Two clock domains matter here and must not be conflated:
//!
//! * **simulated time** — the hardware domain the paper's Table 2
//!   reports. N shards are N physical TRNG instances running
//!   concurrently on the fabric, so aggregate throughput scales ~N×
//!   (minus the per-shard start-up test overhead).
//! * **wall-clock time** — how fast *this simulator* produces those
//!   bytes on the host. It is reported for context but does not scale
//!   with shard count on a small host, because every simulated bit
//!   costs the same CPU work regardless of which shard draws it. The
//!   noise backend moves exactly this axis: the batched engine
//!   synthesizes whole edge trains at once, multiplying wall
//!   throughput while leaving the simulated-time domain untouched.
//!
//! Run with `cargo bench --bench pool_throughput`; set
//! `TRNG_POOL_BENCH_BYTES` to change the per-configuration volume and
//! `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_pool::{Conditioning, EntropyPool, NoiseBackend, PoolConfig};
use trng_testkit::json::Json;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Run {
    shards: usize,
    backend: NoiseBackend,
    bytes: usize,
    wall: Duration,
    wall_mbps: f64,
    sim_mbps: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_one(shards: usize, backend: NoiseBackend, bytes: usize) -> Run {
    // Deterministic replay mode: the measurement is reproducible and
    // free of thread-scheduling noise.
    let config = PoolConfig::new(TrngConfig::paper_k1(), shards)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xBE4C)
        .with_noise_backend(backend)
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool build");
    pool.wait_online(Duration::from_secs(600))
        .expect("admission");
    let mut sink = vec![0u8; bytes];
    let t0 = Instant::now();
    pool.fill_bytes(&mut sink).expect("fill");
    let wall = t0.elapsed();
    let stats = pool.stats();
    assert_eq!(stats.total_alarms(), 0, "healthy bench run alarmed");
    for shard in &stats.shards {
        assert_eq!(shard.noise_backend, backend, "shard backend label");
    }
    Run {
        shards,
        backend,
        bytes,
        wall,
        wall_mbps: bytes as f64 * 8.0 / wall.as_secs_f64() / 1e6,
        sim_mbps: stats.sim_throughput_bps() / 1e6,
    }
}

fn main() {
    let bytes = env_usize("TRNG_POOL_BENCH_BYTES", 16 * 1024);
    println!("pool_throughput: {bytes} bytes per configuration, design-rate XOR\n");

    let runs: Vec<Run> = [NoiseBackend::Scalar, NoiseBackend::Batched]
        .iter()
        .flat_map(|&backend| {
            SHARD_COUNTS
                .iter()
                .map(move |&n| run_one(n, backend, bytes))
        })
        .collect();
    // Speedups are relative to the same backend's 1-shard run: the
    // scaling story is about shards, not about the engine.
    let base_sim = |backend: NoiseBackend| -> f64 {
        runs.iter()
            .find(|r| r.backend == backend && r.shards == 1)
            .expect("1-shard run")
            .sim_mbps
    };

    println!(
        "{:>7} {:>8} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "shards", "backend", "bytes", "wall", "wall Mb/s", "sim Mb/s", "speedup"
    );
    let benchmarks: Vec<Json> = runs
        .iter()
        .map(|r| {
            let speedup = r.sim_mbps / base_sim(r.backend);
            println!(
                "{:>7} {:>8} {:>10} {:>10.2} s {:>14.3} {:>14.2} {:>9.2}x",
                r.shards,
                r.backend,
                r.bytes,
                r.wall.as_secs_f64(),
                r.wall_mbps,
                r.sim_mbps,
                speedup,
            );
            // The scalar rows keep their original names so older
            // tooling reading BENCH_pool.json sees the same series;
            // the batched rows and the noise_backend key are additive.
            let name = match r.backend {
                NoiseBackend::Scalar => format!("shards/{}", r.shards),
                NoiseBackend::Batched => format!("shards/{}/batched", r.shards),
            };
            Json::obj(vec![
                ("name", Json::str(name)),
                ("shards", Json::num(r.shards as f64)),
                ("noise_backend", Json::str(r.backend.as_str())),
                ("bytes", Json::num(r.bytes as f64)),
                ("wall_ns", Json::num(r.wall.as_nanos() as f64)),
                ("wall_mbps", Json::num(r.wall_mbps)),
                ("sim_mbps", Json::num(r.sim_mbps)),
                ("sim_speedup_vs_1shard", Json::num(speedup)),
            ])
        })
        .collect();

    let report = Json::obj(vec![
        ("group", Json::str("pool")),
        ("conditioning", Json::str("design_xor_np7")),
        (
            "note",
            Json::str(
                "sim_mbps is throughput in simulated (hardware) time, the paper's \
                 Table-2 domain; wall_mbps is host simulator speed and does not \
                 scale with shards on a small host. The batched rows run the \
                 statistically-equivalent whole-window noise engine: identical \
                 sim_mbps domain, several-fold wall_mbps",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_pool.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_pool.json");
    println!("\nwrote {}", path.display());

    for backend in [NoiseBackend::Scalar, NoiseBackend::Batched] {
        let four = runs
            .iter()
            .find(|r| r.backend == backend && r.shards == 4)
            .expect("4-shard run");
        let speedup4 = four.sim_mbps / base_sim(backend);
        assert!(
            speedup4 >= 3.0,
            "{backend}: 4-shard simulated-time speedup {speedup4:.2}x fell below 3x"
        );
    }
    // Wall-clock is where the batched engine must show up: same
    // 1-shard workload, same process, conservative 1.5x floor (the
    // reference host sits around 6x).
    let wall = |backend: NoiseBackend| -> f64 {
        runs.iter()
            .find(|r| r.backend == backend && r.shards == 1)
            .expect("1-shard run")
            .wall_mbps
    };
    let wall_speedup = wall(NoiseBackend::Batched) / wall(NoiseBackend::Scalar);
    assert!(
        wall_speedup >= 1.5,
        "batched 1-shard wall throughput is only {wall_speedup:.2}x scalar"
    );
    println!("batched 1-shard wall speedup: {wall_speedup:.2}x");
}
