//! Timer-harness benches: simulated TRNG bit-generation throughput.
//!
//! These measure the *simulator's* speed (bits of TRNG output per
//! wall-clock second), which bounds how large the Table-1 ensembles
//! can be; the TRNG's own throughput in simulated time is a design
//! constant (`f_CLK/(N_A·np)`) reported by the `table1` binary.

use trng_core::elementary::{ElementaryConfig, ElementaryTrng};
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::time::Ps;
use trng_model::params::DesignParams;
use trng_testkit::bench::{BenchmarkId, Criterion, Throughput};
use trng_testkit::{criterion_group, criterion_main};

fn bench_raw_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw_bits");
    const N: usize = 2_000;
    group.throughput(Throughput::Elements(N as u64));
    for (label, config) in [
        ("paper_k1_realistic", TrngConfig::paper_k1()),
        ("paper_k1_ideal_tdc", TrngConfig::ideal()),
        ("paper_k4_ta50", TrngConfig::paper_k4()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut trng = CarryChainTrng::new(config.clone(), 1).expect("valid");
            b.iter(|| trng.generate_raw(N));
        });
    }
    group.finish();
}

fn bench_postprocessed(c: &mut Criterion) {
    let mut group = c.benchmark_group("postprocessed_bits");
    const N: usize = 500;
    group.throughput(Throughput::Elements(N as u64));
    for np in [1u32, 7, 16] {
        let config = TrngConfig::paper_k1().with_design(DesignParams {
            np,
            ..DesignParams::paper_k1()
        });
        group.bench_with_input(BenchmarkId::from_parameter(np), &config, |b, cfg| {
            let mut trng = CarryChainTrng::new(cfg.clone(), 2).expect("valid");
            b.iter(|| trng.generate_postprocessed(N));
        });
    }
    group.finish();
}

fn bench_elementary(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementary_bits");
    const N: usize = 2_000;
    group.throughput(Throughput::Elements(N as u64));
    // Short tA: exact event path; long tA: fast-forward path.
    for (label, t_a) in [
        ("ta_100ns_exact", Ps::from_ns(100.0)),
        ("ta_8us_fastforward", Ps::from_us(8.0)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut trng = ElementaryTrng::new(ElementaryConfig::best_case(t_a), 3).expect("valid");
            b.iter(|| trng.generate(N));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_raw_generation,
    bench_postprocessed,
    bench_elementary
);
criterion_main!(benches);
