//! Timer-harness benches: ablations of the design choices DESIGN.md calls
//! out, measured as simulation cost. (Their *quality* impact —
//! entropy, n_NIST — is quantified by the `design_steps`/`table1`
//! binaries and the `attack_scenario` example, since Criterion
//! measures time, not randomness.)
//!
//! Axes: ring length `n`, delay-line length `m`, down-sampling `k`,
//! bubble-filter strategy, noise model complexity.

use trng_core::bubble::BubbleFilter;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::noise::{FlickerParams, GlobalModulation, SupplyTone};
use trng_model::params::DesignParams;
use trng_testkit::bench::{BenchmarkId, Criterion, Throughput};
use trng_testkit::{criterion_group, criterion_main};

const N: usize = 1_000;

fn bench_ring_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ring_length");
    group.throughput(Throughput::Elements(N as u64));
    for n in [3usize, 5, 7] {
        let cfg = TrngConfig::paper_k1().with_design(DesignParams {
            n,
            ..DesignParams::paper_k1()
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            let mut trng = CarryChainTrng::new(cfg.clone(), 1).expect("valid");
            b.iter(|| trng.generate_raw(N));
        });
    }
    group.finish();
}

fn bench_line_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_line_length");
    group.throughput(Throughput::Elements(N as u64));
    for m in [32usize, 36, 48, 64] {
        let cfg = TrngConfig::paper_k1().with_design(DesignParams {
            m,
            ..DesignParams::paper_k1()
        });
        group.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            let mut trng = CarryChainTrng::new(cfg.clone(), 2).expect("valid");
            b.iter(|| trng.generate_raw(N));
        });
    }
    group.finish();
}

fn bench_bubble_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bubble_filter");
    group.throughput(Throughput::Elements(N as u64));
    for (label, filter) in [
        ("priority", BubbleFilter::Priority),
        ("majority3", BubbleFilter::Majority3),
        ("none", BubbleFilter::None),
    ] {
        let cfg = TrngConfig::paper_k1().with_bubble_filter(filter);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut trng = CarryChainTrng::new(cfg.clone(), 3).expect("valid");
            b.iter(|| trng.generate_raw(N));
        });
    }
    group.finish();
}

fn bench_noise_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_noise_model");
    group.throughput(Throughput::Elements(N as u64));
    let white_only = {
        let mut cfg = TrngConfig::paper_k1();
        cfg.flicker = None;
        cfg
    };
    let with_flicker = TrngConfig::paper_k1();
    let full = {
        let mut cfg = TrngConfig::paper_k1();
        cfg.flicker = Some(FlickerParams::default());
        cfg.global = Some(GlobalModulation::supply_tone(SupplyTone::new(1e6, 0.002)));
        cfg
    };
    for (label, cfg) in [
        ("white_only", white_only),
        ("with_flicker", with_flicker),
        ("flicker_plus_supply", full),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut trng = CarryChainTrng::new(cfg.clone(), 4).expect("valid");
            b.iter(|| trng.generate_raw(N));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ring_length,
    bench_line_length,
    bench_bubble_filter,
    bench_noise_model
);
criterion_main!(benches);
