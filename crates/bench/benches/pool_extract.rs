//! Extraction bench: Toeplitz conditioning cost against the design's
//! XOR post-processing, written to `BENCH_extract.json`.
//!
//! Three configurations of a 2-shard deterministic pool, one row each:
//!
//! * `design_xor` — the paper's np-rate XOR tree (np = 7 raw bits per
//!   output bit), the pre-existing baseline.
//! * `toeplitz_shard` — per-shard seeded Toeplitz at the
//!   leftover-hash-sized ratio (5 raw bits per output bit for the
//!   carry-chain claim at eps 2^-32).
//! * `composed` — raw shards feeding the pool-level cross-shard
//!   Toeplitz stage at the same auto-sized ratio; this row also
//!   reports the stage's claimed vs measured min-entropy.
//!
//! All rows run the batched noise backend so wall-clock figures
//! measure conditioning overhead, not scalar noise synthesis. The run
//! asserts a regression gate: Toeplitz rows must stay within
//! `TRNG_EXTRACT_GATE_RATIO` (default 2.0) of the design_xor ns/bit —
//! generous, since ratio 5 consumes fewer raw bits than np = 7.
//!
//! Run with `cargo bench --bench pool_extract`; set
//! `TRNG_EXTRACT_BENCH_BYTES` to change the per-configuration volume
//! and `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_pool::{
    ComposedExtract, ComposedStats, Conditioning, EntropyPool, NoiseBackend, PoolConfig,
};
use trng_testkit::json::Json;

const SEED: u64 = 0x5EED7;
const EPSILON_LOG2: u32 = 32;

struct Run {
    name: &'static str,
    conditioning: String,
    bytes: usize,
    wall: Duration,
    ns_per_bit: f64,
    wall_mbps: f64,
    sim_mbps: f64,
    composed: Option<ComposedStats>,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_one(
    name: &'static str,
    conditioning: Conditioning,
    composed: Option<ComposedExtract>,
    bytes: usize,
) -> Run {
    let label = conditioning.to_string();
    let mut config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(conditioning)
        .with_noise_backend(NoiseBackend::Batched)
        .with_seed(SEED)
        .deterministic(true);
    if let Some(c) = composed {
        config = config.with_composed_extract(c);
    }
    let mut pool = EntropyPool::new(config).expect("pool build");
    pool.wait_online(Duration::from_secs(600))
        .expect("admission");
    let mut sink = vec![0u8; bytes];
    let t0 = Instant::now();
    pool.fill_bytes(&mut sink).expect("fill");
    let wall = t0.elapsed();
    let stats = pool.stats();
    assert_eq!(
        stats.total_alarms(),
        0,
        "healthy bench run alarmed ({name})"
    );
    let composed = stats.composed.clone();
    Run {
        name,
        conditioning: label,
        bytes,
        wall,
        ns_per_bit: wall.as_nanos() as f64 / (bytes as f64 * 8.0),
        wall_mbps: bytes as f64 * 8.0 / wall.as_secs_f64() / 1e6,
        sim_mbps: stats.sim_throughput_bps() / 1e6,
        composed,
    }
}

fn main() {
    let bytes = env_usize("TRNG_EXTRACT_BENCH_BYTES", 16 * 1024);
    let gate = env_f64("TRNG_EXTRACT_GATE_RATIO", 2.0);
    println!("pool_extract: {bytes} bytes per configuration, 2 shards, batched noise\n");

    let claim = trng_core::selftest::claimed_min_entropy(&TrngConfig::paper_k1())
        .expect("carry-chain claim");
    let runs = [
        run_one("design_xor", Conditioning::DesignXor, None, bytes),
        run_one(
            "toeplitz_shard",
            Conditioning::toeplitz_sized(claim, EPSILON_LOG2, SEED),
            None,
            bytes,
        ),
        run_one(
            "composed",
            Conditioning::Raw,
            Some(ComposedExtract::new(EPSILON_LOG2, SEED)),
            bytes,
        ),
    ];

    println!(
        "{:>15} {:>13} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "row", "conditioning", "bytes", "wall", "ns/bit", "wall Mb/s", "sim Mb/s"
    );
    let benchmarks: Vec<Json> = runs
        .iter()
        .map(|r| {
            println!(
                "{:>15} {:>13} {:>9} {:>8.2} s {:>10.1} {:>12.3} {:>12.2}",
                r.name,
                r.conditioning,
                r.bytes,
                r.wall.as_secs_f64(),
                r.ns_per_bit,
                r.wall_mbps,
                r.sim_mbps,
            );
            let mut fields = vec![
                ("name", Json::str(r.name)),
                ("conditioning", Json::str(&r.conditioning)),
                ("bytes", Json::num(r.bytes as f64)),
                ("wall_ns", Json::num(r.wall.as_nanos() as f64)),
                ("ns_per_bit", Json::num(r.ns_per_bit)),
                ("wall_mbps", Json::num(r.wall_mbps)),
                ("sim_mbps", Json::num(r.sim_mbps)),
            ];
            if let Some(c) = &r.composed {
                fields.push(("composed", c.to_json()));
            }
            Json::obj(fields)
        })
        .collect();

    let report = Json::obj(vec![
        ("group", Json::str("extract")),
        ("epsilon_log2", Json::num(f64::from(EPSILON_LOG2))),
        ("gate_ratio", Json::num(gate)),
        (
            "note",
            Json::str(
                "2-shard deterministic pool on the batched noise backend. \
                 design_xor is the paper's np=7 XOR baseline; toeplitz rows \
                 run the leftover-hash-sized seeded extractor (ratio 5 for \
                 the carry-chain claim at eps 2^-32) per shard and as the \
                 composed cross-shard stage over raw shards. wall figures \
                 are host simulator speed; sim_mbps is the simulated clock \
                 domain",
            ),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_extract.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_extract.json");
    println!("\nwrote {}", path.display());

    // Regression gate: Toeplitz must stay within `gate`x of the
    // design XOR ns/bit (it consumes 5 raw bits per output bit to the
    // XOR tree's 7, so parity or better is the expectation).
    let baseline = runs[0].ns_per_bit;
    for r in &runs[1..] {
        assert!(
            r.ns_per_bit <= gate * baseline,
            "{} regressed: {:.1} ns/bit vs design_xor {:.1} ns/bit (gate {gate}x)",
            r.name,
            r.ns_per_bit,
            baseline,
        );
    }
    // The composed row's leftover-hash claim must under-promise the
    // measured stream (16 KiB clears the 4 KiB measurement floor).
    let composed = runs[2].composed.as_ref().expect("composed stats");
    assert!(
        composed.claimed_min_entropy <= composed.measured_min_entropy,
        "composed claim {:.4} exceeds measured {:.4}",
        composed.claimed_min_entropy,
        composed.measured_min_entropy,
    );
}
