//! Elastic-pool bench: delivered throughput of a threaded pool while
//! a scripted kill/respawn cycle runs under it, versus the same pool
//! left unharmed, written to `BENCH_elastic.json`.
//!
//! Three scenarios over the same 3-shard pool and byte volume:
//!
//! * `baseline` — no faults; every shard survives the whole run.
//! * `kill_no_respawn` — shard 1 dies persistently mid-stream and no
//!   respawn policy is set: the tail is served by 2 of 3 shards.
//! * `kill_respawn` — the same death with a respawn budget of one:
//!   the supervisor spawns a replacement on a fresh placement, which
//!   passes the admission gate and carries the tail.
//!
//! The interesting number is how much of the unharmed throughput the
//! healed pool retains: the respawn path costs one admission gate and
//! one discarded block, so `kill_respawn` should sit well above
//! `kill_no_respawn` and close to `baseline`.
//!
//! Run with `cargo bench --bench pool_elastic`; set
//! `TRNG_ELASTIC_BENCH_BYTES` to change the per-scenario volume and
//! `TRNG_BENCH_OUT_DIR` to redirect the JSON report.

use std::time::{Duration, Instant};

use trng_core::trng::TrngConfig;
use trng_model::params::{DesignParams, PlatformParams};
use trng_pool::{Conditioning, EntropyPool, FaultInjection, PoolConfig, RespawnPolicy, ShardFault};
use trng_testkit::json::Json;

const SHARDS: usize = 3;
/// Per-shard healthy-byte offset at which the scripted kill fires —
/// past the ring prefill, so the death lands mid-drain.
const KILL_AT: u64 = 16 * 1024;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Drift-frozen, injection-locked configuration: a shard swapped onto
/// it reliably trips the continuous tests.
fn dead_config() -> TrngConfig {
    let mut config = TrngConfig::ideal();
    config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
    config.design = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
        ..DesignParams::paper_k4()
    };
    config
}

fn base_config() -> PoolConfig {
    PoolConfig::new(TrngConfig::paper_k1(), SHARDS)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0xE1A5B)
}

fn kill_shard_1(config: PoolConfig) -> PoolConfig {
    config.with_fault(FaultInjection {
        shard: 1,
        after_bytes: KILL_AT,
        fault: ShardFault::Config(Box::new(dead_config())),
        transient: false,
    })
}

/// Fills `total` bytes through the threaded backend and returns
/// (wall Mb/s, final stats).
fn run(config: PoolConfig, total: usize) -> (f64, trng_pool::PoolStats) {
    let mut pool = EntropyPool::new(config).expect("pool build");
    pool.wait_online(Duration::from_secs(600))
        .expect("admission");
    let mut sink = vec![0u8; total];
    let t0 = Instant::now();
    pool.fill_bytes(&mut sink).expect("bench fill");
    let mbps = total as f64 * 8.0 / t0.elapsed().as_secs_f64() / 1e6;
    (mbps, pool.stats())
}

fn main() {
    let total = env_usize("TRNG_ELASTIC_BENCH_BYTES", 256 * 1024);
    println!(
        "pool_elastic: {total} bytes per scenario, {SHARDS}-shard threaded pool, \
         kill at {KILL_AT} healthy bytes on shard 1\n"
    );
    println!("{:>16} {:>14} {:>10}", "scenario", "wall Mb/s", "vs base");

    let (baseline_mbps, baseline_stats) = run(base_config(), total);
    assert_eq!(baseline_stats.total_alarms(), 0, "baseline must stay clean");
    println!("{:>16} {baseline_mbps:>14.3} {:>9.2}x", "baseline", 1.0);

    let (degraded_mbps, degraded_stats) = run(kill_shard_1(base_config()), total);
    assert_eq!(degraded_stats.respawns, 0);
    assert_eq!(degraded_stats.online_shards(), SHARDS - 1);
    let degraded_ratio = degraded_mbps / baseline_mbps;
    println!(
        "{:>16} {degraded_mbps:>14.3} {degraded_ratio:>9.2}x",
        "kill_no_respawn"
    );

    let (healed_mbps, healed_stats) = run(
        kill_shard_1(base_config()).with_respawn(RespawnPolicy::new(SHARDS, 1)),
        total,
    );
    assert_eq!(
        healed_stats.respawns, 1,
        "the kill must trigger one respawn"
    );
    assert_eq!(healed_stats.online_shards(), SHARDS);
    let healed_ratio = healed_mbps / baseline_mbps;
    println!(
        "{:>16} {healed_mbps:>14.3} {healed_ratio:>9.2}x",
        "kill_respawn"
    );

    let report = Json::obj(vec![
        ("group", Json::str("elastic")),
        ("shards", Json::u64(SHARDS as u64)),
        ("conditioning", Json::str("raw")),
        ("kill_at_bytes", Json::u64(KILL_AT)),
        (
            "note",
            Json::str(
                "threaded pool, persistent kill of shard 1 mid-stream; kill_respawn \
                 heals via one supervisor respawn (admission-gated replacement) and \
                 should retain most of the unharmed baseline throughput",
            ),
        ),
        (
            "benchmarks",
            Json::Arr(vec![
                Json::obj(vec![
                    ("name", Json::str("baseline")),
                    ("bytes", Json::u64(total as u64)),
                    ("wall_mbps", Json::num(baseline_mbps)),
                    ("vs_baseline", Json::num(1.0)),
                    ("respawns", Json::u64(0)),
                    ("journal_events", Json::u64(baseline_stats.journal_recorded)),
                ]),
                Json::obj(vec![
                    ("name", Json::str("kill_no_respawn")),
                    ("bytes", Json::u64(total as u64)),
                    ("wall_mbps", Json::num(degraded_mbps)),
                    ("vs_baseline", Json::num(degraded_ratio)),
                    ("respawns", Json::u64(0)),
                    ("journal_events", Json::u64(degraded_stats.journal_recorded)),
                ]),
                Json::obj(vec![
                    ("name", Json::str("kill_respawn")),
                    ("bytes", Json::u64(total as u64)),
                    ("wall_mbps", Json::num(healed_mbps)),
                    ("vs_baseline", Json::num(healed_ratio)),
                    ("respawns", Json::u64(u64::from(healed_stats.respawns))),
                    ("journal_events", Json::u64(healed_stats.journal_recorded)),
                ]),
            ]),
        ),
    ]);
    let dir = std::env::var("TRNG_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_elastic.json");
    std::fs::write(&path, report.to_string_pretty()).expect("write BENCH_elastic.json");
    println!("\nwrote {}", path.display());
}
