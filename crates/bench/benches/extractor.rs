//! Timer-harness benches: the combinational entropy extractor in
//! isolation (XOR stage + bubble filter + priority encoding), per
//! Figure 5. In hardware this is one clock cycle; in simulation it is
//! the per-sample decode cost.

use trng_core::bubble::BubbleFilter;
use trng_core::extractor::EntropyExtractor;
use trng_core::snippet::Snippet;
use trng_testkit::bench::{BenchmarkId, Criterion};
use trng_testkit::{criterion_group, criterion_main};

/// Builds a deterministic three-line snippet with an edge at `pos` and
/// an optional bubble.
fn snippet_with_edge(m: usize, pos: usize, bubble: bool) -> Snippet {
    let mut lines = Vec::new();
    for l in 0..3usize {
        let mut line: Vec<bool> = (0..m).map(|j| j < pos + l).collect();
        if bubble && l == 0 && pos > 2 {
            line[pos - 2] = !line[pos - 2];
        }
        lines.push(line);
    }
    Snippet::new(lines)
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");
    let snippet = snippet_with_edge(36, 17, false);
    for (label, k, filter) in [
        ("k1_priority", 1u32, BubbleFilter::Priority),
        ("k1_majority3", 1, BubbleFilter::Majority3),
        ("k4_priority", 4, BubbleFilter::Priority),
    ] {
        let ext = EntropyExtractor::new(k, filter);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| ext.extract(trng_testkit::bench::black_box(&snippet)))
        });
    }
    group.finish();
}

fn bench_extract_with_bubbles(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_bubbled");
    let snippet = snippet_with_edge(36, 17, true);
    for (label, filter) in [
        ("priority", BubbleFilter::Priority),
        ("majority3", BubbleFilter::Majority3),
    ] {
        let ext = EntropyExtractor::new(1, filter);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| ext.extract(trng_testkit::bench::black_box(&snippet)))
        });
    }
    group.finish();
}

fn bench_snippet_classification(c: &mut Criterion) {
    let snippet = snippet_with_edge(36, 17, true);
    c.bench_function("snippet_classify", |b| {
        b.iter(|| trng_testkit::bench::black_box(&snippet).classify())
    });
}

criterion_group!(
    benches,
    bench_extract,
    bench_extract_with_bubbles,
    bench_snippet_classification
);
criterion_main!(benches);
