//! Experiment harness regenerating every table and figure of the
//! DAC 2015 paper.
//!
//! Each paper artefact has a dedicated binary (see `src/bin/`); this
//! library holds the shared machinery: bitstream generation from TRNG
//! configurations, the `n_NIST` search of Table 1, and plain-text
//! table rendering. The mapping from experiment id (E1–E13) to binary
//! is maintained in `DESIGN.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use trng_core::postprocess::XorCompressor;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_model::params::DesignParams;
use trng_stattests::assessment::assess;
use trng_stattests::bits::BitVec;

/// Default number of sequences per ensemble in the scaled-down
/// Table-1 harness (the paper's sequence count is unstated; NIST
/// recommends larger ensembles — tunable from the CLI).
pub const DEFAULT_SEQUENCES: usize = 4;

/// Default post-processed bits per sequence.
pub const DEFAULT_SEQ_LEN: usize = 50_000;

/// Maximum XOR compression rate explored, matching Table 1's "> 16".
pub const MAX_NP: u32 = 16;

/// Generates `count` raw bits from a fresh TRNG instance.
///
/// # Panics
///
/// Panics if the configuration is invalid (the experiment binaries
/// construct known-good configurations).
pub fn raw_bits(config: &TrngConfig, seed: u64, count: usize) -> Vec<bool> {
    let mut trng = CarryChainTrng::new(config.clone(), seed).expect("valid TRNG config");
    trng.generate_raw(count)
}

/// Generates `count` post-processed bits at compression rate `np`.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn postprocessed_bits(config: &TrngConfig, seed: u64, count: usize, np: u32) -> BitVec {
    let raw = raw_bits(config, seed, count * np as usize);
    XorCompressor::compress(np, &raw).into_iter().collect()
}

/// Result of the `n_NIST` search for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NNistResult {
    /// Smallest compression rate whose ensemble passes all applicable
    /// NIST tests.
    Passes(u32),
    /// Even `max_np` does not pass (Table 1 reports this as "> 16").
    ExceedsMax(u32),
}

impl core::fmt::Display for NNistResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NNistResult::Passes(np) => write!(f, "{np}"),
            NNistResult::ExceedsMax(max) => write!(f, "> {max}"),
        }
    }
}

impl NNistResult {
    /// The compression rate to use downstream (max when exceeded).
    pub fn np_or_max(&self) -> u32 {
        match *self {
            NNistResult::Passes(np) => np,
            NNistResult::ExceedsMax(max) => max,
        }
    }

    /// `true` if a passing rate was found.
    pub fn passed(&self) -> bool {
        matches!(self, NNistResult::Passes(_))
    }
}

/// Finds the minimal XOR compression rate whose ensemble of
/// `sequences` sequences of `seq_len` post-processed bits passes the
/// SP 800-22 assessment — the Table-1 `n_NIST` column.
///
/// The raw bitstream of each sequence is generated once at the
/// maximal length and re-compressed per candidate rate, mirroring how
/// the hardware experiment would reuse captured raw data.
pub fn find_n_nist(
    config: &TrngConfig,
    sequences: usize,
    seq_len: usize,
    max_np: u32,
) -> NNistResult {
    assert!(sequences > 0 && seq_len > 0 && max_np > 0);
    // Sequences are independent simulations: generate them on one
    // thread each (the dominant cost of the n_NIST search).
    let raw: Vec<Vec<bool>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sequences)
            .map(|s| {
                let config = config.clone();
                scope.spawn(move || raw_bits(&config, 1000 + s as u64, seq_len * max_np as usize))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    for np in 1..=max_np {
        let seqs: Vec<BitVec> = raw
            .iter()
            .map(|r| {
                XorCompressor::compress(np, &r[..seq_len * np as usize])
                    .into_iter()
                    .collect()
            })
            .collect();
        if assess(&seqs).all_passed() {
            return NNistResult::Passes(np);
        }
    }
    NNistResult::ExceedsMax(max_np)
}

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Down-sampling factor.
    pub k: u32,
    /// Accumulation time in ns.
    pub t_a_ns: f64,
    /// Model Shannon-entropy lower bound of a raw bit (H_RAW).
    pub h_raw: f64,
    /// Measured n_NIST.
    pub n_nist: NNistResult,
    /// Model entropy after compression with n_NIST (H_NEW).
    pub h_new: Option<f64>,
    /// Output throughput in Mb/s at n_NIST.
    pub throughput_mbps: Option<f64>,
}

impl Table1Row {
    /// Renders the row in the paper's column order.
    pub fn render(&self) -> String {
        format!(
            "{:>2} {:>7.0} {:>8.2} {:>7} {:>8} {:>12}",
            self.k,
            self.t_a_ns,
            self.h_raw,
            self.n_nist.to_string(),
            self.h_new
                .map_or_else(|| "NA".to_string(), |h| format!("{h:.3}")),
            self.throughput_mbps
                .map_or_else(|| "NA".to_string(), |t| format!("{t:.2}")),
        )
    }
}

/// Computes one Table-1 row: model entropy + measured n_NIST +
/// resulting throughput.
pub fn table1_row(
    base: &TrngConfig,
    k: u32,
    n_a: u32,
    sequences: usize,
    seq_len: usize,
) -> Table1Row {
    let design = DesignParams {
        k,
        n_a,
        np: 1,
        ..base.design
    };
    let config = base.clone().with_design(design);
    let point =
        trng_model::design_space::evaluate(&config.platform, &design).expect("valid design");
    let n_nist = find_n_nist(&config, sequences, seq_len, MAX_NP);
    let (h_new, throughput) = match n_nist {
        NNistResult::Passes(np) => {
            let h = trng_model::postprocess::entropy_after_xor(point.bias_raw, np);
            let thr = design.raw_throughput_bps() / f64::from(np) / 1e6;
            (Some(h), Some(thr))
        }
        NNistResult::ExceedsMax(_) => (None, None),
    };
    Table1Row {
        k,
        t_a_ns: design.t_a_ps() / 1e3,
        h_raw: point.h_raw,
        n_nist,
        h_new,
        throughput_mbps: throughput,
    }
}

/// Renders a simple fixed-width table with a title and column header.
pub fn render_table(title: &str, header: &str, rows: &[String]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    out
}

/// Parses `--key value` style overrides from `std::env::args`.
///
/// Returns the value for `key` parsed as `usize`, or `default`.
pub fn arg_usize(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == key)
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postprocessed_length_is_exact() {
        let cfg = TrngConfig::ideal();
        let bits = postprocessed_bits(&cfg, 1, 500, 3);
        assert_eq!(bits.len(), 500);
    }

    #[test]
    fn raw_bits_are_reproducible() {
        let cfg = TrngConfig::ideal();
        assert_eq!(raw_bits(&cfg, 5, 200), raw_bits(&cfg, 5, 200));
    }

    #[test]
    fn n_nist_result_rendering() {
        assert_eq!(NNistResult::Passes(7).to_string(), "7");
        assert_eq!(NNistResult::ExceedsMax(16).to_string(), "> 16");
        assert!(NNistResult::Passes(7).passed());
        assert!(!NNistResult::ExceedsMax(16).passed());
        assert_eq!(NNistResult::ExceedsMax(16).np_or_max(), 16);
    }

    #[test]
    fn table_rendering_contains_rows() {
        let t = render_table("T", "a b", &["1 2".into(), "3 4".into()]);
        assert!(t.contains("T\n"));
        assert!(t.contains("1 2"));
        assert!(t.contains("3 4"));
    }

    #[test]
    fn find_n_nist_on_good_config_is_small() {
        // Ideal TDC at tA = 20 ns: near-perfect raw bits; tiny ensemble
        // for test speed.
        let cfg = TrngConfig::ideal().with_design(DesignParams {
            n_a: 2,
            ..DesignParams::paper_k1()
        });
        let r = find_n_nist(&cfg, 2, 3_000, 4);
        assert!(r.passed(), "result {r}");
        assert!(r.np_or_max() <= 3);
    }
}
