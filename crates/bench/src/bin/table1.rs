//! Regenerates **Table 1** — "Evaluation of different design
//! versions": for each (k, tA) configuration, the model H_RAW, the
//! measured minimal NIST-passing compression rate n_NIST, the
//! post-processed entropy H_NEW and the resulting throughput.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p trng-bench --bin table1 [-- --sequences 4 --seq-len 50000]
//! ```
//!
//! The defaults are scaled down from the paper's (unstated, likely
//! ≥ 10 × 1 Mbit) evaluation so the table regenerates in minutes; pass
//! larger values to tighten the statistics. EXPERIMENTS.md records the
//! deviation and the comparison against the paper's rows.

use trng_bench::{arg_usize, render_table, table1_row, DEFAULT_SEQUENCES, DEFAULT_SEQ_LEN};
use trng_core::trng::TrngConfig;

fn main() {
    let sequences = arg_usize("--sequences", DEFAULT_SEQUENCES);
    let seq_len = arg_usize("--seq-len", DEFAULT_SEQ_LEN);
    eprintln!(
        "table1: {sequences} sequences x {seq_len} post-processed bits per (k, tA, np) point"
    );

    let base = TrngConfig::paper_k1();
    // The paper's rows: (k, N_A) with tA = N_A * 10 ns.
    let rows_spec: [(u32, u32); 6] = [(1, 1), (1, 2), (4, 1), (4, 5), (4, 10), (4, 20)];
    let mut rows = Vec::new();
    for (k, n_a) in rows_spec {
        eprintln!("  evaluating k = {k}, tA = {} ns ...", n_a * 10);
        let row = table1_row(&base, k, n_a, sequences, seq_len);
        rows.push(row.render());
    }
    let header = format!(
        "{:>2} {:>7} {:>8} {:>7} {:>8} {:>12}",
        "k", "tA[ns]", "H_RAW", "n_NIST", "H_NEW", "Thrpt[Mb/s]"
    );
    println!(
        "{}",
        render_table(
            "Table 1: Evaluation of different design versions (simulated)",
            &header,
            &rows
        )
    );
    println!("Paper reference rows:");
    println!("  k=1 tA=10   H_RAW 0.99   n_NIST 7    H_NEW 0.999  14.3 Mb/s");
    println!("  k=1 tA=20   H_RAW 0.999  n_NIST 7    H_NEW 0.999  7.14 Mb/s");
    println!("  k=4 tA=10   H_RAW 0.03   n_NIST >16  H_NEW NA     NA");
    println!("  k=4 tA=50   H_RAW 0.7    n_NIST 13   H_NEW 0.999  1.53 Mb/s");
    println!("  k=4 tA=100  H_RAW 0.94   n_NIST 10   H_NEW 0.999  1.00 Mb/s");
    println!("  k=4 tA=200  H_RAW 0.99   n_NIST 6    H_NEW 0.999  0.83 Mb/s");
}
