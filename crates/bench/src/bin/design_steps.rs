//! Walks the paper's complete four-step design procedure (Figure 1 /
//! Section 4.4) end-to-end against the simulated device, covering
//! experiments E7 (platform measurements), E8 (the m = 32 → 36
//! decision) and E9 (the design flow):
//!
//! 1. **Step 1** — measure platform parameters (Section 5.1);
//! 2. **Step 2** — determine design parameters from the stochastic
//!    model (Section 5.2), including the m = 32 missed-edge study;
//! 3. **Step 3** — "implement" (build the simulated TRNG, check
//!    placement and resources);
//! 4. **Step 4** — statistical evaluation (NIST battery, AIS-31,
//!    FIPS 140-2, empirical entropy).
//!
//! ```text
//! cargo run --release -p trng-bench --bin design_steps
//! ```

use trng_bench::arg_usize;
use trng_core::resources::estimate;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_measure::measure_platform;
use trng_model::design_space::{evaluate, np_for_bias};
use trng_model::params::{DesignParams, PlatformParams};
use trng_stattests::ais31::run_ais31;
use trng_stattests::bits::BitVec;
use trng_stattests::estimators::{markov_min_entropy, mcv_min_entropy, shannon_bias_entropy};
use trng_stattests::fips140::run_fips140;
use trng_stattests::nist::run_battery;

fn main() {
    let eval_bits = arg_usize("--bits", 120_000);
    let device = DeviceSeed::new(42);

    println!("=== Step 1: measure platform parameters (Section 5.1) ===");
    let ro_config = RingOscillatorConfig {
        device,
        history_window: Ps::from_ns(4.0),
        ..RingOscillatorConfig::paper_default()
    };
    let line = TappedDelayLine::ideal(128, Ps::from_ps(17.0));
    let measured = measure_platform(&ro_config, &line, SimRng::seed_from(1)).expect("measure");
    println!(
        "  d0_LUT    = {:.1} ps   (paper: 480 ps)",
        measured.d0_lut_ps
    );
    println!(
        "  tstep     = {:.2} ps   (paper: ~17 ps)",
        measured.tstep_ps
    );
    println!(
        "  sigma_LUT = {:.2} ps   (paper: ~2 ps)",
        measured.sigma_lut_ps
    );
    let platform =
        PlatformParams::new(measured.d0_lut_ps, measured.tstep_ps, measured.sigma_lut_ps)
            .expect("measured parameters are positive");

    println!("\n=== Step 2: determine design parameters from the model ===");
    println!(
        "  edge-detection condition: m > d0/tstep = {:.1}  ->  m >= {}",
        platform.d0_lut_ps / platform.tstep_ps,
        platform.min_taps()
    );
    // The m = 32 vs 36 study (Section 5.2): under process variation
    // some devices have LUTs slower than the average; measure the
    // missed-edge rate per m across devices.
    println!("  missed-edge rate vs m (1500 samples x 6 devices, 8 % LUT sigma):");
    let process = ProcessVariation::new(0.08, 0.06, 0.01);
    for m in [28usize, 32, 36, 40] {
        let mut missed = 0u64;
        let mut total = 0u64;
        for dev in 0..6u64 {
            let mut cfg = TrngConfig::paper_k1().with_design(DesignParams {
                m,
                ..DesignParams::paper_k1()
            });
            cfg.device = DeviceSeed::new(dev);
            cfg.process = process;
            // m = 28 violates the nominal validation; relax via a
            // faster-LUT pretend platform only for the sweep.
            if m == 28 {
                cfg.platform = PlatformParams::new(470.0, 17.0, 2.6).expect("valid");
            }
            match CarryChainTrng::new(cfg, 100 + dev) {
                Ok(mut trng) => {
                    let _ = trng.generate_raw(1500);
                    missed += trng.stats().missed_edges;
                    total += trng.stats().samples;
                }
                Err(e) => {
                    println!("    m = {m}: rejected by validation ({e})");
                    total = 0;
                    break;
                }
            }
        }
        if total > 0 {
            println!(
                "    m = {m}: {:.3} %  {}",
                missed as f64 / total as f64 * 100.0,
                if m == 32 {
                    "(paper: 0.8 % -> rejected)"
                } else if m == 36 {
                    "(paper: always captured -> chosen)"
                } else {
                    ""
                }
            );
        }
    }
    // Accumulation time and np via the model.
    let design = DesignParams::paper_k1();
    let point = evaluate(&platform, &design).expect("valid design");
    println!(
        "  chosen: n = {}, m = {}, k = {}, tA = {} ns -> model H_RAW = {:.3}",
        design.n,
        design.m,
        design.k,
        design.t_a_ps() / 1e3,
        point.h_raw
    );
    let np = np_for_bias(&platform, &design, 1e-4, 16)
        .expect("valid design")
        .map_or("> 16".to_string(), |np| np.to_string());
    println!("  model-suggested XOR rate for bias <= 1e-4: np = {np}");

    println!("\n=== Step 3: FPGA implementation (simulated) ===");
    let mut config = TrngConfig::paper_k1();
    config.device = device;
    let trng = CarryChainTrng::new(config.clone(), 7).expect("valid config");
    let breakdown = estimate(&design);
    println!(
        "  placement: delay lines in carry columns {:?}, rows 1..=9 (one clock region)",
        [4, 6, 8]
    );
    println!(
        "  resources: {} slices total (paper: 67) — osc {}, lines {}, sync {}, xor {}, encoder {}",
        breakdown.total_slices(),
        breakdown.oscillator,
        breakdown.delay_lines,
        breakdown.synchroniser,
        breakdown.xor_stage,
        breakdown.encoder
    );
    drop(trng);

    println!("\n=== Step 4: statistical evaluation ===");
    let mut trng = CarryChainTrng::new(config, 11).expect("valid config");
    let pp: BitVec = trng.generate_postprocessed(eval_bits).into_iter().collect();
    println!(
        "  generated {} post-processed bits (np = {}), missed edges: {}",
        pp.len(),
        trng.config().design.np,
        trng.stats().missed_edges
    );
    println!(
        "  empirical entropy: H(bias) = {:.4}, MCV min-H = {:.4}, Markov min-H = {:.4}",
        shannon_bias_entropy(&pp),
        mcv_min_entropy(&pp),
        markov_min_entropy(&pp)
    );
    let fips = run_fips140(&pp);
    println!("  FIPS 140-2: {fips}");
    let ais = run_ais31(&pp);
    println!("  AIS-31:\n{ais}");
    let battery = run_battery(&pp);
    println!("  NIST SP 800-22:\n{battery}");
}
