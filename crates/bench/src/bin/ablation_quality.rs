//! Quality ablations of the design choices DESIGN.md calls out —
//! the statistical counterpart of `benches/ablation.rs` (which
//! measures simulation cost):
//!
//! 1. bubble-filter strategy (paper: priority decode);
//! 2. clock-region placement constraint (paper Section 5.2);
//! 3. XOR vs Von Neumann post-processing (paper Section 4.5);
//! 4. flicker-noise amplitude (the paper's unquantified noise);
//! 5. ring length n (the paper: "doesn't figure in the entropy
//!    model", chosen minimal for area).
//!
//! ```text
//! cargo run --release -p trng-bench --bin ablation_quality [-- --bits 40000]
//! ```

use trng_bench::arg_usize;
use trng_core::bubble::BubbleFilter;
use trng_core::postprocess::XorCompressor;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_core::von_neumann::VonNeumann;
use trng_fpga_sim::noise::FlickerParams;
use trng_fpga_sim::time::Ps;
use trng_model::params::DesignParams;
use trng_stattests::bits::BitVec;
use trng_stattests::estimators::{markov_min_entropy, shannon_bias_entropy};

fn stats_of(raw: &[bool]) -> (f64, f64) {
    let bv: BitVec = raw.iter().copied().collect();
    (shannon_bias_entropy(&bv), markov_min_entropy(&bv))
}

fn main() {
    let bits = arg_usize("--bits", 40_000);
    println!("quality ablations ({bits} raw bits per variant)\n");

    // 1. Bubble filters.
    println!("1. bubble-filter strategy (k = 1, tA = 10 ns raw bits):");
    for (label, filter) in [
        ("priority (paper)", BubbleFilter::Priority),
        ("majority3", BubbleFilter::Majority3),
        ("none", BubbleFilter::None),
    ] {
        let cfg = TrngConfig::paper_k1().with_bubble_filter(filter);
        let mut trng = CarryChainTrng::new(cfg, 1).expect("valid");
        let raw = trng.generate_raw(bits);
        let (h, m) = stats_of(&raw);
        println!(
            "   {label:<18} H(bias) = {h:.4}  H(markov) = {m:.4}  bubbled snippets = {}",
            trng.stats().bubbled
        );
    }

    // 2. Clock-region placement.
    println!("\n2. clock-region constraint (chain rows 1..=9 vs 12..=20):");
    for (label, first_row) in [("single region (paper)", 1u32), ("crosses boundary", 12u32)] {
        let mut cfg = TrngConfig::paper_k1();
        cfg.first_row = first_row;
        let mut trng = CarryChainTrng::new(cfg, 2).expect("valid");
        let raw = trng.generate_raw(bits);
        let (h, m) = stats_of(&raw);
        println!("   {label:<22} H(bias) = {h:.4}  H(markov) = {m:.4}");
    }

    // 3. XOR vs Von Neumann post-processing.
    println!("\n3. post-processing (same {bits}-bit raw stream, k = 1):");
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 3).expect("valid");
    let raw = trng.generate_raw(bits);
    let (h_raw, m_raw) = stats_of(&raw);
    println!("   raw                H(bias) = {h_raw:.4}  H(markov) = {m_raw:.4}  rate = 1.000");
    for np in [4u32, 7] {
        let out = XorCompressor::compress(np, &raw);
        let (h, m) = stats_of(&out);
        println!(
            "   xor np = {np:<10} H(bias) = {h:.4}  H(markov) = {m:.4}  rate = {:.3}",
            1.0 / f64::from(np)
        );
    }
    let vn = VonNeumann::extract(&raw);
    let (h, m) = stats_of(&vn);
    println!(
        "   von neumann        H(bias) = {h:.4}  H(markov) = {m:.4}  rate = {:.3} (data-dependent)",
        vn.len() as f64 / raw.len() as f64
    );
    println!("   -> XOR gives a *fixed* rate (hardware-friendly, the paper's choice);");
    println!("      Von Neumann's rate floats with the bias and assumes independence.");

    // 4. Flicker amplitude.
    println!("\n4. flicker-noise amplitude (sigma of the OU delay process):");
    for sigma_fl in [0.0f64, 0.5, 2.0, 8.0] {
        let mut cfg = TrngConfig::paper_k1();
        cfg.flicker = if sigma_fl == 0.0 {
            None
        } else {
            Some(FlickerParams::new(Ps::from_ps(sigma_fl), Ps::from_us(1.0)))
        };
        let mut trng = CarryChainTrng::new(cfg, 4).expect("valid");
        let raw = trng.generate_raw(bits);
        let (h, m) = stats_of(&raw);
        println!("   sigma_fl = {sigma_fl:>4.1} ps    H(bias) = {h:.4}  H(markov) = {m:.4}");
    }
    println!("   -> flicker shifts tau slowly; the worst-case model (tau = 0) already");
    println!("      covers it, which is why the paper leaves it unquantified.");

    // 5. Ring length.
    println!("\n5. ring length n (the model says n is irrelevant to entropy):");
    for n in [3usize, 5, 7] {
        let cfg = TrngConfig::paper_k1().with_design(DesignParams {
            n,
            ..DesignParams::paper_k1()
        });
        let mut trng = CarryChainTrng::new(cfg, 5).expect("valid");
        let raw = trng.generate_raw(bits);
        let (h, m) = stats_of(&raw);
        let slices = trng_core::resources::estimate(&trng.config().design).total_slices();
        println!("   n = {n}: H(bias) = {h:.4}  H(markov) = {m:.4}  area = {slices} slices");
    }
    println!("   -> entropy flat in n, area grows: the paper picks the smallest n");
    println!("      whose frequency/jitter could still be measured (n = 3).");

    // 6. Device yield.
    println!("\n6. device-to-device yield (20 fabricated devices, m = 36):");
    let mut h_values = Vec::new();
    let mut total_missed = 0u64;
    for dev in 0..20u64 {
        let cfg = TrngConfig::paper_k1().with_device(trng_fpga_sim::process::DeviceSeed::new(dev));
        let mut trng = CarryChainTrng::new(cfg, 600 + dev).expect("valid");
        let raw = trng.generate_raw(bits / 2);
        let (h, _) = stats_of(&raw);
        h_values.push(h);
        total_missed += trng.stats().missed_edges;
    }
    h_values.sort_by(f64::total_cmp);
    println!(
        "   H(bias): min {:.4} / median {:.4} / max {:.4}; missed edges across all: {}",
        h_values[0],
        h_values[h_values.len() / 2],
        h_values[h_values.len() - 1],
        total_missed
    );
    println!("   -> every device meets the entropy band at m = 36 (the 4-CARRY4");
    println!("      margin absorbs process spread) — the paper's robustness claim.");

    // 7. Carry-chain TRNG vs simplified self-timed ring (reference [1]).
    println!("\n7. carry-chain vs self-timed ring (Table 2's fastest competitor):");
    let mut str_trng = trng_core::self_timed::SelfTimedTrng::new(
        trng_core::self_timed::SelfTimedConfig::reference(),
        8,
    )
    .expect("valid");
    let str_bits = str_trng.generate(bits);
    let (h_str, m_str) = stats_of(&str_bits);
    let mut cc = CarryChainTrng::new(TrngConfig::paper_k1(), 8).expect("valid");
    let cc_bits = cc.generate_raw(bits);
    let (h_cc, m_cc) = stats_of(&cc_bits);
    println!(
        "   self-timed ring (511 st) H(bias) = {h_str:.4}  H(markov) = {m_str:.4}  area > 511 LUTs"
    );
    println!(
        "   carry-chain (this work)  H(bias) = {h_cc:.4}  H(markov) = {m_cc:.4}  area = 67 slices"
    );
    println!(
        "   -> comparable per-bit quality at ~{:.1} ps effective resolution each,",
        trng_core::self_timed::SelfTimedConfig::reference()
            .resolution()
            .as_ps()
    );
    println!("      but the STR pays for resolution with stages, the carry chain with");
    println!("      sampling taps — the paper's core area argument.");
}
