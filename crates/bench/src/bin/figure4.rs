//! Regenerates **Figure 4** — "Data snippets, illustrating the
//! representative examples": (a) regular sampling, (b) double edge,
//! (c) bubbles in the code.
//!
//! Samples the simulated TRNG until one snippet of each kind is
//! captured, renders them in the figure's style, and reports the
//! occurrence rate of each phenomenon over a larger sample.
//!
//! ```text
//! cargo run --release -p trng-bench --bin figure4 [-- --samples 20000]
//! ```

use trng_bench::arg_usize;
use trng_core::snippet::{Snippet, SnippetKind};
use trng_core::trng::{CarryChainTrng, TrngConfig};

fn main() {
    let samples = arg_usize("--samples", 20_000);
    let config = TrngConfig::paper_k1();
    let mut trng = CarryChainTrng::new(config, 2015).expect("valid config");

    let mut examples: Vec<(SnippetKind, Snippet)> = Vec::new();
    let mut counts = [0u64; 4];
    for _ in 0..samples {
        let snippet = trng.sample_snippet();
        let kind = snippet.classify();
        let idx = match kind {
            SnippetKind::Regular => 0,
            SnippetKind::DoubleEdge => 1,
            SnippetKind::Bubbled => 2,
            SnippetKind::NoEdge => 3,
        };
        counts[idx] += 1;
        if !examples.iter().any(|(k, _)| *k == kind) {
            examples.push((kind, snippet));
        }
    }
    examples.sort_by_key(|(k, _)| match k {
        SnippetKind::Regular => 0,
        SnippetKind::DoubleEdge => 1,
        SnippetKind::Bubbled => 2,
        SnippetKind::NoEdge => 3,
    });

    println!("Figure 4: representative TDC data snippets (simulated)\n");
    let letters = ['a', 'b', 'c', 'd'];
    for (i, (kind, snippet)) in examples.iter().enumerate() {
        println!("({}) {} sampling:", letters[i.min(3)], kind);
        println!("{snippet}\n");
    }

    let total = samples as f64;
    println!("Occurrence rates over {samples} samples:");
    println!("  regular:     {:>8.4} %", counts[0] as f64 / total * 100.0);
    println!("  double edge: {:>8.4} %", counts[1] as f64 / total * 100.0);
    println!("  bubbled:     {:>8.4} %", counts[2] as f64 / total * 100.0);
    println!(
        "  no edge:     {:>8.4} %  (paper: 0 % at m = 36)",
        counts[3] as f64 / total * 100.0
    );
    println!(
        "\nPaper expectation: \"In most cases, signal edge will be captured in\n\
         only one delay line\" — regular sampling dominates; double edges occur\n\
         because the line delay (m*tstep = 612 ps) exceeds the oscillator stage\n\
         delay (480 ps); bubbles come from metastable capture flip-flops."
    );
}
