//! Regenerates **Table 2** — "Comparison with related work": FPGA
//! resources and throughput of this work's two configurations against
//! the published related designs.
//!
//! The related-work rows are literature constants (the paper compares
//! against published numbers, not re-implementations); this work's
//! rows are produced by the resource estimator (calibrated structural
//! formulas, see `trng_core::resources`) and the simulated throughput
//! at the Table-1 operating points.
//!
//! ```text
//! cargo run --release -p trng-bench --bin table2
//! ```

use trng_bench::render_table;
use trng_core::resources::estimate;
use trng_model::params::DesignParams;

struct Row {
    work: &'static str,
    platform: &'static str,
    resources: String,
    throughput_mbps: f64,
}

fn main() {
    let k1 = DesignParams::paper_k1();
    let k4 = DesignParams::paper_k4();
    let rows = [
        Row {
            work: "Schellekens et al. [8]",
            platform: "Virtex 2 Pro",
            resources: "565 slices".into(),
            throughput_mbps: 2.5,
        },
        Row {
            work: "Cherkaoui et al. [1]",
            platform: "Cyclone 3",
            resources: ">511 LUTs".into(),
            throughput_mbps: 133.0,
        },
        Row {
            work: "Cherkaoui et al. [1]",
            platform: "Virtex 5",
            resources: ">511 LUTs".into(),
            throughput_mbps: 100.0,
        },
        Row {
            work: "Varchola/Drutarovsky [11]",
            platform: "Spartan 3E",
            resources: "not reported".into(),
            throughput_mbps: 0.25,
        },
        Row {
            work: "This work (k=1)",
            platform: "Spartan 6 (sim)",
            resources: format!("{} slices", estimate(&k1).total_slices()),
            throughput_mbps: k1.output_throughput_bps() / 1e6,
        },
        Row {
            work: "This work (k=4)",
            platform: "Spartan 6 (sim)",
            resources: format!("{} slices", estimate(&k4).total_slices()),
            throughput_mbps: k4.output_throughput_bps() / 1e6,
        },
    ];
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{:<26} {:<16} {:<14} {:>10.2}",
                r.work, r.platform, r.resources, r.throughput_mbps
            )
        })
        .collect();
    let header = format!(
        "{:<26} {:<16} {:<14} {:>10}",
        "Work", "Platform", "Resources", "Mb/s"
    );
    println!(
        "{}",
        render_table("Table 2: Comparison with related work", &header, &rendered)
    );

    // The paper's surrounding claims, checked programmatically:
    let b1 = estimate(&k1);
    let b4 = estimate(&k4);
    println!("Checks against the paper:");
    println!(
        "  k=1 total slices: {} (paper: 67) | k=4: {} (paper: 40)",
        b1.total_slices(),
        b4.total_slices()
    );
    println!(
        "  entropy source alone: {} slices (paper: \"only 3 slices\")",
        b1.oscillator
    );
    println!(
        "  k=1 throughput: {:.2} Mb/s (paper: 14.3) | k=4: {:.2} Mb/s (paper: 1.53)",
        k1.output_throughput_bps() / 1e6,
        k4.output_throughput_bps() / 1e6
    );
}
