//! Regenerates **Figure 7** — "Shannon entropy depending on τ for
//! different values of the accumulated jitter": three curves
//! (σ_acc = tstep, tstep/2, tstep/3) of H(τ) over τ/tstep ∈ [−0.5, 0.5].
//!
//! Prints a CSV series plus an ASCII rendering, and checks the three
//! curve minima (at τ = 0) against the closed-form values.
//!
//! ```text
//! cargo run --release -p trng-bench --bin figure7 [-- --points 41]
//! ```

use trng_bench::arg_usize;
use trng_model::entropy::entropy_curve;
use trng_model::params::PlatformParams;

fn main() {
    let points = arg_usize("--points", 41);
    let tstep = PlatformParams::spartan6().tstep_ps;
    let ratios = [1.0, 0.5, 1.0 / 3.0];
    let labels = ["sigma=tstep", "sigma=tstep/2", "sigma=tstep/3"];

    let curves: Vec<Vec<(f64, f64)>> = ratios
        .iter()
        .map(|&r| entropy_curve(r * tstep, tstep, points))
        .collect();

    println!("Figure 7: Shannon entropy vs tau (CSV)");
    println!("tau_over_tstep,{}", labels.join(","));
    for i in 0..points {
        let x = curves[0][i].0;
        let ys: Vec<String> = curves.iter().map(|c| format!("{:.6}", c[i].1)).collect();
        println!("{x:.4},{}", ys.join(","));
    }

    // ASCII plot: H from 0.5 to 1.0 over 24 rows.
    println!("\nASCII rendering (x: tau/tstep in [-0.5, 0.5], y: H in [0.5, 1.0]):");
    let rows = 16;
    for row in 0..=rows {
        let h_level = 1.0 - 0.5 * row as f64 / rows as f64;
        let mut line = format!("{h_level:.3} |");
        for i in 0..points {
            let mut c = ' ';
            for (ci, curve) in curves.iter().enumerate() {
                let h = curve[i].1;
                if (h - h_level).abs() < 0.25 / rows as f64 {
                    c = char::from(b'1' + ci as u8);
                }
            }
            line.push(c);
        }
        println!("{line}");
    }
    println!("       {}", "-".repeat(points));
    println!("       curves: 1 = sigma_acc = tstep, 2 = tstep/2, 3 = tstep/3");

    println!("\nCurve minima at tau = 0 (paper Figure 7 lower bounds):");
    for (label, curve) in labels.iter().zip(&curves) {
        let min = curve.iter().map(|&(_, h)| h).fold(f64::INFINITY, f64::min);
        let centre = curve[points / 2].1;
        println!("  {label:<15} min H = {min:.4} (at tau = 0: {centre:.4})");
    }
    println!("  expected: 1.0000 / 0.9000 / 0.5672 (model closed form)");
}
