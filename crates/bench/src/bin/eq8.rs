//! Regenerates **equation (8)** and the Section 5.3 comparison with
//! the elementary TRNG: the carry-chain extractor improves throughput
//! by `(d0/tstep)² ≈ 797` for `k = 1` (and 49.8 for `k = 4`), i.e. the
//! required accumulation time drops by almost three orders of
//! magnitude at equal entropy.
//!
//! Three views of the same claim:
//!
//! 1. the closed-form factor (eq. 8);
//! 2. the model-inverted accumulation times to reach H ≥ 0.99;
//! 3. a *simulation*: empirical bit-flip entropy of both TRNGs at
//!    their respective accumulation times, showing they deliver
//!    comparable randomness while the elementary TRNG needs ~800x
//!    longer accumulation.
//!
//! ```text
//! cargo run --release -p trng-bench --bin eq8 [-- --bits 20000]
//! ```

use trng_bench::arg_usize;
use trng_core::elementary::{ElementaryConfig, ElementaryTrng};
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::time::Ps;
use trng_model::design_space::{compare_with_elementary, improvement_factor};
use trng_model::params::PlatformParams;
use trng_stattests::bits::BitVec;
use trng_stattests::estimators::{markov_min_entropy, shannon_bias_entropy};

fn main() {
    let bits = arg_usize("--bits", 20_000);
    let platform = PlatformParams::spartan6();

    println!("Equation (8): throughput improvement over the elementary TRNG\n");
    let f1 = improvement_factor(&platform, 1);
    let f4 = improvement_factor(&platform, 4);
    println!("  k = 1: (d0/tstep)^2     = {f1:.1}   (paper: 797)");
    println!("  k = 4: (d0/(4 tstep))^2 = {f4:.1}    (paper: 49.8)\n");

    println!("Model-inverted accumulation times for H >= 0.99:");
    for k in [1u32, 4] {
        let cmp = compare_with_elementary(&platform, k, 0.99);
        println!(
            "  k = {k}: carry-chain tA = {:>10.1} ns | elementary tA = {:>12.1} ns | ratio {:>6.1}",
            cmp.t_a_carry_ps / 1e3,
            cmp.t_a_elementary_ps / 1e3,
            cmp.speedup
        );
    }
    let cmp = compare_with_elementary(&platform, 1, 0.99);
    println!(
        "  -> \"required accumulation time is reduced by 3 orders of magnitude\": {:.0}x\n",
        cmp.speedup
    );

    // Simulation: equal-entropy operation.
    println!("Simulation check ({bits} bits each):");
    let t_carry = Ps::from_ps(cmp.t_a_carry_ps);
    let t_elem = Ps::from_ps(cmp.t_a_elementary_ps);

    // Carry-chain TRNG at its model-required tA (ideal TDC so the
    // comparison isolates the extraction method, like the model does).
    let n_a = (t_carry.as_ns() / 10.0).ceil() as u32;
    let cfg = TrngConfig::ideal().with_design(trng_model::params::DesignParams {
        n_a: n_a.max(1),
        ..trng_model::params::DesignParams::paper_k1()
    });
    let mut carry = CarryChainTrng::new(cfg, 8).expect("valid config");
    let carry_bits: BitVec = carry.generate_raw(bits).into_iter().collect();

    let elem_cfg = ElementaryConfig::best_case(t_elem);
    let mut elem = ElementaryTrng::new(elem_cfg, 9).expect("valid config");
    let elem_bits: BitVec = elem.generate(bits).into_iter().collect();

    println!(
        "  carry-chain @ tA = {:>9}: H(bias) = {:.4}, H(markov) = {:.4}",
        format!("{t_carry}"),
        shannon_bias_entropy(&carry_bits),
        markov_min_entropy(&carry_bits)
    );
    println!(
        "  elementary  @ tA = {:>9}: H(bias) = {:.4}, H(markov) = {:.4}",
        format!("{t_elem}"),
        shannon_bias_entropy(&elem_bits),
        markov_min_entropy(&elem_bits)
    );
    println!(
        "  equal quality at a {:.0}x accumulation-time gap -> {:.0}x raw throughput gain.",
        t_elem / t_carry,
        t_elem / t_carry
    );

    // And the converse: the elementary TRNG at the carry-chain's tA is
    // badly broken.
    let mut fast_elem =
        ElementaryTrng::new(ElementaryConfig::best_case(t_carry), 10).expect("valid config");
    let fast_bits: BitVec = fast_elem.generate(bits).into_iter().collect();
    println!(
        "  elementary  @ tA = {:>9}: H(markov) = {:.4}  (broken, as expected)",
        format!("{t_carry}"),
        markov_min_entropy(&fast_bits)
    );
}
