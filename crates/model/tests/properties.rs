//! Property-based tests of the stochastic model's mathematical
//! invariants.
//!
//! Runs under the hermetic `trng-testkit` harness: each property
//! executes `TRNG_PROP_CASES` (default 64) independently seeded cases
//! and reports the failing seed for replay via `TRNG_PROP_SEED`.

use trng_model::binary_prob::{p1, tau_from_offset};
use trng_model::design_space::evaluate;
use trng_model::entropy::{entropy_lower_bound, h_min, h_shannon};
use trng_model::gauss::{erf, erfc, normal_cdf, normal_mass};
use trng_model::jitter::{accumulation_time_for_sigma, sigma_acc};
use trng_model::params::{DesignParams, PlatformParams};
use trng_model::postprocess::{bias, entropy_after_xor, xor_bias};
use trng_testkit::prng::Rng;
use trng_testkit::prop::pick;
use trng_testkit::props;

props! {
    fn erf_is_odd_and_bounded(rng) {
        let x = rng.gen_range(-6.0..6.0f64);
        assert!((erf(x) + erf(-x)).abs() < 1e-14);
        assert!(erf(x).abs() <= 1.0);
    }

    fn erf_erfc_complement(rng) {
        let x = rng.gen_range(-6.0..6.0f64);
        assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    fn normal_cdf_is_monotone(rng) {
        let a = rng.gen_range(-8.0..8.0f64);
        let d = rng.gen_range(0.0..4.0f64);
        assert!(normal_cdf(a + d) >= normal_cdf(a) - 1e-15);
    }

    fn normal_mass_is_additive(rng) {
        let mu = rng.gen_range(-5.0..5.0f64);
        let sigma = rng.gen_range(0.01..5.0f64);
        let a = rng.gen_range(-10.0..0.0f64);
        let mid = rng.gen_range(0.0..5.0f64);
        let rest = rng.gen_range(0.0..5.0f64);
        let b = a + mid;
        let c = b + rest;
        let whole = normal_mass(mu, sigma, a, c);
        let parts = normal_mass(mu, sigma, a, b) + normal_mass(mu, sigma, b, c);
        assert!((whole - parts).abs() < 1e-12);
    }

    fn tau_is_periodic_and_in_range(rng) {
        let off = rng.gen_range(-1e5..1e5f64);
        let t = rng.gen_range(0.5..100.0f64);
        let tau = tau_from_offset(off, t);
        assert!(tau >= -t / 2.0 - 1e-9 && tau < t / 2.0 + 1e-9);
        let tau2 = tau_from_offset(off + 3.0 * t, t);
        assert!((tau - tau2).abs() < 1e-6 * t.max(1.0));
    }

    fn p1_is_a_probability(rng) {
        let tau = rng.gen_range(-50.0..50.0f64);
        let sigma = rng.gen_range(0.0..100.0f64);
        let t = rng.gen_range(1.0..80.0f64);
        let p = p1(tau, sigma, t);
        assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }

    fn p1_shifted_by_one_bin_complements(rng) {
        let tau = rng.gen_range(-20.0..20.0f64);
        let sigma = rng.gen_range(0.5..60.0f64);
        let t = rng.gen_range(2.0..40.0f64);
        let a = p1(tau, sigma, t);
        let b = p1(tau + t, sigma, t);
        assert!((a + b - 1.0).abs() < 1e-9, "{} + {}", a, b);
    }

    fn p1_symmetric_in_tau(rng) {
        let tau = rng.gen_range(0.0..30.0f64);
        let sigma = rng.gen_range(0.5..50.0f64);
        let t = rng.gen_range(2.0..40.0f64);
        assert!((p1(tau, sigma, t) - p1(-tau, sigma, t)).abs() < 1e-10);
    }

    fn shannon_entropy_bounds_and_symmetry(rng) {
        let p = rng.gen_range(0.0..=1.0f64);
        let h = h_shannon(p);
        assert!((0.0..=1.0).contains(&h));
        assert!((h - h_shannon(1.0 - p)).abs() < 1e-12);
    }

    fn min_entropy_never_exceeds_shannon(rng) {
        let p = rng.gen_range(0.0001..0.9999f64);
        assert!(h_min(p) <= h_shannon(p) + 1e-12);
    }

    fn entropy_lower_bound_monotone_in_sigma(rng) {
        let sigma = rng.gen_range(0.1..40.0f64);
        let extra = rng.gen_range(0.0..10.0f64);
        let t = rng.gen_range(5.0..40.0f64);
        assert!(
            entropy_lower_bound(sigma + extra, t) >= entropy_lower_bound(sigma, t) - 1e-9
        );
        let _ = t;
    }

    fn xor_bias_never_amplifies(rng) {
        let b = rng.gen_range(0.0..=0.5f64);
        let np = rng.gen_range(1u32..20);
        assert!(xor_bias(b, np) <= b + 1e-15);
        // And is monotone in np.
        if np > 1 {
            assert!(xor_bias(b, np) <= xor_bias(b, np - 1) + 1e-15);
        }
    }

    fn entropy_after_xor_only_improves(rng) {
        let b = rng.gen_range(0.0..0.5f64);
        let np = rng.gen_range(1u32..16);
        let before = h_shannon(0.5 + b);
        assert!(entropy_after_xor(b, np) >= before - 1e-12);
    }

    fn bias_is_consistent_with_probability(rng) {
        let p = rng.gen_range(0.0..=1.0f64);
        let b = bias(p);
        assert!((0.0..=0.5).contains(&b));
        assert!((h_shannon(0.5 + b) - h_shannon(p)).abs() < 1e-12);
    }

    fn sigma_acc_inversion_roundtrip(rng) {
        let sigma_lut = rng.gen_range(0.5..10.0f64);
        let d0 = rng.gen_range(100.0..1000.0f64);
        let target = rng.gen_range(0.1..100.0f64);
        let t = accumulation_time_for_sigma(target, sigma_lut, d0);
        assert!((sigma_acc(sigma_lut, t, d0) - target).abs() < 1e-9);
    }

    fn evaluate_postprocessing_never_hurts(rng) {
        let n_a = rng.gen_range(1u32..60);
        let k = pick(rng, &[1u32, 2, 4]);
        let np = rng.gen_range(1u32..12);
        let platform = PlatformParams::spartan6();
        let design = DesignParams { n_a, k, np, ..DesignParams::paper_k1() };
        let point = evaluate(&platform, &design).unwrap();
        assert!(point.h_pp >= point.h_raw - 1e-12);
        assert!(point.bias_pp <= point.bias_raw + 1e-15);
        assert!(point.h_min_raw <= point.h_raw + 1e-12);
        assert!(point.output_throughput_bps <= point.raw_throughput_bps);
    }
}
