//! Property-based tests of the stochastic model's mathematical
//! invariants.

use proptest::prelude::*;
use trng_model::binary_prob::{p1, tau_from_offset};
use trng_model::design_space::evaluate;
use trng_model::entropy::{entropy_lower_bound, h_min, h_shannon};
use trng_model::gauss::{erf, erfc, normal_cdf, normal_mass};
use trng_model::jitter::{accumulation_time_for_sigma, sigma_acc};
use trng_model::params::{DesignParams, PlatformParams};
use trng_model::postprocess::{bias, entropy_after_xor, xor_bias};

proptest! {
    #[test]
    fn erf_is_odd_and_bounded(x in -6.0..6.0f64) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-14);
        prop_assert!(erf(x).abs() <= 1.0);
    }

    #[test]
    fn erf_erfc_complement(x in -6.0..6.0f64) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn normal_cdf_is_monotone(a in -8.0..8.0f64, d in 0.0..4.0f64) {
        prop_assert!(normal_cdf(a + d) >= normal_cdf(a) - 1e-15);
    }

    #[test]
    fn normal_mass_is_additive(
        mu in -5.0..5.0f64,
        sigma in 0.01..5.0f64,
        a in -10.0..0.0f64,
        mid in 0.0..5.0f64,
        rest in 0.0..5.0f64,
    ) {
        let b = a + mid;
        let c = b + rest;
        let whole = normal_mass(mu, sigma, a, c);
        let parts = normal_mass(mu, sigma, a, b) + normal_mass(mu, sigma, b, c);
        prop_assert!((whole - parts).abs() < 1e-12);
    }

    #[test]
    fn tau_is_periodic_and_in_range(off in -1e5..1e5f64, t in 0.5..100.0f64) {
        let tau = tau_from_offset(off, t);
        prop_assert!(tau >= -t / 2.0 - 1e-9 && tau < t / 2.0 + 1e-9);
        let tau2 = tau_from_offset(off + 3.0 * t, t);
        prop_assert!((tau - tau2).abs() < 1e-6 * t.max(1.0));
    }

    #[test]
    fn p1_is_a_probability(
        tau in -50.0..50.0f64,
        sigma in 0.0..100.0f64,
        t in 1.0..80.0f64,
    ) {
        let p = p1(tau, sigma, t);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }

    #[test]
    fn p1_shifted_by_one_bin_complements(
        tau in -20.0..20.0f64,
        sigma in 0.5..60.0f64,
        t in 2.0..40.0f64,
    ) {
        let a = p1(tau, sigma, t);
        let b = p1(tau + t, sigma, t);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{} + {}", a, b);
    }

    #[test]
    fn p1_symmetric_in_tau(tau in 0.0..30.0f64, sigma in 0.5..50.0f64, t in 2.0..40.0f64) {
        prop_assert!((p1(tau, sigma, t) - p1(-tau, sigma, t)).abs() < 1e-10);
    }

    #[test]
    fn shannon_entropy_bounds_and_symmetry(p in 0.0..=1.0f64) {
        let h = h_shannon(p);
        prop_assert!((0.0..=1.0).contains(&h));
        prop_assert!((h - h_shannon(1.0 - p)).abs() < 1e-12);
    }

    #[test]
    fn min_entropy_never_exceeds_shannon(p in 0.0001..0.9999f64) {
        prop_assert!(h_min(p) <= h_shannon(p) + 1e-12);
    }

    #[test]
    fn entropy_lower_bound_monotone_in_sigma(
        sigma in 0.1..40.0f64,
        extra in 0.0..10.0f64,
        t in 5.0..40.0f64,
    ) {
        prop_assert!(
            entropy_lower_bound(sigma + extra, t) >= entropy_lower_bound(sigma, t) - 1e-9
        );
    }

    #[test]
    fn xor_bias_never_amplifies(b in 0.0..=0.5f64, np in 1u32..20) {
        prop_assert!(xor_bias(b, np) <= b + 1e-15);
        // And is monotone in np.
        if np > 1 {
            prop_assert!(xor_bias(b, np) <= xor_bias(b, np - 1) + 1e-15);
        }
    }

    #[test]
    fn entropy_after_xor_only_improves(b in 0.0..0.5f64, np in 1u32..16) {
        let before = h_shannon(0.5 + b);
        prop_assert!(entropy_after_xor(b, np) >= before - 1e-12);
    }

    #[test]
    fn bias_is_consistent_with_probability(p in 0.0..=1.0f64) {
        let b = bias(p);
        prop_assert!((0.0..=0.5).contains(&b));
        prop_assert!((h_shannon(0.5 + b) - h_shannon(p)).abs() < 1e-12);
    }

    #[test]
    fn sigma_acc_inversion_roundtrip(
        sigma_lut in 0.5..10.0f64,
        d0 in 100.0..1000.0f64,
        target in 0.1..100.0f64,
    ) {
        let t = accumulation_time_for_sigma(target, sigma_lut, d0);
        prop_assert!((sigma_acc(sigma_lut, t, d0) - target).abs() < 1e-9);
    }

    #[test]
    fn evaluate_postprocessing_never_hurts(n_a in 1u32..60, k in prop_oneof![Just(1u32), Just(2), Just(4)], np in 1u32..12) {
        let platform = PlatformParams::spartan6();
        let design = DesignParams { n_a, k, np, ..DesignParams::paper_k1() };
        let point = evaluate(&platform, &design).unwrap();
        prop_assert!(point.h_pp >= point.h_raw - 1e-12);
        prop_assert!(point.bias_pp <= point.bias_raw + 1e-15);
        prop_assert!(point.h_min_raw <= point.h_raw + 1e-12);
        prop_assert!(point.output_throughput_bps <= point.raw_throughput_bps);
    }
}
