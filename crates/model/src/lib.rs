//! Stochastic model of the carry-chain entropy-extraction TRNG.
//!
//! Implements Section 4 of *"Highly Efficient Entropy Extraction for
//! True Random Number Generators on FPGAs"* (Rozic, Yang, Dehaene,
//! Verbauwhede — DAC 2015): the formal security evaluation that turns
//! measured platform parameters and chosen design parameters into a
//! lower bound on entropy per bit.
//!
//! | Paper element | Module |
//! |---------------|--------|
//! | eq (1) jitter accumulation `σ_acc(tA)` | [`jitter`] |
//! | eq (2)–(3) binary probability `P1(τ)` | [`binary_prob`] |
//! | eq (4) Gaussian CDF Φ | [`gauss`] |
//! | eq (5) Shannon entropy, Figure 7, lower bound at τ = 0 | [`entropy`] |
//! | eq (6)–(7) XOR post-processing bias | [`postprocess`] |
//! | Section 4.4 platform/design parameters | [`params`] |
//! | Section 4.4/5.2/5.3 design exploration, eq (8) | [`design_space`] |
//!
//! # Example: the paper's headline design point
//!
//! ```
//! use trng_model::design_space::evaluate;
//! use trng_model::params::{DesignParams, PlatformParams};
//!
//! // Spartan-6 platform parameters (Section 5.1) and the fastest
//! // configuration (k = 1, tA = 10 ns, np = 7).
//! let point = evaluate(&PlatformParams::spartan6(), &DesignParams::paper_k1())?;
//! assert!(point.h_raw > 0.98);                       // Table 1: 0.99
//! assert!(point.h_pp > 0.999);                       // Table 1: 0.999
//! assert!((point.output_throughput_bps / 1e6 - 14.3).abs() < 0.1);
//! # Ok::<(), trng_model::params::ParamError>(())
//! ```
//!
//! The crate deliberately has no dependency on the simulator, so the
//! model can be checked against theory and against simulation
//! independently.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binary_prob;
pub mod design_space;
pub mod entropy;
pub mod gauss;
pub mod jitter;
pub mod params;
pub mod postprocess;
pub mod report;
pub mod sensitivity;

pub use binary_prob::{p0, p1, tau_from_offset, worst_case_bias};
pub use design_space::{
    compare_with_elementary, evaluate, improvement_factor, np_for_bias, sweep_accumulation,
    DesignPoint, ElementaryComparison,
};
pub use entropy::{entropy_at_tau, entropy_curve, entropy_lower_bound, h_min, h_shannon};
pub use jitter::{accumulation_time_for_sigma, sigma_acc};
pub use params::{DesignParams, ParamError, PlatformParams};
pub use postprocess::{bias, entropy_after_xor, required_compression, xor_bias};
pub use report::{evaluation_report, EvaluationReport};
pub use sensitivity::{accumulation_margin_factor, sigma_sensitivity, SensitivityPoint};
