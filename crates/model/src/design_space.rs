//! Design-space exploration — Sections 4.4, 5.2, 5.3.
//!
//! Combines the model pieces into the designer-facing workflow of
//! Figure 1: given measured [`PlatformParams`] and candidate
//! [`DesignParams`], compute the entropy lower bound, required
//! post-processing and resulting throughput; sweep accumulation times;
//! and compare against the *elementary* TRNG (a free-running oscillator
//! sampled directly by the system clock), yielding the paper's
//! equation (8) improvement factors — 797× for `k = 1` and 49.8× for
//! `k = 4`.

use crate::binary_prob::p1;
use crate::entropy::{h_min, h_shannon, sigma_ratio_for_entropy};
use crate::jitter::{accumulation_time_for_sigma, sigma_acc};
use crate::params::{DesignParams, ParamError, PlatformParams};
use crate::postprocess::{bias, required_compression, xor_bias};

/// Model evaluation of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The evaluated design.
    pub design: DesignParams,
    /// Accumulated jitter sigma at `tA` (equation (1)), ps.
    pub sigma_acc_ps: f64,
    /// Worst-case `P1` (at τ = 0, equation (3)).
    pub p1_worst: f64,
    /// Shannon-entropy lower bound of a raw bit (equation (5)).
    pub h_raw: f64,
    /// Min-entropy lower bound of a raw bit.
    pub h_min_raw: f64,
    /// Worst-case raw bias (equation (6)).
    pub bias_raw: f64,
    /// Bias after XOR post-processing with the design's `np`
    /// (equation (7)).
    pub bias_pp: f64,
    /// Shannon entropy after post-processing.
    pub h_pp: f64,
    /// Raw throughput `f_CLK / N_A`, bits/s.
    pub raw_throughput_bps: f64,
    /// Output throughput `f_CLK / (N_A · np)`, bits/s.
    pub output_throughput_bps: f64,
}

/// Evaluates the stochastic model at one design point.
///
/// This is the "Matlab function" of Section 4.4: platform and design
/// parameters in, entropy lower bound out.
///
/// # Errors
///
/// Returns the design-validation error if the design is inconsistent
/// with the platform.
///
/// # Examples
///
/// ```
/// use trng_model::design_space::evaluate;
/// use trng_model::params::{DesignParams, PlatformParams};
///
/// let point = evaluate(&PlatformParams::spartan6(), &DesignParams::paper_k1())?;
/// assert!(point.h_raw > 0.98);           // Table 1: H_RAW = 0.99
/// assert!(point.h_pp > 0.999);           // Table 1: H_NEW = 0.999
/// # Ok::<(), trng_model::params::ParamError>(())
/// ```
pub fn evaluate(
    platform: &PlatformParams,
    design: &DesignParams,
) -> Result<DesignPoint, ParamError> {
    design.validate(platform)?;
    let sigma = sigma_acc(platform.sigma_lut_ps, design.t_a_ps(), platform.d0_lut_ps);
    let tstep_eff = design.effective_tstep_ps(platform);
    let p1_worst = p1(0.0, sigma, tstep_eff);
    let b_raw = bias(p1_worst);
    let b_pp = xor_bias(b_raw, design.np);
    Ok(DesignPoint {
        design: *design,
        sigma_acc_ps: sigma,
        p1_worst,
        h_raw: h_shannon(p1_worst),
        h_min_raw: h_min(p1_worst),
        bias_raw: b_raw,
        bias_pp: b_pp,
        h_pp: h_shannon(0.5 + b_pp),
        raw_throughput_bps: design.raw_throughput_bps(),
        output_throughput_bps: design.output_throughput_bps(),
    })
}

/// Evaluates a design for every accumulation-period count in
/// `n_a_values`, keeping the other parameters fixed.
///
/// # Errors
///
/// Propagates the first validation error.
pub fn sweep_accumulation(
    platform: &PlatformParams,
    base: &DesignParams,
    n_a_values: &[u32],
) -> Result<Vec<DesignPoint>, ParamError> {
    n_a_values
        .iter()
        .map(|&n_a| evaluate(platform, &DesignParams { n_a, ..*base }))
        .collect()
}

/// The smallest post-processing rate whose *model* bias meets
/// `target_bias`, for the given design (ignoring its own `np`).
///
/// `None` if `max_np` is insufficient (e.g. the k = 4, tA = 10 ns row
/// of Table 1, reported as "> 16").
///
/// # Errors
///
/// Propagates design-validation errors.
pub fn np_for_bias(
    platform: &PlatformParams,
    design: &DesignParams,
    target_bias: f64,
    max_np: u32,
) -> Result<Option<u32>, ParamError> {
    let point = evaluate(platform, design)?;
    Ok(required_compression(point.bias_raw, target_bias, max_np))
}

/// Equation (8): throughput-improvement factor of carry-chain
/// extraction over the elementary TRNG, `(d0 / (k·tstep))²`.
///
/// The elementary TRNG samples the oscillator with timing precision
/// equal to the oscillator half-period; in the best case (single-LUT
/// ring) that is `d0_LUT`. Throughput scales with the square of
/// sampling precision, hence the ratio squared.
///
/// # Examples
///
/// ```
/// use trng_model::design_space::improvement_factor;
/// use trng_model::params::PlatformParams;
///
/// let p = PlatformParams::spartan6();
/// assert!((improvement_factor(&p, 1) - 797.0).abs() < 1.0);  // paper: 797
/// assert!((improvement_factor(&p, 4) - 49.8).abs() < 0.1);   // paper: 49.8
/// ```
pub fn improvement_factor(platform: &PlatformParams, k: u32) -> f64 {
    let tstep_eff = f64::from(k) * platform.tstep_ps;
    (platform.d0_lut_ps / tstep_eff).powi(2)
}

/// Accumulation time (ps) needed to reach worst-case Shannon entropy
/// `h_target` when sampling with bin width `tstep_eff_ps`.
///
/// Inverts the model: entropy → required `σ_acc/tstep` ratio →
/// equation (1) inverted for `tA`. Used for the elementary-TRNG
/// comparison (same jitter accumulation, `tstep = d0`).
///
/// # Panics
///
/// Panics if `h_target` is not in `(0, 1)` (see
/// [`sigma_ratio_for_entropy`]) or `tstep_eff_ps` is not positive.
pub fn accumulation_time_for_entropy(
    platform: &PlatformParams,
    tstep_eff_ps: f64,
    h_target: f64,
) -> f64 {
    assert!(
        tstep_eff_ps > 0.0,
        "tstep must be positive, got {tstep_eff_ps}"
    );
    let ratio = sigma_ratio_for_entropy(h_target);
    let sigma_target = ratio * tstep_eff_ps;
    accumulation_time_for_sigma(sigma_target, platform.sigma_lut_ps, platform.d0_lut_ps)
}

/// Side-by-side accumulation-time comparison with the elementary TRNG
/// at equal entropy (Section 5.3's "3 orders of magnitude" claim).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElementaryComparison {
    /// Entropy target used for the comparison.
    pub h_target: f64,
    /// Required `tA` for the carry-chain TRNG (ps).
    pub t_a_carry_ps: f64,
    /// Required `tA` for the elementary TRNG (ps).
    pub t_a_elementary_ps: f64,
    /// Ratio `t_a_elementary / t_a_carry` (equals equation (8)).
    pub speedup: f64,
}

/// Computes the accumulation-time comparison at entropy `h_target` for
/// down-sampling factor `k`.
///
/// # Panics
///
/// Panics if `h_target` is not in `(0, 1)`.
pub fn compare_with_elementary(
    platform: &PlatformParams,
    k: u32,
    h_target: f64,
) -> ElementaryComparison {
    let tstep_eff = f64::from(k) * platform.tstep_ps;
    let t_carry = accumulation_time_for_entropy(platform, tstep_eff, h_target);
    let t_elem = accumulation_time_for_entropy(platform, platform.d0_lut_ps, h_target);
    ElementaryComparison {
        h_target,
        t_a_carry_ps: t_carry,
        t_a_elementary_ps: t_elem,
        speedup: t_elem / t_carry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_k1_point_matches_table1() {
        let p = PlatformParams::spartan6();
        let point = evaluate(&p, &DesignParams::paper_k1()).expect("valid");
        assert!((point.h_raw - 0.99).abs() < 0.01, "H_RAW {}", point.h_raw);
        assert!(point.h_pp > 0.999, "H_NEW {}", point.h_pp);
        assert!(
            (point.output_throughput_bps / 1e6 - 14.29).abs() < 0.01,
            "throughput {}",
            point.output_throughput_bps
        );
    }

    #[test]
    fn table1_h_raw_column_via_sweep() {
        let p = PlatformParams::spartan6();
        // k = 1 rows: tA = 10, 20 ns.
        let k1 = sweep_accumulation(&p, &DesignParams::paper_k1(), &[1, 2]).expect("valid");
        assert!((k1[0].h_raw - 0.99).abs() < 0.01);
        assert!(k1[1].h_raw > 0.998);
        // k = 4 rows: tA = 10, 50, 100, 200 ns.
        let k4 = sweep_accumulation(&p, &DesignParams::paper_k4(), &[1, 5, 10, 20]).expect("valid");
        assert!(k4[0].h_raw < 0.06, "tA=10ns k=4: {}", k4[0].h_raw);
        assert!(
            (k4[1].h_raw - 0.70).abs() < 0.05,
            "tA=50ns: {}",
            k4[1].h_raw
        );
        assert!(
            (k4[2].h_raw - 0.94).abs() < 0.02,
            "tA=100ns: {}",
            k4[2].h_raw
        );
        assert!(
            (k4[3].h_raw - 0.99).abs() < 0.01,
            "tA=200ns: {}",
            k4[3].h_raw
        );
    }

    #[test]
    fn sweep_is_monotone_in_ta() {
        let p = PlatformParams::spartan6();
        let points =
            sweep_accumulation(&p, &DesignParams::paper_k4(), &[1, 2, 5, 10, 20, 50]).expect("ok");
        for w in points.windows(2) {
            assert!(w[1].h_raw >= w[0].h_raw - 1e-12);
            assert!(w[1].sigma_acc_ps > w[0].sigma_acc_ps);
            assert!(w[1].raw_throughput_bps < w[0].raw_throughput_bps);
        }
    }

    #[test]
    fn np_for_bias_matches_required_compression_order() {
        let p = PlatformParams::spartan6();
        // Lower-entropy configurations need more compression.
        let np_50 = np_for_bias(&p, &DesignParams::paper_k4(), 1e-4, 32)
            .expect("valid")
            .expect("reachable");
        let d200 = DesignParams {
            n_a: 20,
            ..DesignParams::paper_k4()
        };
        let np_200 = np_for_bias(&p, &d200, 1e-4, 32)
            .expect("valid")
            .expect("reachable");
        assert!(np_50 > np_200, "np(50ns)={np_50} np(200ns)={np_200}");
    }

    #[test]
    fn k4_ta10_is_hopeless_like_table1() {
        // Table 1 reports n_NIST > 16 for k=4, tA=10ns. The model bias
        // is so large that even np=16 leaves visible bias.
        let p = PlatformParams::spartan6();
        let d = DesignParams {
            n_a: 1,
            ..DesignParams::paper_k4()
        };
        let np = np_for_bias(&p, &d, 1e-4, 16).expect("valid");
        assert_eq!(np, None);
    }

    #[test]
    fn improvement_factors_match_equation_8() {
        let p = PlatformParams::spartan6();
        let f1 = improvement_factor(&p, 1);
        assert!((f1 - (480.0f64 / 17.0).powi(2)).abs() < 1e-9);
        assert!((f1 - 797.2).abs() < 0.5);
        let f4 = improvement_factor(&p, 4);
        assert!((f4 - 49.8).abs() < 0.1);
    }

    #[test]
    fn elementary_comparison_reproduces_three_orders_of_magnitude() {
        let p = PlatformParams::spartan6();
        let cmp = compare_with_elementary(&p, 1, 0.99);
        // The speedup equals eq (8) exactly (both times scale the same way).
        assert!((cmp.speedup - improvement_factor(&p, 1)).abs() < 1.0);
        // tA for the carry-chain version at H = 0.99 is ~10 ns ...
        assert!((cmp.t_a_carry_ps - 10_000.0).abs() < 1_500.0);
        // ... and ~8 us for the elementary TRNG: 3 orders of magnitude.
        assert!(cmp.t_a_elementary_ps > 5e6 && cmp.t_a_elementary_ps < 12e6);
    }

    #[test]
    fn accumulation_time_inversion_round_trips() {
        let p = PlatformParams::spartan6();
        for h in [0.7, 0.9, 0.99] {
            let ta = accumulation_time_for_entropy(&p, 17.0, h);
            let sigma = sigma_acc(p.sigma_lut_ps, ta, p.d0_lut_ps);
            let back = crate::entropy::entropy_lower_bound(sigma, 17.0);
            assert!((back - h).abs() < 1e-6, "h {h} -> {back}");
        }
    }

    #[test]
    fn invalid_design_propagates_error() {
        let p = PlatformParams::spartan6();
        let bad = DesignParams {
            m: 28,
            ..DesignParams::paper_k1()
        };
        assert!(evaluate(&p, &bad).is_err());
        assert!(sweep_accumulation(&p, &bad, &[1]).is_err());
        assert!(np_for_bias(&p, &bad, 1e-4, 8).is_err());
    }
}
