//! Gaussian special functions: `erf`, `erfc`, normal PDF and CDF.
//!
//! Equation (4) of the paper defines Φ, the standard-normal CDF, which
//! equations (3) and (5) consume. No external math crate is on the
//! approved dependency list, so the functions are implemented from
//! scratch:
//!
//! * `erf` for small arguments uses the cancellation-free series
//!   `erf(x) = (2/√π)·e^{−x²}·Σ_{n≥0} 2ⁿ x^{2n+1} / (1·3·…·(2n+1))`
//!   (all terms positive, full double precision);
//! * `erfc` for large arguments uses the continued fraction
//!   `erfc(x) = e^{−x²}/(x√π) · 1/(1 + ½/(x² + 1/(1 + ³⁄₂/(x² + …))))`
//!   evaluated with the modified Lentz algorithm.
//!
//! Accuracy is verified against published 15-digit reference values in
//! the unit tests.

use core::f64::consts::{FRAC_2_SQRT_PI, SQRT_2};

/// Crossover point between the series and the continued fraction.
const ERF_SERIES_LIMIT: f64 = 2.0;

/// The error function `erf(x)`.
///
/// # Examples
///
/// ```
/// use trng_model::gauss::erf;
/// assert!((erf(1.0) - 0.842700792949715).abs() < 1e-14);
/// assert_eq!(erf(0.0), 0.0);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return -erf(-x);
    }
    if x <= ERF_SERIES_LIMIT {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Stays accurate in the deep tail where `1 − erf(x)` would underflow:
/// `erfc(8) ≈ 1.12e-29` is returned with full relative precision.
///
/// # Examples
///
/// ```
/// use trng_model::gauss::erfc;
/// assert!((erfc(2.0) - 0.004677734981047266).abs() < 1e-15);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= ERF_SERIES_LIMIT {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Cancellation-free power series, valid for `0 <= x <~ 3`.
fn erf_series(x: f64) -> f64 {
    // erf(x) = (2/sqrt(pi)) * exp(-x^2) * sum_{n>=0} (2x^2)^n * x / (2n+1)!!
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= 2.0 * x2 / (2.0 * f64::from(n) + 1.0);
        let new_sum = sum + term;
        if new_sum == sum || n > 200 {
            break;
        }
        sum = new_sum;
    }
    FRAC_2_SQRT_PI * (-x2).exp() * sum
}

/// Continued fraction for `erfc`, valid for `x >~ 1.5` (modified Lentz).
///
/// Evaluates the J-fraction
/// `CF(x) = x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …))))`
/// with `erfc(x) = e^{−x²}/√π · 1/CF(x)`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-16;
    // Modified Lentz with b0 = x, a_k = k/2, b_k = x.
    let mut f = x;
    let mut c = f;
    let mut d = 0.0f64;
    for k in 1..=500u32 {
        let a = f64::from(k) / 2.0;
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        d = 1.0 / d;
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x * x).exp() / core::f64::consts::PI.sqrt() / f
}

/// Standard-normal probability density `φ(x)`.
///
/// # Examples
///
/// ```
/// use trng_model::gauss::normal_pdf;
/// assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * core::f64::consts::PI).sqrt()
}

/// Standard-normal cumulative distribution `Φ(x)` — equation (4).
///
/// # Examples
///
/// ```
/// use trng_model::gauss::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Upper-tail probability `Q(x) = 1 − Φ(x)`, accurate in the tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / SQRT_2)
}

/// Probability mass of a `N(mu, sigma²)` variate inside `[a, b]`.
///
/// Degenerates gracefully: for `sigma == 0` it is the indicator of
/// `mu ∈ [a, b]`.
///
/// # Panics
///
/// Panics if `a > b` or `sigma < 0`.
pub fn normal_mass(mu: f64, sigma: f64, a: f64, b: f64) -> f64 {
    assert!(a <= b, "interval must be ordered, got [{a}, {b}]");
    assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
    if sigma == 0.0 {
        return f64::from((a..=b).contains(&mu));
    }
    // Work in the tail-stable form on whichever side is relevant.
    let za = (a - mu) / sigma;
    let zb = (b - mu) / sigma;
    if za >= 0.0 {
        // Both bounds right of the mean: difference of survival fns.
        normal_sf(za) - normal_sf(zb)
    } else if zb <= 0.0 {
        normal_cdf(zb) - normal_cdf(za)
    } else {
        1.0 - normal_sf(zb) - normal_cdf(za)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const ERF_REFS: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in ERF_REFS {
            let got = erf(x);
            assert!((got - want).abs() < 1e-14, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-14, "odd symmetry at {x}");
        }
    }

    #[test]
    fn erfc_deep_tail_has_relative_precision() {
        // erfc(5) = 1.5374597944280348e-12 (mpmath)
        let got = erfc(5.0);
        let want = 1.5374597944280348e-12;
        assert!((got / want - 1.0).abs() < 1e-12, "erfc(5) = {got}");
        // erfc(8) = 1.1224297172982928e-29
        let got = erfc(8.0);
        let want = 1.1224297172982928e-29;
        assert!((got / want - 1.0).abs() < 1e-11, "erfc(8) = {got}");
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for x in [-3.0, -1.0, -0.3, 0.0, 0.7, 1.9, 2.1, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "at {x}");
        }
    }

    #[test]
    fn erf_is_continuous_at_the_crossover() {
        let below = erf(ERF_SERIES_LIMIT - 1e-12);
        let above = erf(ERF_SERIES_LIMIT + 1e-12);
        assert!((below - above).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        // Classical quantiles.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-14);
        assert!((normal_cdf(-1.0) - 0.15865525393145705).abs() < 1e-14);
        assert!((normal_cdf(1.6448536269514722) - 0.95).abs() < 1e-12);
        assert!((normal_cdf(2.326347874040841) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn normal_sf_is_tail_stable() {
        let x = 10.0;
        // Q(10) = 7.619853024160526e-24
        let got = normal_sf(x);
        let want = 7.619853024160526e-24;
        assert!((got / want - 1.0).abs() < 1e-10, "Q(10) = {got}");
        assert!((normal_cdf(x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn pdf_integrates_to_cdf_numerically() {
        // Trapezoid integral of the pdf from -8 to 1 ~ Phi(1)
        // (tail mass below -8 is ~6e-16, negligible).
        let n = 200_000;
        let a = -8.0;
        let b = 1.0;
        let h = (b - a) / n as f64;
        let mut acc = 0.5 * (normal_pdf(a) + normal_pdf(b));
        for i in 1..n {
            acc += normal_pdf(a + h * i as f64);
        }
        let integral = acc * h;
        assert!((integral - normal_cdf(1.0)).abs() < 1e-9);
    }

    #[test]
    fn normal_mass_basics() {
        // Central 1-sigma mass.
        let m = normal_mass(0.0, 1.0, -1.0, 1.0);
        assert!((m - 0.6826894921370859).abs() < 1e-13);
        // Shifted and scaled.
        let m = normal_mass(5.0, 2.0, 3.0, 7.0);
        assert!((m - 0.6826894921370859).abs() < 1e-13);
        // Far tail interval, right side.
        let m = normal_mass(0.0, 1.0, 8.0, 9.0);
        assert!(m > 0.0 && m < 1e-14);
        // Degenerate sigma.
        assert_eq!(normal_mass(0.5, 0.0, 0.0, 1.0), 1.0);
        assert_eq!(normal_mass(2.0, 0.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn normal_mass_spanning_interval() {
        let m = normal_mass(0.0, 1.0, -0.5, 2.0);
        let want = normal_cdf(2.0) - normal_cdf(-0.5);
        assert!((m - want).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "interval must be ordered")]
    fn normal_mass_rejects_reversed_interval() {
        let _ = normal_mass(0.0, 1.0, 1.0, 0.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }
}
