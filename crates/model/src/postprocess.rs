//! XOR post-processing — equations (6) and (7).
//!
//! Post-processing compresses `np` consecutive raw bits into one output
//! bit by XOR, trading throughput (÷ np) for entropy. With raw bias
//!
//! ```text
//! b = max(P1, P0) − 0.5                                (6)
//! ```
//!
//! the bias of the XOR of `np` independent bits is (piling-up lemma)
//!
//! ```text
//! b_pp = 2^(np−1) · b^np                               (7)
//! ```
//!
//! from which the post-processed entropy follows via equation (5).

use crate::entropy::h_shannon;

/// Bias of a bit with `P(1) = p` — equation (6).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use trng_model::postprocess::bias;
/// assert_eq!(bias(0.5), 0.0);
/// assert!((bias(0.6) - 0.1).abs() < 1e-15);
/// assert!((bias(0.3) - 0.2).abs() < 1e-15);
/// ```
pub fn bias(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
    p.max(1.0 - p) - 0.5
}

/// Bias after XOR-compressing `np` independent bits of bias `b` —
/// equation (7).
///
/// # Panics
///
/// Panics if `b` is outside `[0, 0.5]` or `np == 0`.
///
/// # Examples
///
/// ```
/// use trng_model::postprocess::xor_bias;
/// // Two coin flips of bias 0.1 XOR to bias 0.02.
/// assert!((xor_bias(0.1, 2) - 0.02).abs() < 1e-15);
/// // np = 1 is the identity.
/// assert_eq!(xor_bias(0.1, 1), 0.1);
/// ```
pub fn xor_bias(b: f64, np: u32) -> f64 {
    assert!(
        (0.0..=0.5).contains(&b),
        "bias must be in [0, 0.5], got {b}"
    );
    assert!(np >= 1, "compression rate must be at least 1");
    2f64.powi(np as i32 - 1) * b.powi(np as i32)
}

/// Shannon entropy per bit after XOR post-processing with rate `np`,
/// starting from raw bias `b` (equations (6), (7), (5) chained).
///
/// # Panics
///
/// Panics under the same conditions as [`xor_bias`].
pub fn entropy_after_xor(b: f64, np: u32) -> f64 {
    h_shannon(0.5 + xor_bias(b, np))
}

/// The smallest compression rate `np` whose post-processed bias is at
/// most `target_bias`, or `None` if even `max_np` is insufficient.
///
/// # Panics
///
/// Panics if `b` is outside `[0, 0.5]` or `target_bias` is negative.
///
/// # Examples
///
/// ```
/// use trng_model::postprocess::required_compression;
/// // A heavily biased source needs more compression.
/// let weak = required_compression(0.3, 1e-4, 32).expect("reachable");
/// let strong = required_compression(0.05, 1e-4, 32).expect("reachable");
/// assert!(weak > strong);
/// ```
pub fn required_compression(b: f64, target_bias: f64, max_np: u32) -> Option<u32> {
    assert!(
        (0.0..=0.5).contains(&b),
        "bias must be in [0, 0.5], got {b}"
    );
    assert!(
        target_bias >= 0.0,
        "target bias must be non-negative, got {target_bias}"
    );
    (1..=max_np).find(|&np| xor_bias(b, np) <= target_bias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_is_symmetric() {
        assert_eq!(bias(0.7), bias(0.3));
        assert_eq!(bias(0.0), 0.5);
        assert_eq!(bias(1.0), 0.5);
    }

    #[test]
    fn xor_bias_never_increases() {
        for b in [0.0, 0.05, 0.2, 0.4, 0.5] {
            let mut prev = b;
            for np in 2..10 {
                let next = xor_bias(b, np);
                assert!(next <= prev + 1e-15, "b {b} np {np}: {next} > {prev}");
                prev = next;
            }
        }
    }

    #[test]
    fn fully_biased_source_stays_fully_biased() {
        // b = 0.5 (deterministic source): XOR of constants is constant.
        for np in 1..8 {
            assert!((xor_bias(0.5, np) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn piling_up_matches_direct_computation() {
        // For np = 3 and p = 0.6: P(odd number of ones among 3) can be
        // computed directly.
        let p: f64 = 0.6;
        let q = 1.0 - p;
        // parity-1 prob = 3 p q^2 + p^3
        let p_odd = 3.0 * p * q * q + p * p * p;
        let direct = (p_odd - 0.5f64).abs();
        let formula = xor_bias(bias(p), 3);
        assert!((direct - formula).abs() < 1e-12, "{direct} vs {formula}");
    }

    #[test]
    fn entropy_after_xor_is_monotone_in_np() {
        let b = 0.2;
        let mut prev = 0.0;
        for np in 1..12 {
            let h = entropy_after_xor(b, np);
            assert!(h >= prev - 1e-15, "np {np}");
            prev = h;
        }
        assert!(prev > 0.999999);
    }

    #[test]
    fn required_compression_finds_minimum() {
        let b = 0.2;
        let np = required_compression(b, 1e-3, 64).expect("reachable");
        assert!(xor_bias(b, np) <= 1e-3);
        assert!(xor_bias(b, np - 1) > 1e-3);
    }

    #[test]
    fn required_compression_unreachable_for_deterministic_source() {
        assert_eq!(required_compression(0.5, 1e-3, 64), None);
    }

    #[test]
    fn zero_bias_needs_no_compression() {
        assert_eq!(required_compression(0.0, 1e-6, 64), Some(1));
    }

    #[test]
    fn paper_entropy_after_postprocessing() {
        // Table 1 reports H_NEW = 0.999 for all passing configurations.
        // k=4, tA = 50 ns: H_RAW ~ 0.7 -> bias ~ 0.253; at np = 13 the
        // post-processed entropy must exceed 0.999.
        let sigma = crate::jitter::sigma_acc(2.6, 50_000.0, 480.0);
        let p1 = crate::binary_prob::p1(0.0, sigma, 4.0 * 17.0);
        let b = bias(p1);
        let h = entropy_after_xor(b, 13);
        assert!(h > 0.999, "H after np=13: {h}");
    }

    #[test]
    #[should_panic(expected = "compression rate must be at least 1")]
    fn rejects_zero_np() {
        let _ = xor_bias(0.1, 0);
    }
}
