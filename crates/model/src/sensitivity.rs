//! Sensitivity of the entropy bound to platform-parameter errors.
//!
//! Section 5.1 of the paper warns that jitter measurement "has to be
//! implemented very carefully because this parameter is of critical
//! importance. Historically, there have been many papers that
//! overestimated this parameter" (off-chip probing, too-long
//! measurement windows capturing flicker noise, un-cancelled global
//! noise). This module quantifies the consequence: how far the claimed
//! entropy bound moves when a platform parameter was measured wrong,
//! and how much accumulation-time margin compensates a given
//! measurement uncertainty.

use crate::design_space::evaluate;
use crate::params::{DesignParams, ParamError, PlatformParams};

/// Effect of one parameter perturbation on the entropy bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// Relative perturbation applied (e.g. +0.3 = measured 30 % high).
    pub relative_error: f64,
    /// Entropy bound computed with the *wrong* parameter (what the
    /// designer would claim).
    pub h_claimed: f64,
    /// Entropy bound with the *true* parameter (what the device
    /// delivers).
    pub h_actual: f64,
}

impl SensitivityPoint {
    /// Claimed minus actual: positive = dangerous overclaim.
    pub fn overclaim(&self) -> f64 {
        self.h_claimed - self.h_actual
    }
}

/// Evaluates the entropy consequence of a mismeasured `sigma_LUT`.
///
/// The designer measured `sigma_measured = sigma_true·(1 + err)` and
/// sized the design against it; the device has `sigma_true`.
///
/// # Errors
///
/// Propagates design-validation errors.
pub fn sigma_sensitivity(
    platform_true: &PlatformParams,
    design: &DesignParams,
    relative_error: f64,
) -> Result<SensitivityPoint, ParamError> {
    let sigma_measured = platform_true.sigma_lut_ps * (1.0 + relative_error);
    let wrong = PlatformParams::new(
        platform_true.d0_lut_ps,
        platform_true.tstep_ps,
        sigma_measured.max(1e-6),
    )?;
    let h_claimed = evaluate(&wrong, design)?.h_raw;
    let h_actual = evaluate(platform_true, design)?.h_raw;
    Ok(SensitivityPoint {
        relative_error,
        h_claimed,
        h_actual,
    })
}

/// The accumulation-time safety factor needed to tolerate a worst-case
/// `sigma_LUT` overestimation of `relative_error` while still meeting
/// `h_target`: since `σ_acc ∝ σ_LUT·√tA`, measuring σ high by a factor
/// `(1+e)` under-sizes `tA` by `(1+e)²`.
///
/// # Panics
///
/// Panics if `relative_error <= -1`.
pub fn accumulation_margin_factor(relative_error: f64) -> f64 {
    assert!(
        relative_error > -1.0,
        "relative error must be > -100 %, got {relative_error}"
    );
    (1.0 + relative_error).powi(2)
}

/// Sweeps σ-measurement errors and returns the sensitivity curve.
///
/// # Errors
///
/// Propagates design-validation errors.
pub fn sigma_sensitivity_sweep(
    platform_true: &PlatformParams,
    design: &DesignParams,
    errors: &[f64],
) -> Result<Vec<SensitivityPoint>, ParamError> {
    errors
        .iter()
        .map(|&e| sigma_sensitivity(platform_true, design, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_measurement_has_no_overclaim() {
        let p = sigma_sensitivity(&PlatformParams::spartan6(), &DesignParams::paper_k1(), 0.0)
            .expect("valid");
        assert!(p.overclaim().abs() < 1e-12);
    }

    #[test]
    fn overestimated_sigma_overclaims_entropy() {
        // The historical failure mode: sigma measured 2x high (e.g.
        // flicker noise captured in a long window). The claim barely
        // moves at the paper's operating point (H already ~1) — the
        // danger shows at tighter design points.
        let tight = DesignParams {
            k: 4,
            n_a: 5,
            ..DesignParams::paper_k4()
        };
        let p = sigma_sensitivity(&PlatformParams::spartan6(), &tight, 1.0).expect("valid");
        assert!(
            p.h_claimed > p.h_actual + 0.2,
            "overclaim {}",
            p.overclaim()
        );
        // Claimed looks comfortable, actual is not.
        assert!(p.h_claimed > 0.95, "claimed {}", p.h_claimed);
        assert!(p.h_actual < 0.75, "actual {}", p.h_actual);
    }

    #[test]
    fn underestimated_sigma_is_conservative() {
        let tight = DesignParams {
            k: 4,
            n_a: 5,
            ..DesignParams::paper_k4()
        };
        let p = sigma_sensitivity(&PlatformParams::spartan6(), &tight, -0.3).expect("valid");
        assert!(p.overclaim() < 0.0, "underestimation must be safe");
    }

    #[test]
    fn margin_factor_is_quadratic() {
        assert!((accumulation_margin_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((accumulation_margin_factor(1.0) - 4.0).abs() < 1e-12);
        assert!((accumulation_margin_factor(0.5) - 2.25).abs() < 1e-12);
        // And compensates exactly: sizing tA by the factor restores
        // the true sigma_acc.
        let platform = PlatformParams::spartan6();
        let err = 0.5;
        let sigma_wrong = platform.sigma_lut_ps * (1.0 + err);
        let factor = accumulation_margin_factor(err);
        let t_a = 50_000.0;
        let acc_wrong = crate::jitter::sigma_acc(sigma_wrong, t_a, platform.d0_lut_ps);
        let acc_true_with_margin =
            crate::jitter::sigma_acc(platform.sigma_lut_ps, t_a * factor, platform.d0_lut_ps);
        assert!((acc_wrong - acc_true_with_margin).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_monotone_in_error() {
        let tight = DesignParams {
            k: 4,
            n_a: 5,
            ..DesignParams::paper_k4()
        };
        let pts = sigma_sensitivity_sweep(
            &PlatformParams::spartan6(),
            &tight,
            &[-0.3, 0.0, 0.5, 1.0, 2.0],
        )
        .expect("valid");
        for w in pts.windows(2) {
            assert!(w[1].h_claimed >= w[0].h_claimed - 1e-12);
            // h_actual is constant across the sweep.
            assert!((w[1].h_actual - w[0].h_actual).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "relative error must be > -100 %")]
    fn rejects_impossible_error() {
        let _ = accumulation_margin_factor(-1.0);
    }
}
