//! Evaluation-report generation.
//!
//! AIS-31 certification (the framework the paper's Section 2 adopts)
//! requires the stochastic model, the entropy assessment and the
//! parameter provenance to be written up for the evaluator. This
//! module renders a [`DesignPoint`] into that report: platform
//! parameters, design parameters, the model chain
//! (σ_acc → P1 → H bounds → post-processing), throughput, and the
//! elementary-TRNG comparison.

use core::fmt::Write as _;

use crate::design_space::{compare_with_elementary, evaluate, DesignPoint};
use crate::params::{DesignParams, ParamError, PlatformParams};

/// A rendered security-evaluation report for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The evaluated point.
    pub point: DesignPoint,
    /// Platform parameters used.
    pub platform: PlatformParams,
    /// Rendered plain-text report.
    pub text: String,
}

/// Builds the evaluation report for a platform/design pair.
///
/// # Errors
///
/// Propagates design-validation errors.
///
/// # Examples
///
/// ```
/// use trng_model::params::{DesignParams, PlatformParams};
/// use trng_model::report::evaluation_report;
///
/// let r = evaluation_report(&PlatformParams::spartan6(), &DesignParams::paper_k1())?;
/// assert!(r.text.contains("entropy"));
/// assert!(r.point.h_raw > 0.98);
/// # Ok::<(), trng_model::params::ParamError>(())
/// ```
pub fn evaluation_report(
    platform: &PlatformParams,
    design: &DesignParams,
) -> Result<EvaluationReport, ParamError> {
    let point = evaluate(platform, design)?;
    let cmp = compare_with_elementary(platform, design.k, 0.99);
    let mut text = String::new();
    let _ = writeln!(text, "TRNG stochastic-model evaluation report");
    let _ = writeln!(text, "=======================================");
    let _ = writeln!(text, "\n[platform parameters — measured (Step 1)]");
    let _ = writeln!(text, "  d0_LUT     = {:.1} ps", platform.d0_lut_ps);
    let _ = writeln!(text, "  tstep      = {:.2} ps", platform.tstep_ps);
    let _ = writeln!(text, "  sigma_LUT  = {:.2} ps", platform.sigma_lut_ps);
    let _ = writeln!(text, "\n[design parameters (Step 2)]");
    let _ = writeln!(
        text,
        "  n = {}, m = {}, k = {}, f_CLK = {:.0} MHz, N_A = {} (tA = {:.1} ns), np = {}",
        design.n,
        design.m,
        design.k,
        design.f_clk_hz as f64 / 1e6,
        design.n_a,
        design.t_a_ps() / 1e3,
        design.np
    );
    let _ = writeln!(
        text,
        "  edge-detection margin: m*tstep = {:.0} ps > d0 = {:.0} ps (min m = {})",
        design.m as f64 * platform.tstep_ps,
        platform.d0_lut_ps,
        platform.min_taps()
    );
    let _ = writeln!(text, "\n[entropy assessment — worst-case offset tau = 0]");
    let _ = writeln!(
        text,
        "  sigma_acc(tA)      = {:.2} ps  ({:.2} bins)",
        point.sigma_acc_ps,
        point.sigma_acc_ps / (platform.tstep_ps * f64::from(design.k))
    );
    let _ = writeln!(text, "  worst-case P1      = {:.6}", point.p1_worst);
    let _ = writeln!(
        text,
        "  Shannon entropy    >= {:.6} per raw bit",
        point.h_raw
    );
    let _ = writeln!(
        text,
        "  min-entropy        >= {:.6} per raw bit",
        point.h_min_raw
    );
    let _ = writeln!(text, "  raw bias           <= {:.6}", point.bias_raw);
    let _ = writeln!(text, "\n[post-processing — XOR, rate np = {}]", design.np);
    let _ = writeln!(text, "  residual bias      <= {:.3e}", point.bias_pp);
    let _ = writeln!(
        text,
        "  Shannon entropy    >= {:.6} per output bit",
        point.h_pp
    );
    let _ = writeln!(text, "\n[throughput]");
    let _ = writeln!(
        text,
        "  raw {:.2} Mb/s -> output {:.2} Mb/s",
        point.raw_throughput_bps / 1e6,
        point.output_throughput_bps / 1e6
    );
    let _ = writeln!(text, "\n[comparison with the elementary TRNG at H >= 0.99]");
    let _ = writeln!(
        text,
        "  accumulation time {:.1} ns vs {:.1} ns -> {:.0}x improvement (eq. 8)",
        cmp.t_a_carry_ps / 1e3,
        cmp.t_a_elementary_ps / 1e3,
        cmp.speedup
    );
    let verdict = if point.h_pp >= 0.997 {
        "PASS (post-processed entropy bound >= 0.997)"
    } else {
        "INSUFFICIENT — increase tA or np"
    };
    let _ = writeln!(text, "\n[verdict] {verdict}");
    Ok(EvaluationReport {
        point,
        platform: *platform,
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_k1_report_passes() {
        let r = evaluation_report(&PlatformParams::spartan6(), &DesignParams::paper_k1())
            .expect("valid");
        assert!(r.text.contains("PASS"), "{}", r.text);
        assert!(r.text.contains("14.29 Mb/s") || r.text.contains("14.3"));
        assert!(r.text.contains("797"));
    }

    #[test]
    fn hopeless_design_reports_insufficient() {
        let d = DesignParams {
            k: 4,
            n_a: 1,
            np: 2,
            ..DesignParams::paper_k4()
        };
        let r = evaluation_report(&PlatformParams::spartan6(), &d).expect("valid");
        assert!(r.text.contains("INSUFFICIENT"), "{}", r.text);
    }

    #[test]
    fn report_contains_all_sections() {
        let r = evaluation_report(&PlatformParams::spartan6(), &DesignParams::paper_k4())
            .expect("valid");
        for needle in [
            "[platform parameters",
            "[design parameters",
            "[entropy assessment",
            "[post-processing",
            "[throughput]",
            "[comparison",
            "[verdict]",
        ] {
            assert!(r.text.contains(needle), "missing {needle}:\n{}", r.text);
        }
    }

    #[test]
    fn cross_platform_reports_are_consistent() {
        // The methodology ports: on a faster platform the same entropy
        // target needs a shorter accumulation time.
        let s6 = evaluation_report(&PlatformParams::spartan6(), &DesignParams::paper_k1())
            .expect("valid");
        let a7_design = DesignParams {
            m: 28, // 28 * 10 ps = 280 ps > 250 ps
            ..DesignParams::paper_k1()
        };
        let a7 = evaluation_report(&PlatformParams::artix7_like(), &a7_design).expect("valid");
        assert!(a7.point.h_raw >= s6.point.h_raw - 0.02);
        let report_err = evaluation_report(
            &PlatformParams::cyclone3_like(),
            &DesignParams {
                m: 20,
                ..DesignParams::paper_k1()
            },
        );
        // 20 * 30 = 600 ps < 650 ps: the flow rejects the undersized line.
        assert!(report_err.is_err());
    }

    #[test]
    fn invalid_design_is_rejected() {
        let bad = DesignParams {
            m: 28,
            ..DesignParams::paper_k1()
        };
        assert!(evaluation_report(&PlatformParams::spartan6(), &bad).is_err());
    }
}
