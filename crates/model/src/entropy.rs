//! Entropy measures — equation (5) and the worst-case lower bound.
//!
//! ```text
//! H = −P1·log2(P1) − (1 − P1)·log2(1 − P1)             (5)
//! ```
//!
//! The binary probability depends on the unpredictable offset τ
//! (Section 4.3): low-frequency and deterministic noise shift it
//! arbitrarily, so the *lower bound* of entropy is taken at the worst
//! case, τ = 0 (Figure 7's minimum).
//!
//! Besides Shannon entropy the module provides min-entropy, which
//! AIS-31/SP 800-90B-style evaluations prefer for cryptographic
//! post-processing budgets.

use crate::binary_prob::p1;

/// Binary Shannon entropy of a bit with `P(1) = p` — equation (5).
///
/// Returns values in `[0, 1]`; `h_shannon(0) = h_shannon(1) = 0`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use trng_model::entropy::h_shannon;
/// assert_eq!(h_shannon(0.5), 1.0);
/// assert!(h_shannon(0.9) < h_shannon(0.6));
/// ```
pub fn h_shannon(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    let q = 1.0 - p;
    -(p * p.log2() + q * q.log2())
}

/// Binary min-entropy: `−log2(max(p, 1 − p))`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use trng_model::entropy::h_min;
/// assert_eq!(h_min(0.5), 1.0);
/// assert!(h_min(0.75) < 0.5);
/// ```
pub fn h_min(p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
    -p.max(1.0 - p).log2()
}

/// Shannon entropy of the extracted bit at a given offset τ —
/// the quantity plotted in Figure 7.
pub fn entropy_at_tau(tau: f64, sigma_acc: f64, tstep: f64) -> f64 {
    h_shannon(p1(tau, sigma_acc, tstep))
}

/// Worst-case (lower-bound) Shannon entropy over all offsets —
/// Section 4.3: the minimum is reached at τ = 0.
///
/// # Examples
///
/// ```
/// use trng_model::entropy::entropy_lower_bound;
/// // sigma_acc = tstep gives essentially full entropy (Figure 7,
/// // topmost curve).
/// assert!(entropy_lower_bound(17.0, 17.0) > 0.999);
/// // sigma_acc = tstep/3 is visibly degraded.
/// assert!(entropy_lower_bound(17.0 / 3.0, 17.0) < 0.8);
/// ```
pub fn entropy_lower_bound(sigma_acc: f64, tstep: f64) -> f64 {
    entropy_at_tau(0.0, sigma_acc, tstep)
}

/// Worst-case min-entropy over all offsets (τ = 0).
pub fn min_entropy_lower_bound(sigma_acc: f64, tstep: f64) -> f64 {
    h_min(p1(0.0, sigma_acc, tstep))
}

/// Samples the Figure-7 curve: `(τ/tstep, H(τ))` pairs for
/// `τ/tstep ∈ [−0.5, 0.5]` at `points` equally spaced offsets.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn entropy_curve(sigma_acc: f64, tstep: f64, points: usize) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two points, got {points}");
    (0..points)
        .map(|i| {
            let x = -0.5 + i as f64 / (points as f64 - 1.0);
            let tau = x * tstep;
            (x, entropy_at_tau(tau, sigma_acc, tstep))
        })
        .collect()
}

/// Finds the smallest `sigma_acc / tstep` ratio whose worst-case
/// entropy reaches `h_target`, by bisection.
///
/// Used to derive required accumulation times: combine with
/// [`accumulation_time_for_sigma`](crate::jitter::accumulation_time_for_sigma).
///
/// # Panics
///
/// Panics if `h_target` is not in `(0, 1)`.
pub fn sigma_ratio_for_entropy(h_target: f64) -> f64 {
    assert!(
        h_target > 0.0 && h_target < 1.0,
        "entropy target must be in (0, 1), got {h_target}"
    );
    // Entropy lower bound is monotone in sigma/tstep. Bracket and bisect.
    let f = |r: f64| entropy_lower_bound(r, 1.0) - h_target;
    let mut lo = 1e-6;
    let mut hi = 4.0;
    debug_assert!(f(lo) < 0.0 && f(hi) > 0.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_entropy_shape() {
        assert_eq!(h_shannon(0.0), 0.0);
        assert_eq!(h_shannon(1.0), 0.0);
        assert_eq!(h_shannon(0.5), 1.0);
        // Symmetry.
        assert!((h_shannon(0.3) - h_shannon(0.7)).abs() < 1e-15);
        // Known value: H(0.25) = 0.8112781244591328.
        assert!((h_shannon(0.25) - 0.811_278_124_459_132_8).abs() < 1e-12);
    }

    #[test]
    fn min_entropy_is_below_shannon() {
        for p in [0.5, 0.6, 0.75, 0.9, 0.99] {
            assert!(h_min(p) <= h_shannon(p) + 1e-12, "p = {p}");
        }
        assert_eq!(h_min(0.5), 1.0);
    }

    #[test]
    fn figure7_curve_minimum_at_tau_zero() {
        for ratio in [1.0, 0.5, 1.0 / 3.0] {
            let sigma = 17.0 * ratio;
            let curve = entropy_curve(sigma, 17.0, 101);
            let centre = curve[50].1;
            let min = curve.iter().map(|&(_, h)| h).fold(f64::INFINITY, f64::min);
            assert!((centre - min).abs() < 1e-9, "ratio {ratio}");
        }
    }

    #[test]
    fn figure7_reference_levels() {
        // Exact model values at tau = 0 (hand computation with eq (3)):
        //   sigma = tstep      -> P1 = 0.5046 -> H ~ 0.99994
        //   sigma = tstep/2    -> P1 = 0.6854 -> H ~ 0.900
        //   sigma = tstep/3    -> P1 = 0.8664 -> H ~ 0.567
        // matching the minima of the three curves in Figure 7.
        let t = 17.0;
        assert!(entropy_lower_bound(t, t) > 0.999);
        let h_half = entropy_lower_bound(t / 2.0, t);
        assert!((h_half - 0.900).abs() < 0.005, "H(t/2) = {h_half}");
        let h_third = entropy_lower_bound(t / 3.0, t);
        assert!((h_third - 0.567).abs() < 0.005, "H(t/3) = {h_third}");
    }

    #[test]
    fn figure7_curve_maximum_at_edges() {
        // At tau = +-tstep/2 the edge sits on a bin boundary: P1 = 0.5
        // exactly, entropy 1.
        let curve = entropy_curve(8.5, 17.0, 101);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        assert!((curve[100].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_symmetric() {
        let curve = entropy_curve(6.0, 17.0, 101);
        for i in 0..50 {
            let (xl, hl) = curve[i];
            let (xr, hr) = curve[100 - i];
            assert!((xl + xr).abs() < 1e-12);
            assert!((hl - hr).abs() < 1e-9, "at {xl}");
        }
    }

    #[test]
    fn lower_bound_is_monotone_in_sigma() {
        let t = 17.0;
        let mut prev = 0.0;
        for r in [0.1, 0.2, 0.3, 0.5, 0.7, 1.0, 1.5] {
            let h = entropy_lower_bound(r * t, t);
            assert!(h >= prev - 1e-12, "ratio {r}");
            prev = h;
        }
    }

    #[test]
    fn sigma_ratio_inversion() {
        for h in [0.3, 0.7, 0.9, 0.99, 0.999] {
            let r = sigma_ratio_for_entropy(h);
            let back = entropy_lower_bound(r, 1.0);
            assert!((back - h).abs() < 1e-9, "h {h}: ratio {r} -> {back}");
        }
    }

    #[test]
    fn paper_table1_h_raw_reproduced_by_model() {
        // Platform: d0 = 480 ps, tstep = 17 ps, sigma_LUT = 2.6 ps
        // (calibrated; see DESIGN.md). Check all six Table-1 H_RAW rows.
        let d0 = 480.0;
        let t = 17.0;
        let s = 2.6;
        let h = |ta_ns: f64, k: f64| {
            let sigma = crate::jitter::sigma_acc(s, ta_ns * 1e3, d0);
            entropy_lower_bound(sigma, t * k)
        };
        assert!(
            (h(10.0, 1.0) - 0.99).abs() < 0.01,
            "k1 ta10 {}",
            h(10.0, 1.0)
        );
        assert!(h(20.0, 1.0) > 0.998, "k1 ta20 {}", h(20.0, 1.0));
        assert!(h(10.0, 4.0) < 0.06, "k4 ta10 {}", h(10.0, 4.0));
        assert!(
            (h(50.0, 4.0) - 0.70).abs() < 0.05,
            "k4 ta50 {}",
            h(50.0, 4.0)
        );
        assert!(
            (h(100.0, 4.0) - 0.94).abs() < 0.02,
            "k4 ta100 {}",
            h(100.0, 4.0)
        );
        assert!(
            (h(200.0, 4.0) - 0.99).abs() < 0.01,
            "k4 ta200 {}",
            h(200.0, 4.0)
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn rejects_bad_probability() {
        let _ = h_shannon(1.5);
    }
}
