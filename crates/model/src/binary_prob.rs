//! Binary probability of the extracted bit — equations (2) and (3).
//!
//! The TDC samples the noisy signal edge with bin width `tstep`;
//! neighbouring bins are decoded as alternating bits (the priority
//! encoder outputs the LSB of the edge position). The edge position is
//! Gaussian around its deterministic offset, so the probability that
//! the output bit is 1 is the Gaussian mass falling into "1" bins:
//!
//! ```text
//! τ = (t_o mod tstep) + tstep/2                        (2)
//! P1 ≈ Σ_i [ Φ((τ − (2i − ½)·tstep)/σ_acc)
//!          − Φ((τ − (2i + ½)·tstep)/σ_acc) ]           (3)
//! ```
//!
//! i.e. "1" bins are the intervals `[(2i − ½)·tstep, (2i + ½)·tstep]`
//! around the bin containing the most likely edge position (which is
//! decoded as 1 without loss of generality; τ = 0 puts the mean edge in
//! the middle of that bin).

use crate::gauss::normal_mass;

/// Offset τ between the noisy signal edge and the middle of the
/// closest sampling bin — equation (2).
///
/// `t_o` is the deterministic offset between the sampling edge and the
/// most likely edge position; the result lies in `[0, tstep)` by the
/// paper's convention (`(t_o mod tstep)` shifted by half a bin — we
/// reduce to the equivalent representative in `[-tstep/2, tstep/2)`
/// relative to the bin centre, which is what equation (3) consumes).
///
/// # Panics
///
/// Panics if `tstep` is not strictly positive.
///
/// # Examples
///
/// ```
/// use trng_model::binary_prob::tau_from_offset;
/// // An edge exactly on a bin boundary is half a bin from the centre.
/// assert!((tau_from_offset(0.0, 17.0).abs() - 8.5).abs() < 1e-12);
/// // An edge in the middle of a bin has tau = 0.
/// assert!(tau_from_offset(8.5, 17.0).abs() < 1e-12);
/// ```
pub fn tau_from_offset(t_o: f64, tstep: f64) -> f64 {
    assert!(tstep > 0.0, "tstep must be positive, got {tstep}");
    let m = t_o.rem_euclid(tstep); // in [0, tstep)
                                   // Distance from the bin centre at tstep/2, wrapped to [-t/2, t/2).
    let d = m - tstep / 2.0;
    if d >= tstep / 2.0 {
        d - tstep
    } else {
        d
    }
}

/// Probability that the extracted bit is 1 — equation (3).
///
/// * `tau` — offset between the mean edge position and the centre of
///   the nearest "1" bin (`tau = 0` is the worst case);
/// * `sigma_acc` — accumulated jitter (equation (1));
/// * `tstep` — TDC bin width (after any down-sampling:
///   `tstep_eff = k · tstep`).
///
/// The infinite sum is truncated adaptively once additional bins lie
/// more than 12σ from the mean, giving absolute error below 1e-30.
///
/// Degenerate case `sigma_acc == 0`: the edge is deterministic and the
/// result is the indicator of τ landing inside a "1" bin.
///
/// # Panics
///
/// Panics if `tstep` is not strictly positive or `sigma_acc` negative.
///
/// # Examples
///
/// ```
/// use trng_model::binary_prob::p1;
/// // Large jitter -> equidistributed parity -> P1 ~ 0.5.
/// assert!((p1(0.0, 100.0, 17.0) - 0.5).abs() < 1e-6);
/// // Tiny jitter, tau = 0 -> almost surely in the "1" bin.
/// assert!(p1(0.0, 0.5, 17.0) > 0.999_999);
/// ```
pub fn p1(tau: f64, sigma_acc: f64, tstep: f64) -> f64 {
    assert!(tstep > 0.0, "tstep must be positive, got {tstep}");
    assert!(
        sigma_acc >= 0.0 && sigma_acc.is_finite(),
        "sigma_acc must be finite and non-negative, got {sigma_acc}"
    );
    if sigma_acc == 0.0 {
        // Edge frozen at tau; the bit is 1 iff tau lies within
        // [-t/2, t/2] modulo 2t. Wrap tau to [-t, t) and test.
        let wrapped = tau_from_offset(tau + tstep, 2.0 * tstep);
        return f64::from(wrapped.abs() <= tstep / 2.0);
    }
    // The edge position X ~ N(0, sigma^2) around the mean; the bit is 1
    // when X + tau falls in a "1" bin [(2i - 1/2) t, (2i + 1/2) t].
    let reach = 12.0 * sigma_acc + tau.abs();
    let i_max = (reach / (2.0 * tstep)).ceil() as i64 + 1;
    let mut p = 0.0;
    for i in -i_max..=i_max {
        let a = (2.0 * i as f64 - 0.5) * tstep;
        let b = (2.0 * i as f64 + 0.5) * tstep;
        p += normal_mass(tau, sigma_acc, a, b);
    }
    p.clamp(0.0, 1.0)
}

/// Probability of a 0 bit: `1 − P1`.
pub fn p0(tau: f64, sigma_acc: f64, tstep: f64) -> f64 {
    1.0 - p1(tau, sigma_acc, tstep)
}

/// Maximal bias over all offsets: `max_τ |P1(τ) − ½|`.
///
/// The extremum is attained at τ = 0 (bin centre), where the Gaussian
/// mass concentrates in a single "1" bin.
pub fn worst_case_bias(sigma_acc: f64, tstep: f64) -> f64 {
    (p1(0.0, sigma_acc, tstep) - 0.5).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_wraps_into_half_open_bin() {
        let t = 17.0;
        for off in [-40.0, -8.5, 0.0, 5.0, 16.9, 17.0, 100.0] {
            let tau = tau_from_offset(off, t);
            assert!((-t / 2.0..t / 2.0).contains(&tau), "off {off} -> {tau}");
        }
        // Periodicity.
        assert!((tau_from_offset(3.0, t) - tau_from_offset(3.0 + 5.0 * t, t)).abs() < 1e-9);
    }

    #[test]
    fn p1_is_a_probability() {
        for tau in [-8.0, -3.0, 0.0, 4.0, 8.0] {
            for sigma in [0.1, 1.0, 8.5, 17.0, 68.0] {
                let p = p1(tau, sigma, 17.0);
                assert!((0.0..=1.0).contains(&p), "tau {tau} sigma {sigma} -> {p}");
            }
        }
    }

    #[test]
    fn p1_at_large_sigma_is_half() {
        assert!((p1(0.0, 170.0, 17.0) - 0.5).abs() < 1e-9);
        assert!((p1(5.0, 170.0, 17.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn p1_is_maximal_at_tau_zero() {
        let sigma = 8.5;
        let p_centre = p1(0.0, sigma, 17.0);
        for tau in [1.0, 3.0, 6.0, 8.0] {
            assert!(p1(tau, sigma, 17.0) <= p_centre + 1e-12, "tau {tau}");
            assert!(p1(-tau, sigma, 17.0) <= p_centre + 1e-12, "tau -{tau}");
        }
    }

    #[test]
    fn p1_is_symmetric_in_tau() {
        let sigma = 6.0;
        for tau in [0.5, 2.0, 5.0, 8.0] {
            assert!((p1(tau, sigma, 17.0) - p1(-tau, sigma, 17.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn shifting_tau_by_one_bin_swaps_bit_roles() {
        // tau -> tau + tstep moves the mean into a "0" bin:
        // P1(tau + t) = 1 - P1(tau).
        let sigma = 7.0;
        let t = 17.0;
        for tau in [0.0, 2.0, 5.0] {
            let a = p1(tau, sigma, t);
            let b = p1(tau + t, sigma, t);
            assert!((a + b - 1.0).abs() < 1e-10, "tau {tau}: {a} + {b}");
        }
    }

    #[test]
    fn hand_computed_value_sigma_half_bin() {
        // sigma = t/2, tau = 0:
        // i=0 term: Phi(1) - Phi(-1) = 0.6826894921370859
        // i=+-1:    2*(Phi(5) - Phi(3)) = 2*(0.9999997133 - 0.9986501020)
        let t = 17.0;
        let sigma = 8.5;
        let want =
            0.682_689_492_137_085_9 + 2.0 * (0.999_999_713_348_428_1 - 0.998_650_101_968_369_9);
        let got = p1(0.0, sigma, t);
        assert!((got - want).abs() < 1e-9, "got {got} want {want}");
    }

    #[test]
    fn zero_sigma_is_an_indicator() {
        let t = 17.0;
        assert_eq!(p1(0.0, 0.0, t), 1.0); // centre of "1" bin
        assert_eq!(p1(t, 0.0, t), 0.0); // centre of adjacent "0" bin
        assert_eq!(p1(2.0 * t, 0.0, t), 1.0); // next "1" bin
        assert_eq!(p1(3.0, 0.0, t), 1.0); // still inside the "1" bin
        assert_eq!(p1(12.0, 0.0, t), 0.0); // inside the "0" bin
    }

    #[test]
    fn worst_case_bias_decreases_with_sigma() {
        let t = 17.0;
        let b1 = worst_case_bias(4.0, t);
        let b2 = worst_case_bias(8.0, t);
        let b3 = worst_case_bias(16.0, t);
        assert!(b1 > b2 && b2 > b3, "{b1} {b2} {b3}");
        assert!(b3 < 0.01);
    }

    #[test]
    fn p0_complements_p1() {
        assert!((p0(3.0, 6.0, 17.0) + p1(3.0, 6.0, 17.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "tstep must be positive")]
    fn rejects_bad_tstep() {
        let _ = p1(0.0, 1.0, 0.0);
    }
}
