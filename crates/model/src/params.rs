//! Platform and design parameters — the two inputs of the stochastic
//! model (Figure 1 / Section 4.4).
//!
//! *Platform parameters* are physical properties of the implementation
//! fabric, obtained by measurement (Section 5.1): the average LUT delay
//! `d0_LUT`, the TDC bin width `tstep` and the per-transition thermal
//! jitter `sigma_LUT`.
//!
//! *Design parameters* are the designer's knobs (Section 4.4): ring
//! length `n`, delay-line length `m`, down-sampling factor `k`, system
//! clock `f_CLK`, accumulation period count `N_A` (so
//! `tA = N_A / f_CLK`), and the XOR post-processing rate `np`.

use core::fmt;
use std::error::Error;

/// Measured physical parameters of the implementation platform.
///
/// All times in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformParams {
    /// Average LUT propagation delay `d0_LUT` (paper: 480 ps).
    pub d0_lut_ps: f64,
    /// TDC bin width `tstep` (paper: ~17 ps).
    pub tstep_ps: f64,
    /// Thermal-jitter sigma per transition `sigma_LUT`.
    pub sigma_lut_ps: f64,
}

impl PlatformParams {
    /// Creates platform parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::Platform`] if any value is non-positive or
    /// not finite.
    pub fn new(d0_lut_ps: f64, tstep_ps: f64, sigma_lut_ps: f64) -> Result<Self, ParamError> {
        for (name, v) in [
            ("d0_lut_ps", d0_lut_ps),
            ("tstep_ps", tstep_ps),
            ("sigma_lut_ps", sigma_lut_ps),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ParamError::Platform {
                    field: name,
                    value: v,
                });
            }
        }
        Ok(PlatformParams {
            d0_lut_ps,
            tstep_ps,
            sigma_lut_ps,
        })
    }

    /// The Spartan-6 parameters used throughout the reproduction:
    /// `d0 = 480 ps`, `tstep = 17 ps`, `sigma_LUT = 2.6 ps`.
    ///
    /// The paper reports a measured `sigma_G,LUT ≈ 2 ps`; 2.6 ps is the
    /// value that makes equations (1)–(5) reproduce every H_RAW entry
    /// of Table 1 (see DESIGN.md §2 and EXPERIMENTS.md). Use
    /// [`PlatformParams::spartan6_paper_sigma`] for the published
    /// rounded value.
    pub fn spartan6() -> Self {
        PlatformParams {
            d0_lut_ps: 480.0,
            tstep_ps: 17.0,
            sigma_lut_ps: 2.6,
        }
    }

    /// Spartan-6 parameters with the paper's rounded `sigma_LUT = 2 ps`.
    pub fn spartan6_paper_sigma() -> Self {
        PlatformParams {
            sigma_lut_ps: 2.0,
            ..PlatformParams::spartan6()
        }
    }

    /// *Illustrative* 28 nm Xilinx-class parameters (Artix-7-like):
    /// faster LUTs (250 ps), finer carry bins (10 ps), less thermal
    /// jitter per transition (1.8 ps).
    ///
    /// The paper's stated future work is "applying the presented
    /// methodology on different implementation platforms"; these
    /// values are plausible extrapolations (not measurements) provided
    /// so the design flow can be exercised cross-platform — see the
    /// `design_space` example.
    pub fn artix7_like() -> Self {
        PlatformParams {
            d0_lut_ps: 250.0,
            tstep_ps: 10.0,
            sigma_lut_ps: 1.8,
        }
    }

    /// *Illustrative* Altera Cyclone-III-class parameters: slower LUTs
    /// (650 ps), coarser carry bins (30 ps), more jitter (3.2 ps).
    /// Same caveat as [`PlatformParams::artix7_like`].
    pub fn cyclone3_like() -> Self {
        PlatformParams {
            d0_lut_ps: 650.0,
            tstep_ps: 30.0,
            sigma_lut_ps: 3.2,
        }
    }

    /// Minimal delay-line length detecting the edge under nominal
    /// delays: the smallest `m` with `m · tstep > d0` (Section 5.2
    /// gives `m > 29` for the paper's platform).
    pub fn min_taps(&self) -> usize {
        (self.d0_lut_ps / self.tstep_ps).floor() as usize + 1
    }
}

impl Default for PlatformParams {
    fn default() -> Self {
        PlatformParams::spartan6()
    }
}

impl fmt::Display for PlatformParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d0 = {} ps, tstep = {} ps, sigma_LUT = {} ps",
            self.d0_lut_ps, self.tstep_ps, self.sigma_lut_ps
        )
    }
}

/// The designer-chosen parameters of one TRNG configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignParams {
    /// Ring-oscillator stages `n` (odd; paper uses 3).
    pub n: usize,
    /// Delay-line taps `m` (multiple of 4; paper uses 36).
    pub m: usize,
    /// Down-sampling factor `k` (paper explores 1 and 4).
    pub k: u32,
    /// System clock frequency in Hz (paper: 100 MHz).
    pub f_clk_hz: u64,
    /// Accumulation time in clock periods: `tA = N_A / f_CLK`.
    pub n_a: u32,
    /// XOR post-processing compression rate `np` (1 = none).
    pub np: u32,
}

impl DesignParams {
    /// The paper's fastest configuration: `n = 3`, `m = 36`, `k = 1`,
    /// 100 MHz, `N_A = 1` (tA = 10 ns), `np = 7` — 14.3 Mb/s.
    pub fn paper_k1() -> Self {
        DesignParams {
            n: 3,
            m: 36,
            k: 1,
            f_clk_hz: 100_000_000,
            n_a: 1,
            np: 7,
        }
    }

    /// The paper's most compact configuration: `k = 4`, `N_A = 5`
    /// (tA = 50 ns), `np = 13` — 1.53 Mb/s.
    pub fn paper_k4() -> Self {
        DesignParams {
            k: 4,
            n_a: 5,
            np: 13,
            ..DesignParams::paper_k1()
        }
    }

    /// Validates the design against a platform.
    ///
    /// # Errors
    ///
    /// * ring length even or zero;
    /// * `m` not a positive multiple of 4, or not divisible by `k`;
    /// * `k`, `N_A`, `np` or `f_clk_hz` zero;
    /// * the edge-detection condition `m · tstep > d0` violated
    ///   (Section 5.2: the edge could pass undetected).
    pub fn validate(&self, platform: &PlatformParams) -> Result<(), ParamError> {
        if self.n == 0 || self.n.is_multiple_of(2) {
            return Err(ParamError::EvenRing { n: self.n });
        }
        if self.m == 0 || !self.m.is_multiple_of(4) {
            return Err(ParamError::TapsNotMultipleOf4 { m: self.m });
        }
        if self.k == 0 || self.n_a == 0 || self.np == 0 || self.f_clk_hz == 0 {
            return Err(ParamError::ZeroParameter);
        }
        if !self.m.is_multiple_of(self.k as usize) {
            return Err(ParamError::TapsNotDivisibleByK {
                m: self.m,
                k: self.k,
            });
        }
        if self.m as f64 * platform.tstep_ps <= platform.d0_lut_ps {
            return Err(ParamError::EdgeCanEscape {
                m: self.m,
                min_taps: platform.min_taps(),
            });
        }
        Ok(())
    }

    /// Accumulation time `tA = N_A / f_CLK` in picoseconds.
    pub fn t_a_ps(&self) -> f64 {
        f64::from(self.n_a) / self.f_clk_hz as f64 * 1e12
    }

    /// Effective TDC bin width after down-sampling: `k · tstep`.
    pub fn effective_tstep_ps(&self, platform: &PlatformParams) -> f64 {
        f64::from(self.k) * platform.tstep_ps
    }

    /// Raw bit rate before post-processing: `f_CLK / N_A` (bits/s).
    pub fn raw_throughput_bps(&self) -> f64 {
        self.f_clk_hz as f64 / f64::from(self.n_a)
    }

    /// Output bit rate after post-processing: `f_CLK / (N_A · np)`.
    pub fn output_throughput_bps(&self) -> f64 {
        self.raw_throughput_bps() / f64::from(self.np)
    }
}

impl Default for DesignParams {
    fn default() -> Self {
        DesignParams::paper_k1()
    }
}

/// An invalid platform or design parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// A platform value was non-positive or not finite.
    Platform {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Ring length must be odd and non-zero.
    EvenRing {
        /// Offending ring length.
        n: usize,
    },
    /// `m` must be a positive multiple of 4.
    TapsNotMultipleOf4 {
        /// Offending tap count.
        m: usize,
    },
    /// `m` must be divisible by the down-sampling factor.
    TapsNotDivisibleByK {
        /// Tap count.
        m: usize,
        /// Down-sampling factor.
        k: u32,
    },
    /// `k`, `N_A`, `np` and `f_clk_hz` must all be non-zero.
    ZeroParameter,
    /// `m · tstep <= d0`: a signal edge could escape detection.
    EdgeCanEscape {
        /// Offending tap count.
        m: usize,
        /// Minimal tap count for this platform.
        min_taps: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Platform { field, value } => {
                write!(
                    f,
                    "platform parameter {field} must be positive and finite, got {value}"
                )
            }
            ParamError::EvenRing { n } => {
                write!(f, "ring length must be odd and non-zero, got {n}")
            }
            ParamError::TapsNotMultipleOf4 { m } => {
                write!(f, "tap count m = {m} is not a positive multiple of 4")
            }
            ParamError::TapsNotDivisibleByK { m, k } => {
                write!(f, "tap count m = {m} is not divisible by k = {k}")
            }
            ParamError::ZeroParameter => {
                write!(f, "k, N_A, np and f_clk must all be non-zero")
            }
            ParamError::EdgeCanEscape { m, min_taps } => write!(
                f,
                "m = {m} taps cannot always capture the edge; need at least {min_taps}"
            ),
        }
    }
}

impl Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spartan6_values_match_paper() {
        let p = PlatformParams::spartan6();
        assert_eq!(p.d0_lut_ps, 480.0);
        assert_eq!(p.tstep_ps, 17.0);
        // Section 5.2: the condition becomes m > 29 -> min_taps = 29? The
        // paper states m > d0/tstep = 28.2 -> m >= 29; our helper returns
        // the smallest integer strictly satisfying m*tstep > d0.
        assert_eq!(p.min_taps(), 29);
        let p2 = PlatformParams::spartan6_paper_sigma();
        assert_eq!(p2.sigma_lut_ps, 2.0);
        assert_eq!(p2.d0_lut_ps, 480.0);
    }

    #[test]
    fn paper_designs_validate() {
        let p = PlatformParams::spartan6();
        DesignParams::paper_k1().validate(&p).expect("k1 valid");
        DesignParams::paper_k4().validate(&p).expect("k4 valid");
    }

    #[test]
    fn derived_quantities() {
        let p = PlatformParams::spartan6();
        let d = DesignParams::paper_k1();
        assert_eq!(d.t_a_ps(), 10_000.0); // 10 ns
        assert_eq!(d.effective_tstep_ps(&p), 17.0);
        assert_eq!(d.raw_throughput_bps(), 1e8);
        // 100 Mb/s / 7 = 14.3 Mb/s — the headline throughput.
        assert!((d.output_throughput_bps() / 1e6 - 14.2857).abs() < 0.001);

        let d4 = DesignParams::paper_k4();
        assert_eq!(d4.t_a_ps(), 50_000.0);
        assert_eq!(d4.effective_tstep_ps(&p), 68.0);
        // 100 / (5*13) = 1.538 Mb/s.
        assert!((d4.output_throughput_bps() / 1e6 - 1.538).abs() < 0.01);
    }

    #[test]
    fn validation_catches_each_error() {
        let p = PlatformParams::spartan6();
        let base = DesignParams::paper_k1();
        assert!(matches!(
            DesignParams { n: 4, ..base }.validate(&p),
            Err(ParamError::EvenRing { n: 4 })
        ));
        assert!(matches!(
            DesignParams { m: 35, ..base }.validate(&p),
            Err(ParamError::TapsNotMultipleOf4 { m: 35 })
        ));
        assert!(matches!(
            DesignParams {
                m: 40,
                k: 3,
                ..base
            }
            .validate(&p),
            Err(ParamError::TapsNotDivisibleByK { m: 40, k: 3 })
        ));
        assert!(matches!(
            DesignParams { np: 0, ..base }.validate(&p),
            Err(ParamError::ZeroParameter)
        ));
        // m = 28 -> 28*17 = 476 <= 480: edge can escape.
        assert!(matches!(
            DesignParams { m: 28, ..base }.validate(&p),
            Err(ParamError::EdgeCanEscape { m: 28, .. })
        ));
        // m = 32 -> 544 > 480: *nominally* fine (the paper's first try).
        assert!(DesignParams { m: 32, ..base }.validate(&p).is_ok());
    }

    #[test]
    fn platform_constructor_validates() {
        assert!(PlatformParams::new(480.0, 17.0, 2.6).is_ok());
        assert!(matches!(
            PlatformParams::new(0.0, 17.0, 2.6),
            Err(ParamError::Platform {
                field: "d0_lut_ps",
                ..
            })
        ));
        assert!(PlatformParams::new(480.0, -1.0, 2.6).is_err());
        assert!(PlatformParams::new(480.0, 17.0, f64::NAN).is_err());
    }

    #[test]
    fn error_display() {
        let e = ParamError::EdgeCanEscape {
            m: 28,
            min_taps: 29,
        };
        let s = format!("{e}");
        assert!(s.contains("28") && s.contains("29"));
    }
}
