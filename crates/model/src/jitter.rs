//! Jitter accumulation — equation (1).
//!
//! The ring oscillator free-runs for the accumulation time `tA`;
//! because the white-noise jitter realizations of successive
//! transitions are independent, the standard deviation of the
//! accumulated jitter grows with the square root of the number of
//! transition events:
//!
//! ```text
//! σ_acc(tA) = σ_LUT · sqrt(tA / d0_LUT)          (1)
//! ```

/// Accumulated thermal-jitter standard deviation after time `t_a` —
/// equation (1) of the paper.
///
/// All arguments share a time unit (picoseconds by convention); the
/// result is in the same unit.
///
/// # Panics
///
/// Panics if `sigma_lut` is negative, or `t_a` is negative, or
/// `d0_lut` is not strictly positive.
///
/// # Examples
///
/// ```
/// use trng_model::jitter::sigma_acc;
/// // Paper's platform at tA = 10 ns: 2.6 * sqrt(10000/480) ~ 11.9 ps.
/// let s = sigma_acc(2.6, 10_000.0, 480.0);
/// assert!((s - 11.867).abs() < 0.01);
/// ```
pub fn sigma_acc(sigma_lut: f64, t_a: f64, d0_lut: f64) -> f64 {
    assert!(
        sigma_lut >= 0.0 && sigma_lut.is_finite(),
        "sigma_lut must be finite and non-negative, got {sigma_lut}"
    );
    assert!(
        t_a >= 0.0 && t_a.is_finite(),
        "accumulation time must be finite and non-negative, got {t_a}"
    );
    assert!(
        d0_lut > 0.0 && d0_lut.is_finite(),
        "d0_lut must be finite and positive, got {d0_lut}"
    );
    sigma_lut * (t_a / d0_lut).sqrt()
}

/// Inverts equation (1): the accumulation time needed to reach a given
/// accumulated sigma.
///
/// # Panics
///
/// Panics if `sigma_target` is negative, or `sigma_lut`/`d0_lut` are
/// not strictly positive.
///
/// # Examples
///
/// ```
/// use trng_model::jitter::{accumulation_time_for_sigma, sigma_acc};
/// let t = accumulation_time_for_sigma(17.0, 2.6, 480.0);
/// assert!((sigma_acc(2.6, t, 480.0) - 17.0).abs() < 1e-9);
/// ```
pub fn accumulation_time_for_sigma(sigma_target: f64, sigma_lut: f64, d0_lut: f64) -> f64 {
    assert!(
        sigma_target >= 0.0 && sigma_target.is_finite(),
        "sigma_target must be finite and non-negative, got {sigma_target}"
    );
    assert!(
        sigma_lut > 0.0 && sigma_lut.is_finite(),
        "sigma_lut must be finite and positive, got {sigma_lut}"
    );
    assert!(
        d0_lut > 0.0 && d0_lut.is_finite(),
        "d0_lut must be finite and positive, got {d0_lut}"
    );
    d0_lut * (sigma_target / sigma_lut).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_sqrt_of_time() {
        let s1 = sigma_acc(2.0, 1_000.0, 480.0);
        let s4 = sigma_acc(2.0, 4_000.0, 480.0);
        assert!((s4 / s1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_means_zero_jitter() {
        assert_eq!(sigma_acc(2.0, 0.0, 480.0), 0.0);
    }

    #[test]
    fn paper_value_at_10ns() {
        // sigma_acc = 2.6 * sqrt(10000/480) = 11.8673...
        let s = sigma_acc(2.6, 10_000.0, 480.0);
        assert!((s - 2.6 * (10_000.0f64 / 480.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inversion_round_trips() {
        for target in [0.5, 5.0, 17.0, 68.0] {
            let t = accumulation_time_for_sigma(target, 2.6, 480.0);
            assert!((sigma_acc(2.6, t, 480.0) - target).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "d0_lut must be finite and positive")]
    fn rejects_zero_d0() {
        let _ = sigma_acc(2.0, 100.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "accumulation time must be finite")]
    fn rejects_negative_time() {
        let _ = sigma_acc(2.0, -1.0, 480.0);
    }
}
