//! Down-sampling of the TDC code — the `k` design parameter.
//!
//! Section 4.4/5.2: "Down-sampling can be used to improve the
//! linearity of the time-to-digital conversion in the fast delay lines
//! by combining k neighboring bins into a single bin", at the price of
//! a larger required accumulation time (the effective bin width becomes
//! `k · tstep`, and entropy depends on `σ_acc / tstep_eff`).
//!
//! In hardware, combining `k` bins means keeping only every `k`-th
//! flip-flop output: the retained tap marks the boundary of the
//! combined bin. That is exactly what [`downsample`] does.

/// Keeps every `k`-th tap (indices `k−1, 2k−1, …`), producing a code
/// with bins of width `k · tstep`.
///
/// `k = 1` returns the input unchanged.
///
/// # Panics
///
/// Panics if `k == 0` or the code length is not a multiple of `k`.
///
/// # Examples
///
/// ```
/// use trng_core::downsample::downsample;
///
/// let code = vec![true, true, true, true, true, false, false, false];
/// // k = 4: taps 3 and 7 survive.
/// assert_eq!(downsample(&code, 4), vec![true, false]);
/// assert_eq!(downsample(&code, 1).len(), 8);
/// ```
pub fn downsample(code: &[bool], k: u32) -> Vec<bool> {
    assert!(k >= 1, "down-sampling factor must be at least 1");
    let k = k as usize;
    assert!(
        code.len().is_multiple_of(k),
        "code length {} is not a multiple of k = {k}",
        code.len()
    );
    if k == 1 {
        return code.to_vec();
    }
    code.iter().copied().skip(k - 1).step_by(k).collect()
}

/// Packed-word counterpart of [`downsample`] for codes of at most 64
/// taps: keeps the same taps (`k−1, 2k−1, …`) compressed into the low
/// bits, and returns the new code together with its width `m / k`.
///
/// Bit `l` of the result equals tap `(l+1)·k − 1` of the input, so the
/// result is bit-identical to packing `downsample(&code, k)`.
///
/// # Panics
///
/// Panics if `k == 0`, `m` is not in `1..=64`, or `m` is not a
/// multiple of `k`.
pub fn downsample_word(code: u64, m: u32, k: u32) -> (u64, u32) {
    assert!(k >= 1, "down-sampling factor must be at least 1");
    assert!(
        (1..=64).contains(&m),
        "packed down-sampling supports at most 64 taps, got {m}"
    );
    assert!(
        m.is_multiple_of(k),
        "code length {m} is not a multiple of k = {k}"
    );
    if k == 1 {
        return (code & (u64::MAX >> (64 - m)), m);
    }
    let width = m / k;
    let mut out = 0u64;
    for l in 0..width {
        let tap = (l + 1) * k - 1;
        out |= (code >> tap & 1) << l;
    }
    (out, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    fn pack(code: &[bool]) -> u64 {
        code.iter()
            .enumerate()
            .fold(0u64, |w, (j, &b)| w | (u64::from(b) << j))
    }

    #[test]
    fn k1_is_identity() {
        let c = bits("110100");
        assert_eq!(downsample(&c, 1), c);
    }

    #[test]
    fn k4_keeps_every_fourth() {
        // 36 taps -> 9 combined bins, like the paper's k = 4 variant.
        let mut c = vec![true; 20];
        c.extend(vec![false; 16]);
        let d = downsample(&c, 4);
        assert_eq!(d.len(), 9);
        // taps 3,7,11,15,19 true; 23,27,31,35 false.
        assert_eq!(d, bits("111110000"));
    }

    #[test]
    fn k2_halves() {
        let c = bits("10101010");
        // taps 1,3,5,7 -> all '0'.
        assert_eq!(downsample(&c, 2), bits("0000"));
    }

    #[test]
    fn edge_position_scales() {
        // Edge between tap 11 and 12 in fine code: kept taps 3, 7, 11
        // are true, kept taps 15, 19, 23 false -> combined edge between
        // bin 2 and bin 3.
        let mut c = vec![true; 12];
        c.extend(vec![false; 12]);
        let d = downsample(&c, 4);
        assert_eq!(d, bits("111000"));
    }

    #[test]
    fn packed_matches_unpacked_across_m_and_k() {
        for m in [4u32, 8, 12, 36, 60, 64] {
            for k in [1u32, 2, 4] {
                if !m.is_multiple_of(k) {
                    continue;
                }
                // A pseudo-random but deterministic bit pattern.
                let code: Vec<bool> = (0..m)
                    .map(|j| j.wrapping_mul(2654435761u32) >> 28 & 1 == 1)
                    .collect();
                let (word, width) = downsample_word(pack(&code), m, k);
                let expected = downsample(&code, k);
                assert_eq!(width as usize, expected.len(), "m={m} k={k}");
                assert_eq!(word, pack(&expected), "m={m} k={k}");
            }
        }
    }

    #[test]
    fn packed_k1_masks_to_width() {
        let (w, width) = downsample_word(u64::MAX, 5, 1);
        assert_eq!((w, width), (0b11111, 5));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn packed_rejects_ragged_length() {
        let _ = downsample_word(0, 10, 4);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_length() {
        let _ = downsample(&[true; 10], 4);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_k() {
        let _ = downsample(&[true; 4], 0);
    }
}
