//! The entropy extractor — Figure 5.
//!
//! Two combinational stages turn a raw [`Snippet`] into one random bit:
//!
//! 1. **XOR stage** — all `n` delay-line words are XORed bit-wise into
//!    one `m`-bit code; every ring transition inside the observation
//!    window shows up as one edge in this code.
//! 2. **Edge detector** — after optional down-sampling by `k` and
//!    bubble filtering, a priority encoder locates the *first* edge
//!    (the most recent ring transition; any second edge — Figure 4 (b)
//!    — is ignored) and outputs the LSB of its position: "odd positions
//!    are encoded as '0' and even positions as '1'".

use crate::bubble::BubbleFilter;
use crate::downsample::{downsample, downsample_word};
use crate::snippet::Snippet;

/// Result of decoding one snippet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractedBit {
    /// The output bit: LSB-parity of the first-edge position
    /// (even position → 1, odd → 0).
    pub bit: bool,
    /// Position of the decoded edge boundary in the (down-sampled)
    /// code, 0-based.
    pub edge_position: usize,
}

/// The combinational entropy extractor.
///
/// # Examples
///
/// ```
/// use trng_core::extractor::EntropyExtractor;
/// use trng_core::snippet::Snippet;
///
/// let ext = EntropyExtractor::new(1, Default::default());
/// let s = Snippet::new(vec![vec![true, true, true, false, false, false, false, false]]);
/// let out = ext.extract(&s).expect("edge present");
/// assert_eq!(out.edge_position, 2);
/// assert!(out.bit); // even position -> 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntropyExtractor {
    k: u32,
    filter: BubbleFilter,
}

impl EntropyExtractor {
    /// Creates an extractor with down-sampling factor `k` and the given
    /// bubble filter.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32, filter: BubbleFilter) -> Self {
        assert!(k >= 1, "down-sampling factor must be at least 1");
        EntropyExtractor { k, filter }
    }

    /// The down-sampling factor.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The bubble-filter strategy.
    pub fn filter(&self) -> BubbleFilter {
        self.filter
    }

    /// Decodes one snippet into a bit.
    ///
    /// Returns `None` when no edge is present in the down-sampled code
    /// (the missed-edge failure of `m = 32` in Section 5.2 — callers
    /// should count these).
    ///
    /// # Panics
    ///
    /// Panics if the snippet length is not a multiple of `k`
    /// (a configuration error, rejected earlier by
    /// [`DesignParams::validate`](trng_model::params::DesignParams::validate)).
    pub fn extract(&self, snippet: &Snippet) -> Option<ExtractedBit> {
        if let Some(word) = snippet.xor_word() {
            return self.extract_word(word, snippet.taps_per_line() as u32);
        }
        self.extract_unpacked(snippet)
    }

    /// Reference scalar pipeline, kept for lines wider than 64 taps
    /// and as the equivalence oracle for [`EntropyExtractor::extract_word`].
    fn extract_unpacked(&self, snippet: &Snippet) -> Option<ExtractedBit> {
        let combined = snippet.xor_vector();
        let coarse = downsample(&combined, self.k);
        let code = self.filter.apply(&coarse);
        let first = code.windows(2).position(|w| w[0] != w[1])?;
        Some(ExtractedBit {
            bit: first.is_multiple_of(2),
            edge_position: first,
        })
    }

    /// Allocation-free decode of one XOR-combined code word of
    /// `m ≤ 64` taps (tap 0 in the LSB) — the sampling hot path.
    ///
    /// Bit-identical to [`EntropyExtractor::extract`] on a snippet
    /// whose XOR vector packs to `code`: same down-sampling, same
    /// bubble filter, same first-edge priority encode.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `1..=64` or not a multiple of `k`.
    pub fn extract_word(&self, code: u64, m: u32) -> Option<ExtractedBit> {
        let (coarse, width) = downsample_word(code, m, self.k);
        let code = self.filter.apply_word(coarse, width);
        if width < 2 {
            return None;
        }
        // Edge word: bit j set iff code[j] != code[j+1], j < width-1.
        let edges = (code ^ (code >> 1)) & (u64::MAX >> (64 - (width - 1)));
        if edges == 0 {
            return None;
        }
        let first = edges.trailing_zeros() as usize;
        Some(ExtractedBit {
            bit: first.is_multiple_of(2),
            edge_position: first,
        })
    }
}

impl Default for EntropyExtractor {
    /// `k = 1` with the paper's priority bubble handling.
    fn default() -> Self {
        EntropyExtractor::new(1, BubbleFilter::Priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    fn snip(s: &str) -> Snippet {
        Snippet::new(vec![bits(s)])
    }

    #[test]
    fn parity_encoding_matches_position() {
        let ext = EntropyExtractor::default();
        // Edge at boundary 0 -> bit 1.
        assert_eq!(
            ext.extract(&snip("10000000")).unwrap(),
            ExtractedBit {
                bit: true,
                edge_position: 0
            }
        );
        // Edge at boundary 1 -> bit 0.
        assert_eq!(
            ext.extract(&snip("11000000")).unwrap(),
            ExtractedBit {
                bit: false,
                edge_position: 1
            }
        );
        // Edge at boundary 2 -> bit 1.
        assert!(ext.extract(&snip("11100000")).unwrap().bit);
    }

    #[test]
    fn first_edge_wins_on_double_edge() {
        let ext = EntropyExtractor::default();
        // Edges at 1 and 5 (Figure 4 (b)): position 1 decoded.
        let out = ext.extract(&snip("11000011")).unwrap();
        assert_eq!(out.edge_position, 1);
        assert!(!out.bit);
    }

    #[test]
    fn polarity_does_not_matter() {
        let ext = EntropyExtractor::default();
        let a = ext.extract(&snip("11100000")).unwrap();
        let b = ext.extract(&snip("00011111")).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missed_edge_returns_none() {
        let ext = EntropyExtractor::default();
        assert_eq!(ext.extract(&snip("11111111")), None);
        assert_eq!(ext.extract(&snip("00000000")), None);
    }

    #[test]
    fn multi_line_snippet_xors_before_decoding() {
        let ext = EntropyExtractor::default();
        let s = Snippet::new(vec![bits("11110000"), bits("00011111")]);
        // XOR = 11101111: edges at 2 and 3 -> first edge at 2.
        let out = ext.extract(&s).unwrap();
        assert_eq!(out.edge_position, 2);
        assert!(out.bit);
    }

    #[test]
    fn downsampling_rescales_positions() {
        let ext = EntropyExtractor::new(4, BubbleFilter::Priority);
        // 36-bit code with edge between taps 19 and 20 -> combined code
        // (taps 3,7,11,15,19 | 23,27,31,35) = 11111 0000 -> boundary 4.
        let mut c = vec![true; 20];
        c.extend(vec![false; 16]);
        let out = ext.extract(&Snippet::new(vec![c])).unwrap();
        assert_eq!(out.edge_position, 4);
        assert!(out.bit);
    }

    #[test]
    fn downsampling_can_hide_a_bubble() {
        // A bubble at a tap that is dropped by down-sampling vanishes.
        let ext = EntropyExtractor::new(4, BubbleFilter::Priority);
        let mut c = vec![true; 20];
        c.extend(vec![false; 16]);
        c[4] = false; // bubble at tap 4 (not a multiple-of-4 boundary... tap 3 is kept)
        let out = ext.extract(&Snippet::new(vec![c])).unwrap();
        assert_eq!(out.edge_position, 4);
    }

    #[test]
    fn bubble_shifts_priority_decode_but_majority_repairs() {
        // Bubble at tap 2 before the true edge at 4.
        let code = "11011000";
        let prio = EntropyExtractor::new(1, BubbleFilter::Priority);
        let out = prio.extract(&snip(code)).unwrap();
        assert_eq!(out.edge_position, 1); // bubble decoded as the edge

        let maj = EntropyExtractor::new(1, BubbleFilter::Majority3);
        let out = maj.extract(&snip(code)).unwrap();
        assert_eq!(out.edge_position, 4); // repaired to the true edge
    }

    #[test]
    fn packed_word_path_matches_unpacked_reference() {
        // Every filter × every k over pseudo-random 36-tap codes: the
        // packed decode must agree with the scalar reference pipeline
        // in both presence and value of the extracted bit.
        let filters = [
            BubbleFilter::Priority,
            BubbleFilter::Majority3,
            BubbleFilter::None,
        ];
        for &filter in &filters {
            for k in [1u32, 2, 4] {
                let ext = EntropyExtractor::new(k, filter);
                for seed in 0..200u64 {
                    let word = seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left((seed % 61) as u32);
                    let code: Vec<bool> = (0..36).map(|j| word >> j & 1 == 1).collect();
                    let snippet = Snippet::new(vec![code]);
                    let packed = ext.extract_word(snippet.xor_word().unwrap(), 36);
                    let reference = ext.extract_unpacked(&snippet);
                    assert_eq!(packed, reference, "filter {filter:?} k {k} seed {seed}");
                    assert_eq!(ext.extract(&snippet), reference);
                }
            }
        }
    }

    #[test]
    fn wide_snippets_use_the_scalar_fallback() {
        let ext = EntropyExtractor::default();
        let mut code = vec![true; 70];
        code.extend(vec![false; 30]);
        let out = ext.extract(&Snippet::new(vec![code])).unwrap();
        assert_eq!(out.edge_position, 69);
        assert!(!out.bit);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn mismatched_k_panics() {
        let ext = EntropyExtractor::new(4, BubbleFilter::Priority);
        let _ = ext.extract(&snip("110000")); // length 6 not divisible by 4
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = EntropyExtractor::new(0, BubbleFilter::Priority);
    }
}
