//! Restart testing — SP 800-90B §3.1.4-style validation.
//!
//! Modern entropy-source validation requires *restart* data: many
//! short sequences, each from a fresh power-up of the same device.
//! For this TRNG the experiment is pointed: after a restart the ring
//! starts from a deterministic phase, so the offset τ of column `j`
//! (the `j`-th bit after power-up) is *the same in every restart* —
//! the column-wise statistics of the restart matrix sweep out the
//! model's `P1(τ)` curve empirically, and the worst column realizes
//! the paper's worst-case bound (Section 4.3's τ = 0) instead of the
//! time-averaged behaviour continuous operation shows.
//!
//! [`RestartMatrix::worst_column_entropy`] therefore *measures* the
//! entropy lower bound that equation (5) predicts.

use crate::trng::{BuildTrngError, CarryChainTrng, TrngConfig};
use trng_model::entropy::h_shannon;

/// An `r × c` matrix of restart data: row `i` holds the first `c` raw
/// bits after the `i`-th power-up of the same device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartMatrix {
    rows: Vec<Vec<bool>>,
}

impl RestartMatrix {
    /// Collects `rows` restarts of `cols` raw bits each. The device
    /// (process variation) is fixed by the configuration; each restart
    /// gets an independent noise seed derived from `seed0`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn collect(
        config: &TrngConfig,
        rows: usize,
        cols: usize,
        seed0: u64,
    ) -> Result<Self, BuildTrngError> {
        assert!(rows > 0 && cols > 0, "matrix must be non-empty");
        let mut data = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut trng = CarryChainTrng::new(config.clone(), seed0 + i as u64)?;
            data.push(trng.generate_raw(cols));
        }
        Ok(RestartMatrix { rows: data })
    }

    /// Number of restarts (rows).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Bits per restart (columns).
    pub fn cols(&self) -> usize {
        self.rows[0].len()
    }

    /// Ones-fraction of row `i` (one restart's sequence).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_ones_fraction(&self, i: usize) -> f64 {
        let row = &self.rows[i];
        row.iter().filter(|&&b| b).count() as f64 / row.len() as f64
    }

    /// Ones-fraction of column `j` (the `j`-th bit across restarts).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column_ones_fraction(&self, j: usize) -> f64 {
        assert!(j < self.cols(), "column {j} out of range");
        self.rows.iter().filter(|r| r[j]).count() as f64 / self.rows() as f64
    }

    /// Shannon entropy of the worst (most biased) column — the
    /// empirical realization of the model's worst-case-τ lower bound.
    pub fn worst_column_entropy(&self) -> f64 {
        (0..self.cols())
            .map(|j| h_shannon(self.column_ones_fraction(j)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Shannon entropy of the best column.
    pub fn best_column_entropy(&self) -> f64 {
        (0..self.cols())
            .map(|j| h_shannon(self.column_ones_fraction(j)))
            .fold(0.0, f64::max)
    }

    /// SP 800-90B-style restart sanity check: the worst column's
    /// *empirical* entropy must not fall significantly below the
    /// claimed per-bit entropy (here: the model's lower bound minus a
    /// statistical allowance `slack`).
    pub fn passes_restart_check(&self, h_claim: f64, slack: f64) -> bool {
        self.worst_column_entropy() >= h_claim - slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_model::design_space::evaluate;
    use trng_model::params::{DesignParams, PlatformParams};

    /// Ideal, zero-drift configuration: tA an exact multiple of the
    /// stage delay so every column keeps a fixed tau.
    fn zero_drift_config(n_a: u32) -> TrngConfig {
        let mut cfg = TrngConfig::ideal();
        cfg.platform = PlatformParams::new(10_000.0 / 21.0, 17.0, 2.6).expect("valid");
        cfg.design = DesignParams {
            n_a,
            np: 1,
            ..DesignParams::paper_k1()
        };
        cfg
    }

    #[test]
    fn matrix_dimensions() {
        let m = RestartMatrix::collect(&TrngConfig::ideal(), 8, 16, 1).expect("collect");
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 16);
        for i in 0..8 {
            let f = m.row_ones_fraction(i);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn restart_columns_sweep_the_p1_curve() {
        // With zero drift, each column has a frozen tau; columns
        // accumulate jitter differently (column j has j+1 accumulation
        // periods of diffusion from the deterministic start), so early
        // columns are nearly deterministic and late columns approach
        // fair — exactly the sigma_acc ~ sqrt(t) picture.
        let m = RestartMatrix::collect(&zero_drift_config(1), 400, 40, 7).expect("collect");
        let early = h_shannon(m.column_ones_fraction(0));
        let late_avg: f64 = (30..40)
            .map(|j| h_shannon(m.column_ones_fraction(j)))
            .sum::<f64>()
            / 10.0;
        assert!(
            late_avg > early - 0.05,
            "entropy should not degrade with column: early {early}, late {late_avg}"
        );
        // Spread exists: the worst column is visibly below the best.
        assert!(m.best_column_entropy() > m.worst_column_entropy());
    }

    #[test]
    fn worst_column_respects_model_lower_bound_at_high_sigma() {
        // At tA = 40 ns (4 zero-drift periods) sigma_acc ~ 1.4 bins:
        // the model lower bound is ~1; every column must be close.
        let cfg = zero_drift_config(4);
        let point = evaluate(&cfg.platform, &cfg.design).expect("valid");
        assert!(point.h_raw > 0.999, "model bound {}", point.h_raw);
        let m = RestartMatrix::collect(&cfg, 300, 25, 9).expect("collect");
        // Binomial noise at 300 rows: se(p) ~ 0.029 -> H dips allowed.
        assert!(
            m.passes_restart_check(point.h_raw, 0.02),
            "worst column {} vs bound {}",
            m.worst_column_entropy(),
            point.h_raw
        );
    }

    #[test]
    fn restart_detects_overclaimed_entropy() {
        // tA = 10 ns at k = 4 (bins 68 ps): the model bound is ~0.04,
        // but a frozen tau could accidentally sit at a bin boundary
        // where even this configuration looks fair. Give the phase a
        // half-bin (34 ps) deterministic drift per sample so the early
        // columns sweep the full bin-parity period: at least one early
        // column must land near the worst-case tau while sigma_acc is
        // still small (columns diffuse as sqrt(j)), exposing a claim
        // of 0.9 decisively.
        let mut cfg = TrngConfig::ideal();
        cfg.platform = PlatformParams::new((10_000.0 - 34.0) / 21.0, 17.0, 2.6).expect("valid");
        cfg.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            ..DesignParams::paper_k1()
        };
        let m = RestartMatrix::collect(&cfg, 250, 12, 11).expect("collect");
        assert!(
            !m.passes_restart_check(0.9, 0.1),
            "worst column {} should expose the overclaim",
            m.worst_column_entropy()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_matrix() {
        let _ = RestartMatrix::collect(&TrngConfig::ideal(), 0, 10, 0);
    }
}
