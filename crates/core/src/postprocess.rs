//! Run-time XOR post-processing — Section 4.5.
//!
//! The hardware compressor XORs `np` consecutive raw bits into one
//! output bit, improving entropy per bit (equations (6)–(7), modelled
//! in [`trng_model::postprocess`]) at the cost of `np`× throughput.
//! This module is the streaming implementation used on generated
//! bitstreams.

/// Streaming XOR compressor with rate `np`.
///
/// # Examples
///
/// ```
/// use trng_core::postprocess::XorCompressor;
///
/// let mut c = XorCompressor::new(3);
/// assert_eq!(c.push(true), None);
/// assert_eq!(c.push(true), None);
/// assert_eq!(c.push(false), Some(false)); // 1 ^ 1 ^ 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorCompressor {
    np: u32,
    acc: bool,
    count: u32,
}

impl XorCompressor {
    /// Creates a compressor with rate `np` (1 = pass-through).
    ///
    /// # Panics
    ///
    /// Panics if `np == 0`.
    pub fn new(np: u32) -> Self {
        assert!(np >= 1, "compression rate must be at least 1");
        XorCompressor {
            np,
            acc: false,
            count: 0,
        }
    }

    /// The compression rate.
    pub fn rate(&self) -> u32 {
        self.np
    }

    /// Raw bits currently accumulated toward the next output bit
    /// (always less than the rate). Lets batch producers compute the
    /// exact raw-bit demand for a given number of output bits.
    pub fn pending(&self) -> u32 {
        self.count
    }

    /// Feeds one raw bit; returns an output bit every `np` inputs.
    pub fn push(&mut self, bit: bool) -> Option<bool> {
        self.acc ^= bit;
        self.count += 1;
        if self.count == self.np {
            let out = self.acc;
            self.acc = false;
            self.count = 0;
            Some(out)
        } else {
            None
        }
    }

    /// Discards any partial accumulator state.
    pub fn reset(&mut self) {
        self.acc = false;
        self.count = 0;
    }

    /// Compresses a whole slice, discarding the trailing partial group.
    pub fn compress(np: u32, bits: &[bool]) -> Vec<bool> {
        let mut c = XorCompressor::new(np);
        bits.iter().filter_map(|&b| c.push(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_one_is_passthrough() {
        let bits = [true, false, true, true];
        assert_eq!(XorCompressor::compress(1, &bits), bits.to_vec());
    }

    #[test]
    fn parity_groups() {
        // Groups of 2: (1,0) -> 1, (1,1) -> 0, trailing (1) dropped.
        let bits = [true, false, true, true, true];
        assert_eq!(XorCompressor::compress(2, &bits), vec![true, false]);
    }

    #[test]
    fn streaming_matches_batch() {
        let bits: Vec<bool> = (0..100).map(|i| (i * 7 + 3) % 5 < 2).collect();
        for np in [1u32, 2, 3, 7, 13] {
            let batch = XorCompressor::compress(np, &bits);
            let mut c = XorCompressor::new(np);
            let streamed: Vec<bool> = bits.iter().filter_map(|&b| c.push(b)).collect();
            assert_eq!(batch, streamed, "np = {np}");
        }
    }

    #[test]
    fn reset_discards_partial_group() {
        let mut c = XorCompressor::new(3);
        assert_eq!(c.push(true), None);
        c.reset();
        assert_eq!(c.push(false), None);
        assert_eq!(c.push(false), None);
        assert_eq!(c.push(false), Some(false));
    }

    #[test]
    fn compression_reduces_bias_statistically() {
        // Independent 70/30 biased bits: the piling-up lemma predicts
        // bias 2^2 * 0.2^3 = 0.032 after XOR-3, down from 0.2.
        use trng_fpga_sim::rng::SimRng;
        let mut rng = SimRng::seed_from(123);
        let bits: Vec<bool> = (0..90_000).map(|_| rng.bernoulli(0.7)).collect();
        let out = XorCompressor::compress(3, &bits);
        let ones_pp = out.iter().filter(|&&b| b).count() as f64 / out.len() as f64;
        assert!(
            (ones_pp - 0.5).abs() < 0.045,
            "post bias {}",
            (ones_pp - 0.5).abs()
        );
        assert!(
            (ones_pp - 0.5).abs() > 0.015,
            "post bias {}",
            (ones_pp - 0.5).abs()
        );
    }

    #[test]
    fn output_length_is_floor_division() {
        let bits = vec![true; 20];
        assert_eq!(XorCompressor::compress(7, &bits).len(), 2);
        assert_eq!(XorCompressor::compress(21, &bits).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_rate() {
        let _ = XorCompressor::new(0);
    }
}
