//! Simplified self-timed-ring (STR) TRNG baseline — the Table-2
//! throughput competitor (Cherkaoui, Fischer, Fesquet, Aubert,
//! CHES 2013, the paper's reference \[1\]).
//!
//! An STR circulates many events concurrently; the *Charlie effect*
//! (an analog interaction in Muller-C-element stages) equalizes their
//! spacing, so an `L`-stage STR presents `L` uniformly spaced phases
//! of one period — an effective sampling resolution of `T/L` without
//! any carry-chain TDC. Each stage output is sampled by a flip-flop
//! and the bits are XORed, exactly like the reference design.
//!
//! The model here is phenomenological but captures what matters for
//! the entropy comparison:
//!
//! * each event's phase performs a jittered drift (white noise per
//!   traversal, equation (1)-style accumulation);
//! * a spring coupling between neighbouring events models the Charlie
//!   effect's spacing equalization (without it the events would
//!   collide and the multi-phase resolution would collapse);
//! * sampling XORs the `L` phase comparator outputs.
//!
//! The paper's point stands quantitatively: the STR buys resolution
//! with *events* (511 stages, > 511 LUTs), the carry chain buys it
//! with *sampling* (67 slices) — see `resources` for the area side.

use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

/// Configuration of the simplified STR TRNG.
#[derive(Debug, Clone)]
pub struct SelfTimedConfig {
    /// Ring stages / concurrent events `L` (reference design: 511).
    pub stages: usize,
    /// Oscillation period of the event train.
    pub period: Ps,
    /// Phase jitter per event per traversal (standard deviation).
    pub sigma_event: Ps,
    /// Charlie-effect coupling strength per traversal, in `(0, 1)`:
    /// the fraction of the spacing error corrected each pass.
    pub coupling: f64,
    /// Sampling interval (accumulation time).
    pub t_a: Ps,
}

impl SelfTimedConfig {
    /// A 511-stage reference-like configuration: 9 ns period
    /// (~111 MHz), 2.6 ps event jitter, moderate coupling, sampled at
    /// 10 ns.
    pub fn reference() -> Self {
        SelfTimedConfig {
            stages: 511,
            period: Ps::from_ns(9.0),
            sigma_event: Ps::from_ps(2.6),
            coupling: 0.3,
            t_a: Ps::from_ns(10.0),
        }
    }

    /// Effective sampling resolution `T / L`.
    pub fn resolution(&self) -> Ps {
        self.period / self.stages as f64
    }
}

/// The simplified self-timed-ring TRNG.
///
/// # Examples
///
/// ```
/// use trng_core::self_timed::{SelfTimedConfig, SelfTimedTrng};
///
/// let mut trng = SelfTimedTrng::new(SelfTimedConfig::reference(), 1)?;
/// let bits = trng.generate(64);
/// assert_eq!(bits.len(), 64);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct SelfTimedTrng {
    config: SelfTimedConfig,
    /// Event phases in units of one period, kept sorted mod 1.
    phases: Vec<f64>,
    rng: SimRng,
    t: Ps,
}

impl SelfTimedTrng {
    /// Builds the generator with events initially equally spaced.
    ///
    /// # Errors
    ///
    /// Returns a message for non-positive parameters or a coupling
    /// outside `(0, 1)`.
    pub fn new(config: SelfTimedConfig, seed: u64) -> Result<Self, String> {
        if config.stages < 3 {
            return Err(format!(
                "STR needs at least 3 stages, got {}",
                config.stages
            ));
        }
        if config.period.as_ps() <= 0.0 || config.t_a.as_ps() <= 0.0 {
            return Err("period and accumulation time must be positive".to_string());
        }
        if config.sigma_event.as_ps() < 0.0 {
            return Err("event jitter must be non-negative".to_string());
        }
        if !(0.0..1.0).contains(&config.coupling) {
            return Err(format!(
                "coupling must be in [0, 1), got {}",
                config.coupling
            ));
        }
        let l = config.stages;
        let phases = (0..l).map(|i| i as f64 / l as f64).collect();
        Ok(SelfTimedTrng {
            config,
            phases,
            rng: SimRng::seed_from(seed),
            t: Ps::ZERO,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SelfTimedConfig {
        &self.config
    }

    /// Advances all events by `traversals` ring passes: drift + jitter
    /// + Charlie-effect spacing correction.
    fn advance(&mut self, traversals: f64) {
        let l = self.phases.len();
        let sigma_rel = self.config.sigma_event / self.config.period;
        // Jitter accumulates per traversal; several traversals batch
        // into one Gaussian step of matching variance.
        let step_sigma = sigma_rel * traversals.sqrt();
        for p in &mut self.phases {
            *p += self.rng.gaussian(0.0, step_sigma);
        }
        // Charlie effect: relax each event toward the midpoint of its
        // neighbours (discrete diffusion on the ring), strength scaled
        // by elapsed traversals (capped for stability).
        let kappa = (self.config.coupling * traversals).min(0.45);
        let old = self.phases.clone();
        for i in 0..l {
            let prev = old[(i + l - 1) % l] + if i == 0 { -1.0 } else { 0.0 };
            let next = old[(i + 1) % l] + if i == l - 1 { 1.0 } else { 0.0 };
            let target = (prev + next) / 2.0;
            self.phases[i] = old[i] + kappa * (target - old[i]);
        }
    }

    /// Generates the next bit: advance `tA`, sample and XOR all stage
    /// comparator outputs against the clock edge.
    pub fn next_bit(&mut self) -> bool {
        self.t += self.config.t_a;
        let traversals = self.config.t_a / self.config.period;
        self.advance(traversals);
        // The clock edge at absolute phase (t / T) mod 1; each stage
        // output is high for half a period around its event phase.
        let clock_phase = (self.t / self.config.period).rem_euclid(1.0);
        let mut acc = false;
        for &p in &self.phases {
            let rel = (clock_phase - p).rem_euclid(1.0);
            acc ^= rel < 0.5;
        }
        acc
    }

    /// Generates `count` bits.
    pub fn generate(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.next_bit()).collect()
    }

    /// Current spacing non-uniformity: standard deviation of
    /// neighbouring phase gaps relative to the ideal `1/L`.
    pub fn spacing_dispersion(&self) -> f64 {
        let l = self.phases.len();
        let mut sorted: Vec<f64> = self.phases.iter().map(|p| p.rem_euclid(1.0)).collect();
        sorted.sort_by(f64::total_cmp);
        let ideal = 1.0 / l as f64;
        let mut sum2 = 0.0;
        for i in 0..l {
            let gap = if i + 1 < l {
                sorted[i + 1] - sorted[i]
            } else {
                1.0 + sorted[0] - sorted[l - 1]
            };
            sum2 += (gap - ideal) * (gap - ideal);
        }
        (sum2 / l as f64).sqrt() / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_matches_reference_claim() {
        // 9 ns / 511 ~ 17.6 ps: comparable to the carry chain's 17 ps —
        // which is exactly why both designs reach tens of Mb/s.
        let r = SelfTimedConfig::reference().resolution();
        assert!((r.as_ps() - 17.6).abs() < 0.2, "resolution {r}");
    }

    #[test]
    fn charlie_effect_keeps_events_spaced() {
        let mut trng = SelfTimedTrng::new(SelfTimedConfig::reference(), 3).expect("build");
        let _ = trng.generate(2_000);
        // Without coupling the gap dispersion would diverge as a random
        // walk; with it, it must stay bounded well below total collapse.
        let disp = trng.spacing_dispersion();
        assert!(disp < 1.0, "spacing dispersion {disp}");
    }

    #[test]
    fn without_coupling_spacing_degrades() {
        let weak = SelfTimedConfig {
            coupling: 0.001,
            ..SelfTimedConfig::reference()
        };
        let strong = SelfTimedConfig::reference();
        let disp = |cfg: SelfTimedConfig| {
            let mut t = SelfTimedTrng::new(cfg, 5).expect("build");
            let _ = t.generate(2_000);
            t.spacing_dispersion()
        };
        assert!(disp(weak) > 2.0 * disp(strong));
    }

    #[test]
    fn output_is_balanced_and_lively() {
        let mut trng = SelfTimedTrng::new(SelfTimedConfig::reference(), 7).expect("build");
        let bits = trng.generate(6_000);
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.05, "ones {ones}");
        let flips =
            bits.windows(2).filter(|w| w[0] != w[1]).count() as f64 / (bits.len() - 1) as f64;
        assert!(flips > 0.3, "flip rate {flips}");
    }

    #[test]
    fn fewer_stages_means_coarser_resolution_and_worse_bits() {
        // An 7-stage "STR" has ~1.3 ns resolution: at tA = 10 ns the
        // jitter (8 ps) cannot cover a bin and the output is sticky.
        let coarse = SelfTimedConfig {
            stages: 7,
            ..SelfTimedConfig::reference()
        };
        let mut trng = SelfTimedTrng::new(coarse, 9).expect("build");
        let bits = trng.generate(4_000);
        let flips =
            bits.windows(2).filter(|w| w[0] != w[1]).count() as f64 / (bits.len() - 1) as f64;
        let mut fine = SelfTimedTrng::new(SelfTimedConfig::reference(), 9).expect("build");
        let fine_bits = fine.generate(4_000);
        let fine_flips = fine_bits.windows(2).filter(|w| w[0] != w[1]).count() as f64
            / (fine_bits.len() - 1) as f64;
        assert!(
            flips < fine_flips,
            "coarse {flips} should be stickier than fine {fine_flips}"
        );
    }

    #[test]
    fn reproducible_with_seed() {
        let mut a = SelfTimedTrng::new(SelfTimedConfig::reference(), 11).expect("build");
        let mut b = SelfTimedTrng::new(SelfTimedConfig::reference(), 11).expect("build");
        assert_eq!(a.generate(200), b.generate(200));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut cfg = SelfTimedConfig::reference();
        cfg.stages = 2;
        assert!(SelfTimedTrng::new(cfg, 0).is_err());
        let mut cfg = SelfTimedConfig::reference();
        cfg.coupling = 1.5;
        assert!(SelfTimedTrng::new(cfg, 0).is_err());
        let mut cfg = SelfTimedConfig::reference();
        cfg.period = Ps::ZERO;
        assert!(SelfTimedTrng::new(cfg, 0).is_err());
    }
}
