//! Embedded on-the-fly health tests.
//!
//! The paper's conclusion names "developing embedded tests for
//! on-the-fly evaluation" as future work; AIS-31 (the evaluation
//! framework of Section 2) requires a total-failure test and online
//! tests in a certified TRNG. This module implements the standard
//! continuous health tests used for that purpose:
//!
//! * [`RepetitionCountTest`] — SP 800-90B §4.4.1: catches a source
//!   stuck at one value (total failure of the oscillator or sampler);
//! * [`AdaptiveProportionTest`] — SP 800-90B §4.4.2: catches large
//!   bias developing over a window;
//! * [`OnlineHealth`] — combines both plus a missed-edge-rate alarm
//!   fed from [`TrngStats`](crate::trng::TrngStats).
//!
//! Cutoffs are derived from the claimed min-entropy `H` at a false
//! positive rate of `2^-20` per test evaluation, per the SP 800-90B
//! formulas.

use core::fmt;

/// Outcome of feeding a sample to a health test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthStatus {
    /// No defect detected.
    Ok,
    /// The test's cutoff was exceeded — the source must be considered
    /// failed until re-validated.
    Alarm,
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Alarm => "ALARM",
        })
    }
}

/// SP 800-90B repetition count test for a binary source.
///
/// Alarms when the same bit repeats `C = 1 + ceil(20 / H)` times,
/// where `H` is the claimed min-entropy per bit and 20 = −log2 of the
/// target false-positive rate.
///
/// # Examples
///
/// ```
/// use trng_core::health::{HealthStatus, RepetitionCountTest};
///
/// let mut t = RepetitionCountTest::new(0.9);
/// let status = (0..100).map(|_| t.push(true)).last().unwrap();
/// assert_eq!(status, HealthStatus::Alarm); // a stuck source trips it
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepetitionCountTest {
    cutoff: u32,
    last: Option<bool>,
    run: u32,
    alarmed: bool,
}

impl RepetitionCountTest {
    /// Creates the test for a claimed min-entropy `h` per bit.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not in `(0, 1]`.
    pub fn new(h: f64) -> Self {
        assert!(
            h > 0.0 && h <= 1.0,
            "min-entropy must be in (0, 1], got {h}"
        );
        let cutoff = 1 + (20.0 / h).ceil() as u32;
        RepetitionCountTest {
            cutoff,
            last: None,
            run: 0,
            alarmed: false,
        }
    }

    /// The repetition cutoff `C`.
    pub fn cutoff(&self) -> u32 {
        self.cutoff
    }

    /// Feeds one bit.
    pub fn push(&mut self, bit: bool) -> HealthStatus {
        if self.last == Some(bit) {
            self.run += 1;
        } else {
            self.last = Some(bit);
            self.run = 1;
        }
        if self.run >= self.cutoff {
            self.alarmed = true;
        }
        self.status()
    }

    /// Latched status: once alarmed, stays alarmed until reset.
    pub fn status(&self) -> HealthStatus {
        if self.alarmed {
            HealthStatus::Alarm
        } else {
            HealthStatus::Ok
        }
    }

    /// Clears the latch and run state.
    pub fn reset(&mut self) {
        self.last = None;
        self.run = 0;
        self.alarmed = false;
    }
}

/// SP 800-90B adaptive proportion test for a binary source
/// (window 1024).
///
/// Counts occurrences of the first bit of each window within that
/// window; alarms if the count reaches the cutoff
/// `C = 1 + ceil(W·p + z·sqrt(W·p·(1−p)))` with `p = 2^−H` and
/// `z = 5.3` (normal approximation of the binomial `2^−20` quantile —
/// within ±2 of the exact SP 800-90B table values for binary sources).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveProportionTest {
    cutoff: u32,
    window: u32,
    reference: Option<bool>,
    count: u32,
    seen: u32,
    alarmed: bool,
}

/// Window size of the adaptive proportion test for binary sources.
pub const ADAPTIVE_PROPORTION_WINDOW: u32 = 1024;

impl AdaptiveProportionTest {
    /// Creates the test for a claimed min-entropy `h` per bit.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not in `(0, 1]`.
    pub fn new(h: f64) -> Self {
        assert!(
            h > 0.0 && h <= 1.0,
            "min-entropy must be in (0, 1], got {h}"
        );
        let w = f64::from(ADAPTIVE_PROPORTION_WINDOW);
        let p = 2f64.powf(-h);
        let cutoff = 1.0 + (w * p + 5.3 * (w * p * (1.0 - p)).sqrt()).ceil();
        AdaptiveProportionTest {
            cutoff: (cutoff as u32).min(ADAPTIVE_PROPORTION_WINDOW),
            window: ADAPTIVE_PROPORTION_WINDOW,
            reference: None,
            count: 0,
            seen: 0,
            alarmed: false,
        }
    }

    /// The proportion cutoff `C`.
    pub fn cutoff(&self) -> u32 {
        self.cutoff
    }

    /// Feeds one bit.
    pub fn push(&mut self, bit: bool) -> HealthStatus {
        match self.reference {
            None => {
                self.reference = Some(bit);
                self.count = 1;
                self.seen = 1;
            }
            Some(r) => {
                self.seen += 1;
                if bit == r {
                    self.count += 1;
                }
                if self.count >= self.cutoff {
                    self.alarmed = true;
                }
                if self.seen == self.window {
                    self.reference = None;
                }
            }
        }
        self.status()
    }

    /// Latched status.
    pub fn status(&self) -> HealthStatus {
        if self.alarmed {
            HealthStatus::Alarm
        } else {
            HealthStatus::Ok
        }
    }

    /// Clears the latch and window state.
    pub fn reset(&mut self) {
        self.reference = None;
        self.count = 0;
        self.seen = 0;
        self.alarmed = false;
    }
}

/// Combined online health monitor: repetition count + adaptive
/// proportion + missed-edge-rate alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineHealth {
    repetition: RepetitionCountTest,
    proportion: AdaptiveProportionTest,
    /// Maximum tolerated missed-edge rate before alarm.
    max_missed_edge_rate: f64,
    missed_alarm: bool,
}

impl OnlineHealth {
    /// Creates the monitor for a claimed min-entropy `h` per raw bit.
    ///
    /// The missed-edge alarm trips at a 1 % rate, comfortably above the
    /// paper's measured 0.8 % failure signature for undersized `m`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not in `(0, 1]`.
    pub fn new(h: f64) -> Self {
        OnlineHealth {
            repetition: RepetitionCountTest::new(h),
            proportion: AdaptiveProportionTest::new(h),
            max_missed_edge_rate: 0.01,
            missed_alarm: false,
        }
    }

    /// Feeds one raw bit to both continuous tests.
    pub fn push(&mut self, bit: bool) -> HealthStatus {
        let r = self.repetition.push(bit);
        let p = self.proportion.push(bit);
        if r == HealthStatus::Alarm || p == HealthStatus::Alarm {
            HealthStatus::Alarm
        } else {
            self.status()
        }
    }

    /// Reports the observed missed-edge statistics (e.g. from
    /// [`TrngStats`](crate::trng::TrngStats)).
    pub fn report_missed_edges(&mut self, missed: u64, samples: u64) -> HealthStatus {
        if samples >= 1000 && (missed as f64 / samples as f64) > self.max_missed_edge_rate {
            self.missed_alarm = true;
        }
        self.status()
    }

    /// Combined latched status.
    pub fn status(&self) -> HealthStatus {
        if self.missed_alarm
            || self.repetition.status() == HealthStatus::Alarm
            || self.proportion.status() == HealthStatus::Alarm
        {
            HealthStatus::Alarm
        } else {
            HealthStatus::Ok
        }
    }

    /// Clears all latches.
    pub fn reset(&mut self) {
        self.repetition.reset();
        self.proportion.reset();
        self.missed_alarm = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_cutoff_formula() {
        assert_eq!(RepetitionCountTest::new(1.0).cutoff(), 21);
        assert_eq!(RepetitionCountTest::new(0.5).cutoff(), 41);
        assert_eq!(RepetitionCountTest::new(0.99).cutoff(), 1 + 21);
    }

    #[test]
    fn repetition_trips_on_stuck_source() {
        let mut t = RepetitionCountTest::new(1.0);
        for i in 0..20 {
            assert_eq!(t.push(true), HealthStatus::Ok, "bit {i}");
        }
        assert_eq!(t.push(true), HealthStatus::Alarm); // 21st repeat
    }

    #[test]
    fn repetition_tolerates_alternating_bits() {
        let mut t = RepetitionCountTest::new(0.5);
        for i in 0..10_000 {
            assert_eq!(t.push(i % 2 == 0), HealthStatus::Ok);
        }
    }

    #[test]
    fn repetition_latches_until_reset() {
        let mut t = RepetitionCountTest::new(1.0);
        for _ in 0..21 {
            let _ = t.push(false);
        }
        assert_eq!(t.status(), HealthStatus::Alarm);
        assert_eq!(t.push(true), HealthStatus::Alarm); // still latched
        t.reset();
        assert_eq!(t.push(true), HealthStatus::Ok);
    }

    #[test]
    fn proportion_cutoff_is_sane() {
        // H = 1: p = 0.5, C ~ 1 + 512 + 5.3*16 = ~598.
        let t = AdaptiveProportionTest::new(1.0);
        assert!((590..=610).contains(&t.cutoff()), "cutoff {}", t.cutoff());
        // Lower entropy -> larger allowed proportion.
        assert!(AdaptiveProportionTest::new(0.3).cutoff() > t.cutoff());
    }

    #[test]
    fn proportion_passes_balanced_stream() {
        let mut t = AdaptiveProportionTest::new(0.9);
        // A pseudo-balanced pattern.
        for i in 0..20_000u32 {
            let bit = (i.wrapping_mul(2654435761) >> 16) & 1 == 1;
            assert_eq!(t.push(bit), HealthStatus::Ok, "at {i}");
        }
    }

    #[test]
    fn proportion_trips_on_heavy_bias() {
        let mut t = AdaptiveProportionTest::new(0.9);
        let mut tripped = false;
        for i in 0..2048 {
            // 95 % ones.
            let bit = i % 20 != 0;
            if t.push(bit) == HealthStatus::Alarm {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "adaptive proportion should catch 95 % bias");
    }

    #[test]
    fn online_health_combines_tests() {
        let mut h = OnlineHealth::new(0.9);
        for _ in 0..100 {
            let _ = h.push(true);
        }
        assert_eq!(h.status(), HealthStatus::Alarm); // repetition tripped
        h.reset();
        assert_eq!(h.status(), HealthStatus::Ok);
    }

    #[test]
    fn missed_edge_alarm() {
        let mut h = OnlineHealth::new(0.9);
        // Below threshold and below minimum sample count: no alarm.
        assert_eq!(h.report_missed_edges(5, 100), HealthStatus::Ok);
        assert_eq!(h.report_missed_edges(5, 1000), HealthStatus::Ok);
        // 2 % missed edges over enough samples: alarm.
        assert_eq!(h.report_missed_edges(20, 1000), HealthStatus::Alarm);
    }

    #[test]
    fn alarm_recovery_requires_explicit_reset() {
        // A stuck-source burst must latch the alarm, and feeding
        // arbitrarily many healthy post-alarm samples must NOT clear
        // it — recovery is an explicit supervisory decision (AIS-31
        // requires re-validation, not self-healing).
        let mut h = OnlineHealth::new(0.9);
        for _ in 0..40 {
            let _ = h.push(true); // stuck burst
        }
        assert_eq!(h.status(), HealthStatus::Alarm);
        for i in 0..20_000u32 {
            let healthy = (i.wrapping_mul(2654435761) >> 16) & 1 == 1;
            assert_eq!(h.push(healthy), HealthStatus::Alarm, "post-alarm bit {i}");
        }
        // Reset re-arms; a healthy stream then stays clean.
        h.reset();
        for i in 0..20_000u32 {
            let healthy = (i.wrapping_mul(2654435761) >> 16) & 1 == 1;
            assert_eq!(h.push(healthy), HealthStatus::Ok, "post-reset bit {i}");
        }
    }

    #[test]
    fn post_alarm_samples_do_not_corrupt_rearmed_state() {
        // Samples fed while alarmed must not poison the run/window
        // counters in a way that causes a spurious alarm after reset:
        // reset clears *all* accumulated state, so a fresh stuck run
        // needs the full cutoff again to trip.
        let mut t = RepetitionCountTest::new(1.0);
        for _ in 0..21 {
            let _ = t.push(false);
        }
        assert_eq!(t.status(), HealthStatus::Alarm);
        // Keep feeding the stuck value while latched.
        for _ in 0..100 {
            let _ = t.push(false);
        }
        t.reset();
        // 20 repeats after reset: one short of the cutoff — still Ok.
        for i in 0..20 {
            assert_eq!(t.push(false), HealthStatus::Ok, "repeat {i}");
        }
        assert_eq!(t.push(false), HealthStatus::Alarm);
    }

    #[test]
    fn adaptive_proportion_recovers_after_reset() {
        let mut t = AdaptiveProportionTest::new(0.9);
        let mut tripped = false;
        for _ in 0..2048 {
            if t.push(true) == HealthStatus::Alarm {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        t.reset();
        for i in 0..10_000u32 {
            let healthy = (i.wrapping_mul(2654435761) >> 16) & 1 == 1;
            assert_eq!(t.push(healthy), HealthStatus::Ok, "post-reset bit {i}");
        }
    }

    #[test]
    fn cutoff_derivation_at_claimed_entropy_boundaries() {
        // H = 1 (the upper boundary): C = 1 + ceil(20/1) = 21.
        assert_eq!(RepetitionCountTest::new(1.0).cutoff(), 21);
        // The 0.05 floor used by `claimed_min_entropy`: C = 401.
        assert_eq!(RepetitionCountTest::new(0.05).cutoff(), 401);
        // Cutoffs are monotonically non-increasing in H.
        let mut prev = u32::MAX;
        for h in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let c = RepetitionCountTest::new(h).cutoff();
            assert!(c <= prev, "cutoff not monotone at h = {h}");
            prev = c;
        }
        // Adaptive proportion: the cutoff can never exceed the window
        // (at tiny H the binomial mean approaches W).
        for h in [0.01, 0.05, 0.5, 1.0] {
            let c = AdaptiveProportionTest::new(h).cutoff();
            assert!(
                c <= ADAPTIVE_PROPORTION_WINDOW,
                "cutoff {c} exceeds window at h = {h}"
            );
        }
        // And it is non-increasing in H as well.
        assert!(
            AdaptiveProportionTest::new(0.3).cutoff() >= AdaptiveProportionTest::new(1.0).cutoff()
        );
    }

    #[test]
    fn missed_edge_alarm_latches_like_the_others() {
        let mut h = OnlineHealth::new(0.9);
        assert_eq!(h.report_missed_edges(20, 1000), HealthStatus::Alarm);
        // Healthy reports afterwards do not unlatch.
        assert_eq!(h.report_missed_edges(0, 100_000), HealthStatus::Alarm);
        h.reset();
        assert_eq!(h.report_missed_edges(0, 100_000), HealthStatus::Ok);
    }

    #[test]
    fn status_display() {
        assert_eq!(format!("{}", HealthStatus::Ok), "ok");
        assert_eq!(format!("{}", HealthStatus::Alarm), "ALARM");
    }

    #[test]
    #[should_panic(expected = "min-entropy must be in (0, 1]")]
    fn rejects_bad_entropy_claim() {
        let _ = RepetitionCountTest::new(0.0);
    }
}
