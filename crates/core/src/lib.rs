//! Carry-chain entropy-extraction TRNG — the primary contribution of
//! *"Highly Efficient Entropy Extraction for True Random Number
//! Generators on FPGAs"* (Rozic, Yang, Dehaene, Verbauwhede —
//! DAC 2015), reproduced in simulation.
//!
//! The crate assembles the paper's architecture on top of the
//! [`trng_fpga_sim`] substrate and the [`trng_model`] stochastic model:
//!
//! * [`snippet`] — raw TDC captures and their Figure-4 taxonomy;
//! * [`extractor`] — XOR combine + priority-encoded first-edge LSB
//!   (Figure 5), with pluggable [`bubble`] filtering and
//!   [`downsample`]-by-`k` support;
//! * [`trng`] — the complete [`CarryChainTrng`] generator;
//! * [`elementary`] — the elementary-TRNG baseline of Section 5.3;
//! * [`postprocess`] — streaming XOR compression (Section 4.5);
//! * [`health`] / [`selftest`] — embedded start-up and online tests
//!   (the paper's stated future work, per AIS-31 / SP 800-90B
//!   practice);
//! * [`von_neumann`] — the classical alternative post-processor, for
//!   ablation against XOR;
//! * [`rng_adapter`] — a [`trng_testkit::prng::RngCore`] view of the generator;
//! * [`resources`] — slice-count estimation reproducing Table 2.
//!
//! # Quickstart
//!
//! ```
//! use trng_core::trng::{CarryChainTrng, TrngConfig};
//!
//! // The paper's 14.3 Mb/s configuration (k = 1, tA = 10 ns, np = 7).
//! let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 42)?;
//! let bits = trng.generate_postprocessed(128);
//! assert_eq!(bits.len(), 128);
//! # Ok::<(), trng_core::trng::BuildTrngError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bubble;
pub mod downsample;
pub mod elementary;
pub mod extractor;
pub mod health;
pub mod postprocess;
pub mod resources;
pub mod restart;
pub mod rng_adapter;
pub mod rtl;
pub mod self_timed;
pub mod selftest;
pub mod snippet;
pub mod trng;
pub mod von_neumann;

pub use bubble::BubbleFilter;
pub use elementary::{ElementaryConfig, ElementaryTrng};
pub use extractor::{EntropyExtractor, ExtractedBit};
pub use health::{HealthStatus, OnlineHealth};
pub use postprocess::XorCompressor;
pub use resources::{estimate, estimate_usage, ResourceBreakdown};
pub use restart::RestartMatrix;
pub use rng_adapter::TrngRng;
pub use rtl::{extract_packed, PackedWord};
pub use self_timed::{SelfTimedConfig, SelfTimedTrng};
pub use selftest::{
    claimed_min_entropy, run_startup_test, SelfTestError, SelfTestingTrng, StartupReport,
};
pub use snippet::{Snippet, SnippetKind};
pub use trng::{BuildTrngError, CarryChainTrng, TrngConfig, TrngStats};
pub use von_neumann::VonNeumann;

#[cfg(test)]
mod thread_safety {
    //! C-SEND-SYNC: generators move across threads (the benchmark
    //! harness parallelizes sequence generation).

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn generators_are_send_and_sync() {
        assert_send::<crate::trng::CarryChainTrng>();
        assert_sync::<crate::trng::CarryChainTrng>();
        assert_send::<crate::elementary::ElementaryTrng>();
        assert_send::<crate::selftest::SelfTestingTrng>();
        assert_send::<crate::rng_adapter::TrngRng>();
        assert_send::<crate::restart::RestartMatrix>();
    }

    #[test]
    fn parallel_generation_works() {
        let bits: Vec<Vec<bool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|s| {
                    scope.spawn(move || {
                        let cfg = crate::trng::TrngConfig::paper_k1();
                        let mut trng = crate::trng::CarryChainTrng::new(cfg, s).expect("build");
                        trng.generate_raw(500)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        assert_eq!(bits.len(), 4);
        // Different seeds produce different streams.
        assert_ne!(bits[0], bits[1]);
    }
}
