//! Self-testing TRNG wrapper — the paper's stated future work
//! ("developing embedded tests for on-the-fly evaluation") as a
//! concrete component.
//!
//! AIS-31-class TRNGs gate their output behind two mechanisms:
//!
//! * a **start-up test** executed once after reset, before any bit is
//!   released (here: the FIPS 140-2-style quartet on the first
//!   post-processed sample, plus a missed-edge check on the raw
//!   stream);
//! * **continuous online tests** on the raw (pre-conditioning) bits
//!   (here: [`OnlineHealth`] — repetition count + adaptive proportion
//!   at the model's claimed min-entropy).
//!
//! [`SelfTestingTrng`] wires both around a [`CarryChainTrng`]; bits
//! only flow while the tests hold, and any alarm latches the generator
//! into a failed state that requires an explicit
//! [`reset`](SelfTestingTrng::reset).

use crate::health::{HealthStatus, OnlineHealth};
use crate::postprocess::XorCompressor;
use crate::trng::{BuildTrngError, CarryChainTrng, TrngConfig};

use core::fmt;
use std::error::Error;

/// Why the generator refuses to emit bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfTestError {
    /// The start-up test failed; the source never went online.
    StartupFailed,
    /// A continuous test tripped during operation.
    OnlineAlarm,
}

impl fmt::Display for SelfTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelfTestError::StartupFailed => write!(f, "start-up statistical test failed"),
            SelfTestError::OnlineAlarm => write!(f, "continuous online test alarm"),
        }
    }
}

impl Error for SelfTestError {}

/// Number of post-processed bits consumed by the start-up test.
pub const STARTUP_BITS: usize = 2_048;

/// A TRNG with embedded start-up and online tests.
///
/// # Examples
///
/// ```
/// use trng_core::selftest::SelfTestingTrng;
/// use trng_core::trng::TrngConfig;
///
/// let mut trng = SelfTestingTrng::new(TrngConfig::paper_k1(), 7)?;
/// let bits = trng.generate(64).expect("healthy source");
/// assert_eq!(bits.len(), 64);
/// # Ok::<(), trng_core::trng::BuildTrngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SelfTestingTrng {
    inner: CarryChainTrng,
    compressor: XorCompressor,
    health: OnlineHealth,
    state: State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Online,
    Failed(SelfTestError),
}

impl SelfTestingTrng {
    /// Builds the generator and runs the start-up test.
    ///
    /// The claimed min-entropy for the online tests is taken from the
    /// stochastic model's worst-case bound for the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTrngError`] for invalid configurations. A failed
    /// start-up test does *not* error here — it latches the instance
    /// into the failed state, visible via [`SelfTestingTrng::status`]
    /// (matching hardware, where construction and self-test are
    /// separate events).
    pub fn new(config: TrngConfig, seed: u64) -> Result<Self, BuildTrngError> {
        let point = trng_model::design_space::evaluate(&config.platform, &config.design)?;
        let np = config.design.np;
        let mut inner = CarryChainTrng::new(config, seed)?;
        // The online-test claim is the model's worst-case min-entropy
        // *derated by half*: the raw stream is not i.i.d. — the
        // deterministic phase drift and flicker wander produce longer
        // same-bit runs than an i.i.d. source of equal entropy, so
        // thresholds derived straight from the worst-case bound cause
        // percent-level false alarms while embedded tests target
        // ~2^-20 (SP 800-90B). Halving the claim widens the repetition
        // cutoff to cover the drift patterns while still catching
        // order-of-magnitude entropy loss. Floored so heavily biased
        // configurations still get working (if strict) tests.
        let claim = (point.h_min_raw * 0.5).clamp(0.05, 1.0);
        let mut health = OnlineHealth::new(claim);

        // --- start-up test -------------------------------------------
        let mut compressor = XorCompressor::new(np);
        let mut startup = Vec::with_capacity(STARTUP_BITS);
        let mut ones = 0usize;
        let mut longest_run = 0usize;
        let mut run = 0usize;
        let mut prev = None;
        while startup.len() < STARTUP_BITS {
            let raw = inner.next_raw_bit();
            let _ = health.push(raw);
            if let Some(bit) = compressor.push(raw) {
                ones += usize::from(bit);
                if prev == Some(bit) {
                    run += 1;
                } else {
                    run = 1;
                    prev = Some(bit);
                }
                longest_run = longest_run.max(run);
                startup.push(bit);
            }
        }
        // Monobit band (5.5 sigma for 2048 bits: 1024 +- 125) and a
        // long-run limit of 34 (AIS-31 T4's bound).
        let monobit_ok = (899..=1149).contains(&ones);
        let long_run_ok = longest_run < 34;
        let missed_ok = inner.stats().missed_edge_rate() < 0.01 || inner.stats().samples < 1000;
        let startup_ok =
            monobit_ok && long_run_ok && missed_ok && health.status() == HealthStatus::Ok;

        Ok(SelfTestingTrng {
            inner,
            compressor,
            health,
            state: if startup_ok {
                State::Online
            } else {
                State::Failed(SelfTestError::StartupFailed)
            },
        })
    }

    /// Current status: `Ok(())` when online.
    ///
    /// # Errors
    ///
    /// The latched failure, if any.
    pub fn status(&self) -> Result<(), SelfTestError> {
        match self.state {
            State::Online => Ok(()),
            State::Failed(e) => Err(e),
        }
    }

    /// The wrapped generator's statistics.
    pub fn stats(&self) -> &crate::trng::TrngStats {
        self.inner.stats()
    }

    /// Generates one post-processed bit, or the latched failure.
    ///
    /// # Errors
    ///
    /// [`SelfTestError`] once any embedded test has tripped.
    pub fn next_bit(&mut self) -> Result<bool, SelfTestError> {
        self.status()?;
        loop {
            let raw = self.inner.next_raw_bit();
            if self.health.push(raw) == HealthStatus::Alarm {
                self.state = State::Failed(SelfTestError::OnlineAlarm);
                return Err(SelfTestError::OnlineAlarm);
            }
            if let Some(bit) = self.compressor.push(raw) {
                return Ok(bit);
            }
        }
    }

    /// Generates `count` post-processed bits.
    ///
    /// # Errors
    ///
    /// Stops at the first embedded-test alarm.
    pub fn generate(&mut self, count: usize) -> Result<Vec<bool>, SelfTestError> {
        (0..count).map(|_| self.next_bit()).collect()
    }

    /// Clears a latched alarm and re-arms the online tests.
    ///
    /// Hardware would re-run the start-up test here; callers wanting
    /// that behaviour should construct a fresh instance instead.
    pub fn reset(&mut self) {
        self.health.reset();
        self.compressor.reset();
        self.state = State::Online;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::noise::AttackInjection;
    use trng_model::params::{DesignParams, PlatformParams};

    #[test]
    fn healthy_source_comes_online_and_generates() {
        let mut trng = SelfTestingTrng::new(TrngConfig::paper_k1(), 1).expect("build");
        assert!(trng.status().is_ok());
        let bits = trng.generate(256).expect("healthy");
        assert_eq!(bits.len(), 256);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((64..192).contains(&ones), "ones {ones}");
    }

    #[test]
    fn dead_source_fails_startup() {
        // sigma_LUT ~ 0 and huge bins: the raw stream is essentially
        // deterministic and the start-up monobit/long-run must trip.
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            // Zero-drift clock so the edge position freezes.
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let trng = SelfTestingTrng::new(config, 2).expect("build");
        assert_eq!(trng.status(), Err(SelfTestError::StartupFailed));
    }

    #[test]
    fn failed_source_refuses_bits() {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let mut trng = SelfTestingTrng::new(config, 3).expect("build");
        assert_eq!(trng.next_bit(), Err(SelfTestError::StartupFailed));
        assert_eq!(trng.generate(8), Err(SelfTestError::StartupFailed));
    }

    #[test]
    fn online_alarm_latches_under_total_failure_attack() {
        // Start healthy, then the oscillator gets locked hard: the
        // repetition/proportion tests must eventually trip. Simulate by
        // building an attacked instance whose startup happens to pass
        // rarely — instead check that a *stuck* extractor trips: use a
        // locking attack with overwhelming strength and a frozen clock.
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 2.6).expect("valid");
        config.design = DesignParams {
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k1()
        };
        config.attack = Some(AttackInjection::locking(1e12 / 480.0, 0.95));
        let mut trng = SelfTestingTrng::new(config, 4).expect("build");
        // Either startup already caught it, or the online tests do
        // within a bounded number of bits.
        if trng.status().is_ok() {
            let mut tripped = false;
            for _ in 0..50_000 {
                if trng.next_bit().is_err() {
                    tripped = true;
                    break;
                }
            }
            assert!(tripped, "embedded tests never caught the locked source");
        }
    }

    #[test]
    fn reset_clears_the_latch() {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let mut trng = SelfTestingTrng::new(config, 5).expect("build");
        assert!(trng.status().is_err());
        trng.reset();
        assert!(trng.status().is_ok());
        // The defective source trips again quickly.
        let mut tripped = false;
        for _ in 0..20_000 {
            if trng.next_bit().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            SelfTestError::StartupFailed.to_string(),
            "start-up statistical test failed"
        );
        assert_eq!(
            SelfTestError::OnlineAlarm.to_string(),
            "continuous online test alarm"
        );
    }
}
