//! Self-testing TRNG wrapper — the paper's stated future work
//! ("developing embedded tests for on-the-fly evaluation") as a
//! concrete component.
//!
//! AIS-31-class TRNGs gate their output behind two mechanisms:
//!
//! * a **start-up test** executed once after reset, before any bit is
//!   released (here: the FIPS 140-2-style quartet on the first
//!   post-processed sample, plus a missed-edge check on the raw
//!   stream);
//! * **continuous online tests** on the raw (pre-conditioning) bits
//!   (here: [`OnlineHealth`] — repetition count + adaptive proportion
//!   at the model's claimed min-entropy).
//!
//! [`SelfTestingTrng`] wires both around a [`CarryChainTrng`]; bits
//! only flow while the tests hold, and any alarm latches the generator
//! into a failed state that requires an explicit
//! [`reset`](SelfTestingTrng::reset).

use crate::health::{HealthStatus, OnlineHealth};
use crate::postprocess::XorCompressor;
use crate::trng::{BuildTrngError, CarryChainTrng, TrngConfig};

use core::fmt;
use std::error::Error;
use trng_model::params::ParamError;

/// Why the generator refuses to emit bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfTestError {
    /// The start-up test failed; the source never went online.
    StartupFailed,
    /// A continuous test tripped during operation.
    OnlineAlarm,
}

impl fmt::Display for SelfTestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelfTestError::StartupFailed => write!(f, "start-up statistical test failed"),
            SelfTestError::OnlineAlarm => write!(f, "continuous online test alarm"),
        }
    }
}

impl Error for SelfTestError {}

/// Number of post-processed bits consumed by the start-up test.
pub const STARTUP_BITS: usize = 2_048;

/// The claimed min-entropy per raw bit used to parameterize the
/// online tests for `config`.
///
/// The claim is the stochastic model's worst-case min-entropy *derated
/// by half*: the raw stream is not i.i.d. — deterministic phase drift
/// and flicker wander produce longer same-bit runs than an i.i.d.
/// source of equal entropy, so thresholds derived straight from the
/// worst-case bound cause percent-level false alarms while embedded
/// tests target `~2^-20` (SP 800-90B). Halving the claim widens the
/// repetition cutoff to cover the drift patterns while still catching
/// order-of-magnitude entropy loss. Floored at 0.05 so heavily biased
/// configurations still get working (if strict) tests.
///
/// # Errors
///
/// Returns [`ParamError`] if the design is inconsistent with the
/// platform.
pub fn claimed_min_entropy(config: &TrngConfig) -> Result<f64, ParamError> {
    let point = trng_model::design_space::evaluate(&config.platform, &config.design)?;
    Ok((point.h_min_raw * 0.5).clamp(0.05, 1.0))
}

/// Detailed outcome of one start-up test run.
///
/// Produced by [`run_startup_test`]; a source may only go online when
/// [`passed`](StartupReport::passed) holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartupReport {
    /// Ones counted among the [`STARTUP_BITS`] post-processed bits.
    pub ones: usize,
    /// Longest same-bit run in the post-processed sample.
    pub longest_run: usize,
    /// Monobit band held (5.5 sigma for 2048 bits: 1024 ± 125).
    pub monobit_ok: bool,
    /// Longest run stayed below 34 (AIS-31 T4's bound).
    pub long_run_ok: bool,
    /// Missed-edge rate over the startup window stayed below 1 %.
    pub missed_edge_ok: bool,
    /// The continuous online tests saw no alarm during startup.
    pub online_ok: bool,
}

/// Bit set in [`StartupReport::failure_mask`] when the monobit band
/// check failed.
pub const STARTUP_FAIL_MONOBIT: u8 = 1 << 0;
/// Bit set in [`StartupReport::failure_mask`] when the longest-run
/// check failed.
pub const STARTUP_FAIL_LONG_RUN: u8 = 1 << 1;
/// Bit set in [`StartupReport::failure_mask`] when the missed-edge
/// rate check failed.
pub const STARTUP_FAIL_MISSED_EDGE: u8 = 1 << 2;
/// Bit set in [`StartupReport::failure_mask`] when a continuous
/// online test alarmed during the startup run.
pub const STARTUP_FAIL_ONLINE: u8 = 1 << 3;

impl StartupReport {
    /// `true` when every sub-check passed and the source may go online.
    pub fn passed(&self) -> bool {
        self.monobit_ok && self.long_run_ok && self.missed_edge_ok && self.online_ok
    }

    /// Compact bitmask of the failed sub-checks (0 when the report
    /// passed): [`STARTUP_FAIL_MONOBIT`] | [`STARTUP_FAIL_LONG_RUN`] |
    /// [`STARTUP_FAIL_MISSED_EDGE`] | [`STARTUP_FAIL_ONLINE`].
    ///
    /// Multi-instance supervisors (e.g. the `trng-pool` respawn path)
    /// persist this mask in their incident records so an evaluator can
    /// see *which* startup check rejected a retired or respawned
    /// instance, not just that one did.
    pub fn failure_mask(&self) -> u8 {
        let mut mask = 0;
        if !self.monobit_ok {
            mask |= STARTUP_FAIL_MONOBIT;
        }
        if !self.long_run_ok {
            mask |= STARTUP_FAIL_LONG_RUN;
        }
        if !self.missed_edge_ok {
            mask |= STARTUP_FAIL_MISSED_EDGE;
        }
        if !self.online_ok {
            mask |= STARTUP_FAIL_ONLINE;
        }
        mask
    }

    /// Names of the failed sub-checks, in mask-bit order (empty when
    /// the report passed).
    pub fn failed_checks(&self) -> Vec<&'static str> {
        let mask = self.failure_mask();
        [
            (STARTUP_FAIL_MONOBIT, "monobit"),
            (STARTUP_FAIL_LONG_RUN, "long-run"),
            (STARTUP_FAIL_MISSED_EDGE, "missed-edge"),
            (STARTUP_FAIL_ONLINE, "online-alarm"),
        ]
        .into_iter()
        .filter(|(bit, _)| mask & bit != 0)
        .map(|(_, name)| name)
        .collect()
    }
}

impl fmt::Display for StartupReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            write!(
                f,
                "startup passed ({} ones, longest run {})",
                self.ones, self.longest_run
            )
        } else {
            write!(
                f,
                "startup failed [{}] ({} ones, longest run {})",
                self.failed_checks().join(", "),
                self.ones,
                self.longest_run
            )
        }
    }
}

/// Runs the start-up self-test on `trng`, feeding every raw bit drawn
/// through `health` and compressing with `compressor`.
///
/// This is the building block behind [`SelfTestingTrng::new`], exposed
/// so multi-instance deployments (e.g. the `trng-pool` crate) can gate
/// shard admission and *re*-admission after a quarantine through the
/// exact same test. The caller owns `health`: alarms raised during the
/// run stay latched, so a defective source is visible both through the
/// returned report and through `health.status()`.
pub fn run_startup_test(
    trng: &mut CarryChainTrng,
    health: &mut OnlineHealth,
    compressor: &mut XorCompressor,
) -> StartupReport {
    let samples_before = trng.stats().samples;
    let missed_before = trng.stats().missed_edges;
    let mut collected = 0usize;
    let mut ones = 0usize;
    let mut longest_run = 0usize;
    let mut run = 0usize;
    let mut prev = None;
    while collected < STARTUP_BITS {
        let raw = trng.next_raw_bit();
        let _ = health.push(raw);
        if let Some(bit) = compressor.push(raw) {
            ones += usize::from(bit);
            if prev == Some(bit) {
                run += 1;
            } else {
                run = 1;
                prev = Some(bit);
            }
            longest_run = longest_run.max(run);
            collected += 1;
        }
    }
    let samples = trng.stats().samples - samples_before;
    let missed = trng.stats().missed_edges - missed_before;
    let missed_rate = if samples == 0 {
        0.0
    } else {
        missed as f64 / samples as f64
    };
    StartupReport {
        ones,
        longest_run,
        monobit_ok: (899..=1149).contains(&ones),
        long_run_ok: longest_run < 34,
        missed_edge_ok: missed_rate < 0.01 || samples < 1000,
        online_ok: health.status() == HealthStatus::Ok,
    }
}

/// A TRNG with embedded start-up and online tests.
///
/// # Examples
///
/// ```
/// use trng_core::selftest::SelfTestingTrng;
/// use trng_core::trng::TrngConfig;
///
/// let mut trng = SelfTestingTrng::new(TrngConfig::paper_k1(), 7)?;
/// let bits = trng.generate(64).expect("healthy source");
/// assert_eq!(bits.len(), 64);
/// # Ok::<(), trng_core::trng::BuildTrngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SelfTestingTrng {
    inner: CarryChainTrng,
    compressor: XorCompressor,
    health: OnlineHealth,
    state: State,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Online,
    Failed(SelfTestError),
}

impl SelfTestingTrng {
    /// Builds the generator and runs the start-up test.
    ///
    /// The claimed min-entropy for the online tests is taken from the
    /// stochastic model's worst-case bound for the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTrngError`] for invalid configurations. A failed
    /// start-up test does *not* error here — it latches the instance
    /// into the failed state, visible via [`SelfTestingTrng::status`]
    /// (matching hardware, where construction and self-test are
    /// separate events).
    pub fn new(config: TrngConfig, seed: u64) -> Result<Self, BuildTrngError> {
        let claim = claimed_min_entropy(&config)?;
        let np = config.design.np;
        let mut inner = CarryChainTrng::new(config, seed)?;
        let mut health = OnlineHealth::new(claim);
        let mut compressor = XorCompressor::new(np);
        let startup_ok = run_startup_test(&mut inner, &mut health, &mut compressor).passed();

        Ok(SelfTestingTrng {
            inner,
            compressor,
            health,
            state: if startup_ok {
                State::Online
            } else {
                State::Failed(SelfTestError::StartupFailed)
            },
        })
    }

    /// Current status: `Ok(())` when online.
    ///
    /// # Errors
    ///
    /// The latched failure, if any.
    pub fn status(&self) -> Result<(), SelfTestError> {
        match self.state {
            State::Online => Ok(()),
            State::Failed(e) => Err(e),
        }
    }

    /// The wrapped generator's statistics.
    pub fn stats(&self) -> &crate::trng::TrngStats {
        self.inner.stats()
    }

    /// Generates one post-processed bit, or the latched failure.
    ///
    /// # Errors
    ///
    /// [`SelfTestError`] once any embedded test has tripped.
    pub fn next_bit(&mut self) -> Result<bool, SelfTestError> {
        self.status()?;
        loop {
            let raw = self.inner.next_raw_bit();
            if self.health.push(raw) == HealthStatus::Alarm {
                self.state = State::Failed(SelfTestError::OnlineAlarm);
                return Err(SelfTestError::OnlineAlarm);
            }
            if let Some(bit) = self.compressor.push(raw) {
                return Ok(bit);
            }
        }
    }

    /// Generates `count` post-processed bits.
    ///
    /// # Errors
    ///
    /// Stops at the first embedded-test alarm.
    pub fn generate(&mut self, count: usize) -> Result<Vec<bool>, SelfTestError> {
        (0..count).map(|_| self.next_bit()).collect()
    }

    /// Clears a latched alarm and re-arms the online tests.
    ///
    /// Hardware would re-run the start-up test here; callers wanting
    /// that behaviour should construct a fresh instance instead.
    pub fn reset(&mut self) {
        self.health.reset();
        self.compressor.reset();
        self.state = State::Online;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::noise::AttackInjection;
    use trng_model::params::{DesignParams, PlatformParams};

    #[test]
    fn healthy_source_comes_online_and_generates() {
        let mut trng = SelfTestingTrng::new(TrngConfig::paper_k1(), 1).expect("build");
        assert!(trng.status().is_ok());
        let bits = trng.generate(256).expect("healthy");
        assert_eq!(bits.len(), 256);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((64..192).contains(&ones), "ones {ones}");
    }

    #[test]
    fn dead_source_fails_startup() {
        // sigma_LUT ~ 0 and huge bins: the raw stream is essentially
        // deterministic and the start-up monobit/long-run must trip.
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            // Zero-drift clock so the edge position freezes.
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let trng = SelfTestingTrng::new(config, 2).expect("build");
        assert_eq!(trng.status(), Err(SelfTestError::StartupFailed));
    }

    #[test]
    fn failed_source_refuses_bits() {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let mut trng = SelfTestingTrng::new(config, 3).expect("build");
        assert_eq!(trng.next_bit(), Err(SelfTestError::StartupFailed));
        assert_eq!(trng.generate(8), Err(SelfTestError::StartupFailed));
    }

    #[test]
    fn online_alarm_latches_under_total_failure_attack() {
        // Start healthy, then the oscillator gets locked hard: the
        // repetition/proportion tests must eventually trip. Simulate by
        // building an attacked instance whose startup happens to pass
        // rarely — instead check that a *stuck* extractor trips: use a
        // locking attack with overwhelming strength and a frozen clock.
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 2.6).expect("valid");
        config.design = DesignParams {
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k1()
        };
        config.attack = Some(AttackInjection::locking(1e12 / 480.0, 0.95));
        let mut trng = SelfTestingTrng::new(config, 4).expect("build");
        // Either startup already caught it, or the online tests do
        // within a bounded number of bits.
        if trng.status().is_ok() {
            let mut tripped = false;
            for _ in 0..50_000 {
                if trng.next_bit().is_err() {
                    tripped = true;
                    break;
                }
            }
            assert!(tripped, "embedded tests never caught the locked source");
        }
    }

    #[test]
    fn reset_clears_the_latch() {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let mut trng = SelfTestingTrng::new(config, 5).expect("build");
        assert!(trng.status().is_err());
        trng.reset();
        assert!(trng.status().is_ok());
        // The defective source trips again quickly.
        let mut tripped = false;
        for _ in 0..20_000 {
            if trng.next_bit().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn startup_report_matches_wrapper_verdict() {
        // The extracted building blocks must agree with the wrapper.
        let config = TrngConfig::paper_k1();
        let claim = claimed_min_entropy(&config).expect("valid");
        let mut trng = CarryChainTrng::new(config.clone(), 1).expect("build");
        let mut health = OnlineHealth::new(claim);
        let mut compressor = XorCompressor::new(config.design.np);
        let report = run_startup_test(&mut trng, &mut health, &mut compressor);
        assert!(report.passed(), "{report:?}");
        assert!(report.monobit_ok && report.long_run_ok);
        let wrapper = SelfTestingTrng::new(config, 1).expect("build");
        assert!(wrapper.status().is_ok());
    }

    #[test]
    fn startup_report_flags_dead_source() {
        let mut config = TrngConfig::ideal();
        config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
        config.design = DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
            ..DesignParams::paper_k4()
        };
        let claim = claimed_min_entropy(&config).expect("valid");
        let mut trng = CarryChainTrng::new(config, 2).expect("build");
        let mut health = OnlineHealth::new(claim);
        let mut compressor = XorCompressor::new(1);
        let report = run_startup_test(&mut trng, &mut health, &mut compressor);
        assert!(!report.passed(), "{report:?}");
        // The caller's health monitor keeps the latched alarm.
        assert_eq!(health.status(), HealthStatus::Alarm);
    }

    #[test]
    fn claimed_entropy_is_derated_and_floored() {
        let claim = claimed_min_entropy(&TrngConfig::paper_k1()).expect("valid");
        assert!((0.05..=0.5).contains(&claim), "claim {claim}");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            SelfTestError::StartupFailed.to_string(),
            "start-up statistical test failed"
        );
        assert_eq!(
            SelfTestError::OnlineAlarm.to_string(),
            "continuous online test alarm"
        );
    }

    #[test]
    fn failure_mask_names_every_failed_check() {
        let passed = StartupReport {
            ones: 1024,
            longest_run: 9,
            monobit_ok: true,
            long_run_ok: true,
            missed_edge_ok: true,
            online_ok: true,
        };
        assert_eq!(passed.failure_mask(), 0);
        assert!(passed.failed_checks().is_empty());
        assert!(passed.to_string().contains("startup passed"));

        let mut failed = passed;
        failed.monobit_ok = false;
        failed.online_ok = false;
        assert_eq!(
            failed.failure_mask(),
            STARTUP_FAIL_MONOBIT | STARTUP_FAIL_ONLINE
        );
        assert_eq!(failed.failed_checks(), vec!["monobit", "online-alarm"]);
        let text = failed.to_string();
        assert!(text.contains("startup failed"), "{text}");
        assert!(text.contains("monobit") && text.contains("online-alarm"));

        let mut edge = passed;
        edge.long_run_ok = false;
        edge.missed_edge_ok = false;
        assert_eq!(
            edge.failure_mask(),
            STARTUP_FAIL_LONG_RUN | STARTUP_FAIL_MISSED_EDGE
        );
        assert_eq!(edge.failed_checks(), vec!["long-run", "missed-edge"]);
    }
}
