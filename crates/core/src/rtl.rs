//! Bit-parallel ("RTL") implementation of the entropy extractor.
//!
//! The [`EntropyExtractor`](crate::extractor::EntropyExtractor) is the
//! readable golden model; this module is the implementation a hardware
//! designer would actually synthesize — delay-line words packed into
//! `u64`s, the XOR stage as word-wise XOR, the edge detector as
//! `x ^ (x >> 1)`, and the priority encoder as a trailing-zeros count.
//! Equivalence against the golden model is property-tested
//! (`tests/properties.rs` in this crate), mirroring RTL-vs-reference
//! verification practice.
//!
//! Only `m ≤ 64` is supported (the paper uses 36); the golden model
//! has no such limit.

use crate::extractor::ExtractedBit;

/// A packed delay-line capture: bit `j` of `word` is tap `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedWord {
    /// Tap bits, LSB = tap 0.
    pub word: u64,
    /// Number of valid taps (`m ≤ 64`).
    pub len: u32,
}

impl PackedWord {
    /// Packs a boolean slice (tap 0 first).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 taps are given.
    pub fn pack(taps: &[bool]) -> Self {
        assert!(
            taps.len() <= 64,
            "packed extractor supports at most 64 taps"
        );
        let mut word = 0u64;
        for (j, &b) in taps.iter().enumerate() {
            word |= u64::from(b) << j;
        }
        PackedWord {
            word,
            len: taps.len() as u32,
        }
    }
}

/// Bit-parallel extractor: XORs the packed lines, down-samples by `k`,
/// detects the first edge and returns its position's parity.
///
/// Semantically identical to
/// [`EntropyExtractor::extract`](crate::extractor::EntropyExtractor::extract)
/// with the `Priority` bubble filter.
///
/// # Panics
///
/// Panics if the lines are empty, have unequal lengths, exceed 64
/// taps, or the length is not a multiple of `k`.
pub fn extract_packed(lines: &[PackedWord], k: u32) -> Option<ExtractedBit> {
    assert!(!lines.is_empty(), "need at least one line");
    let m = lines[0].len;
    assert!(
        lines.iter().all(|l| l.len == m),
        "lines must have equal length"
    );
    assert!(
        k >= 1 && m.is_multiple_of(k),
        "length must be a multiple of k"
    );

    // Stage 1: word-wise XOR of all lines.
    let mut x = 0u64;
    for l in lines {
        x ^= l.word;
    }

    // Down-sampling: keep taps k-1, 2k-1, ... (compress into low bits).
    let (code, width) = if k == 1 {
        (x, m)
    } else {
        let mut code = 0u64;
        let w = m / k;
        for l in 0..w {
            let tap = (l + 1) * k - 1;
            code |= (x >> tap & 1) << l;
        }
        (code, w)
    };

    // Stage 2: edge vector e[j] = code[j] ^ code[j+1] for j < width-1,
    // computed in parallel; mask off the top.
    if width < 2 {
        return None;
    }
    let e = (code ^ (code >> 1)) & ((1u64 << (width - 1)) - 1);
    if e == 0 {
        return None;
    }
    let pos = e.trailing_zeros() as usize;
    Some(ExtractedBit {
        bit: pos.is_multiple_of(2),
        edge_position: pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble::BubbleFilter;
    use crate::extractor::EntropyExtractor;
    use crate::snippet::Snippet;

    fn bools(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn pack_round_trips() {
        let taps = bools("1011001");
        let p = PackedWord::pack(&taps);
        assert_eq!(p.len, 7);
        for (j, &b) in taps.iter().enumerate() {
            assert_eq!(p.word >> j & 1 == 1, b, "tap {j}");
        }
    }

    #[test]
    fn matches_golden_model_on_simple_codes() {
        let golden = EntropyExtractor::new(1, BubbleFilter::Priority);
        for code in ["11100000", "10000000", "11000011", "11011000", "00000000"] {
            let taps = bools(code);
            let expected = golden.extract(&Snippet::new(vec![taps.clone()]));
            let got = extract_packed(&[PackedWord::pack(&taps)], 1);
            assert_eq!(got, expected, "code {code}");
        }
    }

    #[test]
    fn matches_golden_model_with_downsampling() {
        let golden = EntropyExtractor::new(4, BubbleFilter::Priority);
        let mut taps = vec![true; 20];
        taps.extend(vec![false; 16]);
        let expected = golden.extract(&Snippet::new(vec![taps.clone()]));
        let got = extract_packed(&[PackedWord::pack(&taps)], 4);
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_line_xor_matches() {
        let golden = EntropyExtractor::new(1, BubbleFilter::Priority);
        let a = bools("11110000");
        let b = bools("00011111");
        let c = bools("00000011");
        let expected = golden.extract(&Snippet::new(vec![a.clone(), b.clone(), c.clone()]));
        let got = extract_packed(
            &[
                PackedWord::pack(&a),
                PackedWord::pack(&b),
                PackedWord::pack(&c),
            ],
            1,
        );
        assert_eq!(got, expected);
    }

    #[test]
    fn no_edge_returns_none() {
        assert_eq!(extract_packed(&[PackedWord::pack(&[true; 36])], 1), None);
        assert_eq!(extract_packed(&[PackedWord::pack(&[false; 36])], 4), None);
    }

    #[test]
    #[should_panic(expected = "at most 64 taps")]
    fn rejects_oversized_lines() {
        let _ = PackedWord::pack(&[true; 65]);
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn rejects_ragged_downsampling() {
        let _ = extract_packed(&[PackedWord::pack(&[true; 10])], 4);
    }
}
