//! [`trng_testkit::prng::RngCore`] adapter — use the simulated TRNG
//! anywhere the workspace expects a generic generator.
//!
//! The adapter draws *post-processed* bits (the design's `np` XOR
//! compression), so a `TrngRng` built from the paper's `k = 1`
//! configuration emits the same 14.3 Mb/s-quality stream the hardware
//! would deliver to a consumer.

use trng_testkit::prng::{CryptoRng, RngCore};

use crate::trng::CarryChainTrng;

/// A [`RngCore`] view of a [`CarryChainTrng`].
///
/// # Examples
///
/// ```
/// use trng_testkit::prng::RngCore;
/// use trng_core::rng_adapter::TrngRng;
/// use trng_core::trng::{CarryChainTrng, TrngConfig};
///
/// let trng = CarryChainTrng::new(TrngConfig::paper_k1(), 7)?;
/// let mut rng = TrngRng::new(trng);
/// let word = rng.next_u32();
/// let mut buf = [0u8; 16];
/// rng.fill_bytes(&mut buf);
/// # let _ = word;
/// # Ok::<(), trng_core::trng::BuildTrngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrngRng {
    inner: CarryChainTrng,
}

impl TrngRng {
    /// Wraps a TRNG instance.
    pub fn new(trng: CarryChainTrng) -> Self {
        TrngRng { inner: trng }
    }

    /// Returns the wrapped generator.
    pub fn into_inner(self) -> CarryChainTrng {
        self.inner
    }

    /// Borrows the wrapped generator (e.g. to inspect
    /// [`TrngStats`](crate::trng::TrngStats)).
    pub fn get_ref(&self) -> &CarryChainTrng {
        &self.inner
    }

    /// One post-processed bit.
    fn next_bit(&mut self) -> bool {
        let np = self.inner.config().design.np;
        let mut acc = false;
        for _ in 0..np {
            acc ^= self.inner.next_raw_bit();
        }
        acc
    }
}

impl RngCore for TrngRng {
    fn next_u32(&mut self) -> u32 {
        let mut x = 0u32;
        for _ in 0..32 {
            x = x << 1 | u32::from(self.next_bit());
        }
        x
    }

    fn next_u64(&mut self) -> u64 {
        u64::from(self.next_u32()) << 32 | u64::from(self.next_u32())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Same bit-packing as the scalar loop (np-XOR per bit, MSB
        // first), on the TRNG's allocation-free batch path.
        self.inner.fill_postprocessed(dest);
    }
}

/// The underlying process is a physical (simulated) entropy source
/// with model-bounded entropy and XOR conditioning — the intended use
/// is cryptographic, matching the paper's application domain.
impl CryptoRng for TrngRng {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trng::TrngConfig;

    fn rng() -> TrngRng {
        TrngRng::new(CarryChainTrng::new(TrngConfig::paper_k1(), 42).expect("build"))
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = rng();
        let mut buf = [0u8; 64];
        r.fill_bytes(&mut buf);
        // 64 zero bytes would mean the generator is broken (p ~ 2^-512).
        assert!(buf.iter().any(|&b| b != 0));
        // Each byte consumed 8 * np raw bits.
        assert_eq!(r.get_ref().stats().samples, 64 * 8 * 7);
    }

    #[test]
    fn words_are_not_constant() {
        let mut r = rng();
        let words: Vec<u32> = (0..8).map(|_| r.next_u32()).collect();
        assert!(words.windows(2).any(|w| w[0] != w[1]));
        let mut r2 = rng();
        let x = r2.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, u64::MAX);
    }

    #[test]
    fn seeded_adapters_are_reproducible() {
        let mut a = rng();
        let mut b = rng();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn byte_stream_is_roughly_balanced() {
        let mut r = rng();
        let mut buf = [0u8; 2048];
        r.fill_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total = 2048.0 * 8.0;
        let frac = f64::from(ones) / total;
        assert!((frac - 0.5).abs() < 0.03, "ones fraction {frac}");
    }

    #[test]
    fn into_inner_round_trips() {
        let mut r = rng();
        let _ = r.next_u32();
        let trng = r.into_inner();
        assert!(trng.stats().samples > 0);
    }
}
