//! TDC data snippets and their classification — Figure 4.
//!
//! A *snippet* is the raw word captured by the `n` fast delay lines at
//! one sampling instant: `n` lines of `m` bits each (`C_{i,j}` in the
//! paper's Figure 5). The paper's Figure 4 illustrates the three
//! phenomena the extractor must cope with:
//!
//! * **(a) regular sampling** — exactly one signal edge captured;
//! * **(b) double edge** — the line delay exceeds the oscillator stage
//!   delay, so a second edge enters the next line;
//! * **(c) bubbles** — metastable flip-flops flip isolated bits near
//!   the edge.
//!
//! [`Snippet::classify`] reproduces that taxonomy (plus the
//! missed-edge case that drove the `m = 32 → 36` decision in
//! Section 5.2), and [`Snippet`]'s `Display` renders the same
//! oscilloscope-style picture as the figure.

use core::fmt;

/// The raw capture of all delay lines at one sampling instant.
///
/// Line `i` observes oscillator node `i`; within a line, tap 0 is the
/// most recent instant (smallest look-back) and tap `m − 1` the oldest.
///
/// # Examples
///
/// ```
/// use trng_core::snippet::{Snippet, SnippetKind};
///
/// // One clean edge in an 8-tap, 1-line snippet.
/// let s = Snippet::new(vec![vec![true, true, true, false, false, false, false, false]]);
/// assert_eq!(s.classify(), SnippetKind::Regular);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    /// Packed tap bits: `chunks_per_line` words per line, LSB of a
    /// line's first word = tap 0. Bits past `m` in the last word of a
    /// line are always zero.
    words: Vec<u64>,
    /// Number of delay lines `n`.
    n: usize,
    /// Taps per line `m`.
    m: usize,
}

/// Number of `u64` words needed for one `m`-tap line.
fn chunks_for(m: usize) -> usize {
    m.div_ceil(64)
}

/// Figure-4 taxonomy of a snippet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnippetKind {
    /// Exactly one edge in the XOR-combined code — Figure 4 (a).
    Regular,
    /// More than one well-separated edge — Figure 4 (b).
    DoubleEdge,
    /// Isolated flipped bits adjacent to an edge — Figure 4 (c).
    Bubbled,
    /// No edge captured anywhere (the failure mode of `m = 32`).
    NoEdge,
}

impl fmt::Display for SnippetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SnippetKind::Regular => "regular",
            SnippetKind::DoubleEdge => "double edge",
            SnippetKind::Bubbled => "bubbled",
            SnippetKind::NoEdge => "no edge",
        };
        f.write_str(s)
    }
}

impl Snippet {
    /// Wraps raw line captures.
    ///
    /// # Panics
    ///
    /// Panics if there are no lines, any line is empty, or lines have
    /// unequal lengths.
    pub fn new(lines: Vec<Vec<bool>>) -> Self {
        assert!(!lines.is_empty(), "snippet needs at least one line");
        let m = lines[0].len();
        assert!(m > 0, "lines must be non-empty");
        assert!(
            lines.iter().all(|l| l.len() == m),
            "all lines must have equal length"
        );
        let chunks = chunks_for(m);
        let mut words = vec![0u64; lines.len() * chunks];
        for (i, line) in lines.iter().enumerate() {
            for (j, &b) in line.iter().enumerate() {
                words[i * chunks + j / 64] |= u64::from(b) << (j % 64);
            }
        }
        Snippet {
            words,
            n: lines.len(),
            m,
        }
    }

    /// Wraps already-packed line words (one `u64` per line, tap 0 in
    /// the LSB) — the allocation-light entry used by the sampling hot
    /// path for `m ≤ 64`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty or `m` is not in `1..=64`.
    pub fn from_packed_words(lines: &[u64], m: usize) -> Self {
        assert!(!lines.is_empty(), "snippet needs at least one line");
        assert!(m >= 1, "lines must be non-empty");
        assert!(
            m <= 64,
            "packed construction supports at most 64 taps, got {m}"
        );
        let mask = u64::MAX >> (64 - m);
        Snippet {
            words: lines.iter().map(|&w| w & mask).collect(),
            n: lines.len(),
            m,
        }
    }

    /// Number of delay lines `n`.
    pub fn num_lines(&self) -> usize {
        self.n
    }

    /// Taps per line `m`.
    pub fn taps_per_line(&self) -> usize {
        self.m
    }

    /// The bit captured by tap `j` of line `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn bit(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.m, "tap ({i}, {j}) out of range");
        let chunks = chunks_for(self.m);
        self.words[i * chunks + j / 64] >> (j % 64) & 1 == 1
    }

    /// The raw lines, unpacked to bit vectors (for figures/stattests
    /// that want to look at individual taps).
    pub fn lines(&self) -> Vec<Vec<bool>> {
        (0..self.n)
            .map(|i| (0..self.m).map(|j| self.bit(i, j)).collect())
            .collect()
    }

    /// The packed XOR of all lines, `chunks` words with tap 0 in the
    /// LSB of word 0.
    fn xor_words(&self) -> Vec<u64> {
        let chunks = chunks_for(self.m);
        let mut x = vec![0u64; chunks];
        for i in 0..self.n {
            for (xc, &w) in x.iter_mut().zip(&self.words[i * chunks..(i + 1) * chunks]) {
                *xc ^= w;
            }
        }
        x
    }

    /// The XOR of all lines as a single packed word (tap 0 in the
    /// LSB), when the snippet fits one word (`m ≤ 64`) — the
    /// allocation-free form the extractor hot path consumes.
    pub fn xor_word(&self) -> Option<u64> {
        if self.m > 64 {
            return None;
        }
        Some(self.words.iter().fold(0u64, |x, &w| x ^ w))
    }

    /// The bit-wise XOR of all lines — the first stage of the entropy
    /// extractor (Figure 5). Every oscillator transition inside the
    /// observation window appears as one edge in this vector.
    pub fn xor_vector(&self) -> Vec<bool> {
        let x = self.xor_words();
        (0..self.m)
            .map(|j| x[j / 64] >> (j % 64) & 1 == 1)
            .collect()
    }

    /// Positions `j` where `xor_vector[j] != xor_vector[j+1]`, i.e. the
    /// boundaries at which the combined code changes value.
    pub fn edge_positions(&self) -> Vec<usize> {
        let x = self.xor_words();
        let mut out = Vec::new();
        for j in 0..self.m.saturating_sub(1) {
            let a = x[j / 64] >> (j % 64) & 1;
            let b = x[(j + 1) / 64] >> ((j + 1) % 64) & 1;
            if a != b {
                out.push(j);
            }
        }
        out
    }

    /// Classifies the snippet per Figure 4.
    ///
    /// Edges separated by exactly one tap are treated as one bubble
    /// event (an isolated flipped bit), not as genuine double edges;
    /// genuine double edges are ~`d0/tstep` ≈ 28 taps apart.
    pub fn classify(&self) -> SnippetKind {
        if let Some(x) = self.xor_word() {
            return Snippet::classify_word(x, self.m);
        }
        let edges = self.edge_positions();
        match edges.len() {
            0 => SnippetKind::NoEdge,
            1 => SnippetKind::Regular,
            _ => {
                // Adjacent edge pairs (distance 1) indicate an isolated
                // flipped bit: a bubble.
                let has_bubble = edges.windows(2).any(|w| w[1] - w[0] == 1);
                if has_bubble {
                    SnippetKind::Bubbled
                } else {
                    SnippetKind::DoubleEdge
                }
            }
        }
    }

    /// Classifies a packed XOR-combined code word (`m ≤ 64`, tap 0 in
    /// the LSB) without materializing a snippet — the allocation-free
    /// twin of [`Snippet::classify`] used by the sampling hot path.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not in `1..=64`.
    pub fn classify_word(xor: u64, m: usize) -> SnippetKind {
        assert!(
            (1..=64).contains(&m),
            "packed classification supports at most 64 taps, got {m}"
        );
        if m < 2 {
            return SnippetKind::NoEdge;
        }
        // Bit j set iff taps j and j+1 differ — the edge positions.
        let diff = (xor ^ (xor >> 1)) & (u64::MAX >> (64 - (m - 1) as u32));
        match diff.count_ones() {
            0 => SnippetKind::NoEdge,
            1 => SnippetKind::Regular,
            // Adjacent set bits in `diff` are edges one tap apart: an
            // isolated flipped bit, i.e. a bubble.
            _ if diff & (diff >> 1) != 0 => SnippetKind::Bubbled,
            _ => SnippetKind::DoubleEdge,
        }
    }
}

impl fmt::Display for Snippet {
    /// Renders the snippet like Figure 4: one row per line, `1`/`0`
    /// per tap, tap 0 leftmost.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            write!(f, "line {i}: ")?;
            for j in 0..self.m {
                f.write_str(if self.bit(i, j) { "1" } else { "0" })?;
            }
            writeln!(f)?;
        }
        write!(f, "xor   : ")?;
        for b in self.xor_vector() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn regular_snippet() {
        let s = Snippet::new(vec![bits("11100000")]);
        assert_eq!(s.classify(), SnippetKind::Regular);
        assert_eq!(s.edge_positions(), vec![2]);
    }

    #[test]
    fn xor_combines_lines() {
        // Two lines whose XOR has a single edge.
        let s = Snippet::new(vec![bits("11110000"), bits("00011000")]);
        assert_eq!(s.xor_vector(), bits("11101000"));
        assert_eq!(s.num_lines(), 2);
        assert_eq!(s.taps_per_line(), 8);
    }

    #[test]
    fn double_edge_snippet() {
        // Edges at positions 1 and 5 — well separated.
        let s = Snippet::new(vec![bits("11000011")]);
        assert_eq!(s.classify(), SnippetKind::DoubleEdge);
        assert_eq!(s.edge_positions(), vec![1, 5]);
    }

    #[test]
    fn bubbled_snippet() {
        // Isolated flipped bit at position 2 next to the main edge at 4.
        let s = Snippet::new(vec![bits("11011000")]);
        // edges at 1,2 (around the bubble) and 4.
        assert_eq!(s.classify(), SnippetKind::Bubbled);
    }

    #[test]
    fn no_edge_snippet() {
        let s = Snippet::new(vec![bits("11111111")]);
        assert_eq!(s.classify(), SnippetKind::NoEdge);
        let s = Snippet::new(vec![bits("0000")]);
        assert_eq!(s.classify(), SnippetKind::NoEdge);
    }

    #[test]
    fn all_ones_xor_of_two_constant_lines_has_no_edge() {
        let s = Snippet::new(vec![bits("1111"), bits("0000")]);
        assert_eq!(s.classify(), SnippetKind::NoEdge);
    }

    #[test]
    fn display_renders_figure4_style() {
        let s = Snippet::new(vec![bits("1100"), bits("0010")]);
        let out = format!("{s}");
        assert!(out.contains("line 0: 1100"));
        assert!(out.contains("line 1: 0010"));
        assert!(out.contains("xor   : 1110"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(format!("{}", SnippetKind::Regular), "regular");
        assert_eq!(format!("{}", SnippetKind::DoubleEdge), "double edge");
        assert_eq!(format!("{}", SnippetKind::Bubbled), "bubbled");
        assert_eq!(format!("{}", SnippetKind::NoEdge), "no edge");
    }

    #[test]
    fn packed_constructor_matches_bool_constructor() {
        let a = Snippet::new(vec![bits("11110000"), bits("00011000")]);
        let b = Snippet::from_packed_words(&[0b0000_1111, 0b0001_1000], 8);
        assert_eq!(a, b);
        assert_eq!(b.lines(), vec![bits("11110000"), bits("00011000")]);
        assert!(b.bit(0, 0));
        assert!(!b.bit(1, 0));
    }

    #[test]
    fn packed_constructor_masks_stray_high_bits() {
        let a = Snippet::from_packed_words(&[0b0111], 3);
        let b = Snippet::from_packed_words(&[!0u64 << 3 | 0b0111], 3);
        assert_eq!(a, b);
    }

    #[test]
    fn wide_snippet_uses_multiple_words() {
        // m = 100 spans two u64 chunks; edge sits across the boundary.
        let mut line = vec![true; 70];
        line.extend(vec![false; 30]);
        let s = Snippet::new(vec![line.clone()]);
        assert_eq!(s.taps_per_line(), 100);
        assert_eq!(s.edge_positions(), vec![69]);
        assert_eq!(s.classify(), SnippetKind::Regular);
        assert_eq!(s.xor_vector(), line);
        assert_eq!(s.lines(), vec![line]);
    }

    #[test]
    #[should_panic(expected = "at most 64 taps")]
    fn packed_constructor_rejects_wide_lines() {
        let _ = Snippet::from_packed_words(&[0, 0], 65);
    }

    #[test]
    fn classify_word_matches_exhaustively_at_width_8() {
        for w in 0..256u64 {
            let line: Vec<bool> = (0..8).map(|j| w >> j & 1 == 1).collect();
            let via_vec = Snippet::new(vec![line]);
            // Reference taxonomy straight from edge positions.
            let edges = via_vec.edge_positions();
            let expected = match edges.len() {
                0 => SnippetKind::NoEdge,
                1 => SnippetKind::Regular,
                _ if edges.windows(2).any(|p| p[1] - p[0] == 1) => SnippetKind::Bubbled,
                _ => SnippetKind::DoubleEdge,
            };
            assert_eq!(Snippet::classify_word(w, 8), expected, "pattern {w:08b}");
            assert_eq!(via_vec.classify(), expected, "pattern {w:08b}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_lines() {
        let _ = Snippet::new(vec![bits("110"), bits("11")]);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_empty() {
        let _ = Snippet::new(vec![]);
    }
}
