//! TDC data snippets and their classification — Figure 4.
//!
//! A *snippet* is the raw word captured by the `n` fast delay lines at
//! one sampling instant: `n` lines of `m` bits each (`C_{i,j}` in the
//! paper's Figure 5). The paper's Figure 4 illustrates the three
//! phenomena the extractor must cope with:
//!
//! * **(a) regular sampling** — exactly one signal edge captured;
//! * **(b) double edge** — the line delay exceeds the oscillator stage
//!   delay, so a second edge enters the next line;
//! * **(c) bubbles** — metastable flip-flops flip isolated bits near
//!   the edge.
//!
//! [`Snippet::classify`] reproduces that taxonomy (plus the
//! missed-edge case that drove the `m = 32 → 36` decision in
//! Section 5.2), and [`Snippet`]'s `Display` renders the same
//! oscilloscope-style picture as the figure.

use core::fmt;

/// The raw capture of all delay lines at one sampling instant.
///
/// Line `i` observes oscillator node `i`; within a line, tap 0 is the
/// most recent instant (smallest look-back) and tap `m − 1` the oldest.
///
/// # Examples
///
/// ```
/// use trng_core::snippet::{Snippet, SnippetKind};
///
/// // One clean edge in an 8-tap, 1-line snippet.
/// let s = Snippet::new(vec![vec![true, true, true, false, false, false, false, false]]);
/// assert_eq!(s.classify(), SnippetKind::Regular);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    lines: Vec<Vec<bool>>,
}

/// Figure-4 taxonomy of a snippet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnippetKind {
    /// Exactly one edge in the XOR-combined code — Figure 4 (a).
    Regular,
    /// More than one well-separated edge — Figure 4 (b).
    DoubleEdge,
    /// Isolated flipped bits adjacent to an edge — Figure 4 (c).
    Bubbled,
    /// No edge captured anywhere (the failure mode of `m = 32`).
    NoEdge,
}

impl fmt::Display for SnippetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SnippetKind::Regular => "regular",
            SnippetKind::DoubleEdge => "double edge",
            SnippetKind::Bubbled => "bubbled",
            SnippetKind::NoEdge => "no edge",
        };
        f.write_str(s)
    }
}

impl Snippet {
    /// Wraps raw line captures.
    ///
    /// # Panics
    ///
    /// Panics if there are no lines, any line is empty, or lines have
    /// unequal lengths.
    pub fn new(lines: Vec<Vec<bool>>) -> Self {
        assert!(!lines.is_empty(), "snippet needs at least one line");
        let m = lines[0].len();
        assert!(m > 0, "lines must be non-empty");
        assert!(
            lines.iter().all(|l| l.len() == m),
            "all lines must have equal length"
        );
        Snippet { lines }
    }

    /// Number of delay lines `n`.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Taps per line `m`.
    pub fn taps_per_line(&self) -> usize {
        self.lines[0].len()
    }

    /// Borrowed view of the raw lines.
    pub fn lines(&self) -> &[Vec<bool>] {
        &self.lines
    }

    /// The bit-wise XOR of all lines — the first stage of the entropy
    /// extractor (Figure 5). Every oscillator transition inside the
    /// observation window appears as one edge in this vector.
    pub fn xor_vector(&self) -> Vec<bool> {
        let m = self.taps_per_line();
        let mut x = vec![false; m];
        for line in &self.lines {
            for (xj, &b) in x.iter_mut().zip(line) {
                *xj ^= b;
            }
        }
        x
    }

    /// Positions `j` where `xor_vector[j] != xor_vector[j+1]`, i.e. the
    /// boundaries at which the combined code changes value.
    pub fn edge_positions(&self) -> Vec<usize> {
        let x = self.xor_vector();
        x.windows(2)
            .enumerate()
            .filter_map(|(j, w)| (w[0] != w[1]).then_some(j))
            .collect()
    }

    /// Classifies the snippet per Figure 4.
    ///
    /// Edges separated by exactly one tap are treated as one bubble
    /// event (an isolated flipped bit), not as genuine double edges;
    /// genuine double edges are ~`d0/tstep` ≈ 28 taps apart.
    pub fn classify(&self) -> SnippetKind {
        let edges = self.edge_positions();
        match edges.len() {
            0 => SnippetKind::NoEdge,
            1 => SnippetKind::Regular,
            _ => {
                // Adjacent edge pairs (distance 1) indicate an isolated
                // flipped bit: a bubble.
                let has_bubble = edges.windows(2).any(|w| w[1] - w[0] == 1);
                if has_bubble {
                    SnippetKind::Bubbled
                } else {
                    SnippetKind::DoubleEdge
                }
            }
        }
    }
}

impl fmt::Display for Snippet {
    /// Renders the snippet like Figure 4: one row per line, `1`/`0`
    /// per tap, tap 0 leftmost.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, line) in self.lines.iter().enumerate() {
            write!(f, "line {i}: ")?;
            for &b in line {
                f.write_str(if b { "1" } else { "0" })?;
            }
            writeln!(f)?;
        }
        write!(f, "xor   : ")?;
        for b in self.xor_vector() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn regular_snippet() {
        let s = Snippet::new(vec![bits("11100000")]);
        assert_eq!(s.classify(), SnippetKind::Regular);
        assert_eq!(s.edge_positions(), vec![2]);
    }

    #[test]
    fn xor_combines_lines() {
        // Two lines whose XOR has a single edge.
        let s = Snippet::new(vec![bits("11110000"), bits("00011000")]);
        assert_eq!(s.xor_vector(), bits("11101000"));
        assert_eq!(s.num_lines(), 2);
        assert_eq!(s.taps_per_line(), 8);
    }

    #[test]
    fn double_edge_snippet() {
        // Edges at positions 1 and 5 — well separated.
        let s = Snippet::new(vec![bits("11000011")]);
        assert_eq!(s.classify(), SnippetKind::DoubleEdge);
        assert_eq!(s.edge_positions(), vec![1, 5]);
    }

    #[test]
    fn bubbled_snippet() {
        // Isolated flipped bit at position 2 next to the main edge at 4.
        let s = Snippet::new(vec![bits("11011000")]);
        // edges at 1,2 (around the bubble) and 4.
        assert_eq!(s.classify(), SnippetKind::Bubbled);
    }

    #[test]
    fn no_edge_snippet() {
        let s = Snippet::new(vec![bits("11111111")]);
        assert_eq!(s.classify(), SnippetKind::NoEdge);
        let s = Snippet::new(vec![bits("0000")]);
        assert_eq!(s.classify(), SnippetKind::NoEdge);
    }

    #[test]
    fn all_ones_xor_of_two_constant_lines_has_no_edge() {
        let s = Snippet::new(vec![bits("1111"), bits("0000")]);
        assert_eq!(s.classify(), SnippetKind::NoEdge);
    }

    #[test]
    fn display_renders_figure4_style() {
        let s = Snippet::new(vec![bits("1100"), bits("0010")]);
        let out = format!("{s}");
        assert!(out.contains("line 0: 1100"));
        assert!(out.contains("line 1: 0010"));
        assert!(out.contains("xor   : 1110"));
    }

    #[test]
    fn kind_display() {
        assert_eq!(format!("{}", SnippetKind::Regular), "regular");
        assert_eq!(format!("{}", SnippetKind::DoubleEdge), "double edge");
        assert_eq!(format!("{}", SnippetKind::Bubbled), "bubbled");
        assert_eq!(format!("{}", SnippetKind::NoEdge), "no edge");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_lines() {
        let _ = Snippet::new(vec![bits("110"), bits("11")]);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_empty() {
        let _ = Snippet::new(vec![]);
    }
}
