//! Slice-count resource estimation — Table 2.
//!
//! The paper reports 67 occupied Spartan-6 slices for the `k = 1`
//! design and 40 for `k = 4`, with the ring oscillator itself consuming
//! only 3 slices. This module provides a parameterised structural
//! estimate so that ablations (different `n`, `m`, `k`) report
//! consistent resource numbers.
//!
//! The per-block formulas below follow the architecture of Figures 2/5
//! — `w = m/k` is the extractor data-path width:
//!
//! | Block | Slices |
//! |-------|--------|
//! | ring oscillator (1 LUT per stage, own slice below each chain) | `n` |
//! | delay lines (CARRY4 chains incl. capture FFs) | `n · m/4` |
//! | synchroniser rank (n·w FFs, 8 FF/slice) | `⌈n·w/8⌉` |
//! | XOR stage (w LUTs, 4 LUT/slice) | `⌈w/4⌉` |
//! | edge detect + priority encoder + LSB (~1.5 LUT/bit) | `⌈3(w−1)/8⌉` |
//!
//! The constants are calibrated so the paper's two configurations land
//! exactly on the reported totals (67 and 40 slices).

use trng_fpga_sim::fabric::ResourceUsage;
use trng_model::params::DesignParams;

/// Per-block slice breakdown of one TRNG configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBreakdown {
    /// Ring-oscillator slices.
    pub oscillator: u32,
    /// Delay-line (carry chain) slices.
    pub delay_lines: u32,
    /// Synchroniser flip-flop slices.
    pub synchroniser: u32,
    /// XOR-stage slices.
    pub xor_stage: u32,
    /// Edge detector + priority encoder slices.
    pub encoder: u32,
}

impl ResourceBreakdown {
    /// Total occupied slices.
    pub fn total_slices(&self) -> u32 {
        self.oscillator + self.delay_lines + self.synchroniser + self.xor_stage + self.encoder
    }
}

/// Estimates the resource usage of a design.
///
/// # Panics
///
/// Panics if `m` is not a positive multiple of both 4 and `k` (callers
/// should have validated the design first).
///
/// # Examples
///
/// ```
/// use trng_core::resources::estimate;
/// use trng_model::params::DesignParams;
///
/// // The paper's Table 2 rows:
/// assert_eq!(estimate(&DesignParams::paper_k1()).total_slices(), 67);
/// assert_eq!(estimate(&DesignParams::paper_k4()).total_slices(), 40);
/// ```
pub fn estimate(design: &DesignParams) -> ResourceBreakdown {
    let n = design.n as u32;
    let m = design.m as u32;
    let k = design.k;
    assert!(
        m > 0 && m.is_multiple_of(4),
        "m must be a positive multiple of 4"
    );
    assert!(k >= 1 && m.is_multiple_of(k), "m must be divisible by k");
    let w = m / k;
    ResourceBreakdown {
        oscillator: n,
        delay_lines: n * m / 4,
        synchroniser: div_ceil(n * w, 8),
        xor_stage: div_ceil(w, 4),
        encoder: div_ceil(3 * (w - 1), 8),
    }
}

/// Estimates usage in the generic [`ResourceUsage`] form (slices plus
/// LUT/FF/CARRY4 counts).
pub fn estimate_usage(design: &DesignParams) -> ResourceUsage {
    let b = estimate(design);
    let n = design.n as u32;
    let m = design.m as u32;
    let w = m / design.k;
    ResourceUsage {
        slices: b.total_slices(),
        // n oscillator LUTs + w XOR LUTs + ~1.5 LUT/bit of encoder.
        luts: n + w + 3 * (w - 1) / 2,
        // capture FFs + synchroniser FFs + output register.
        ffs: n * m + n * w + 1,
        carry4s: n * m / 4,
    }
}

#[inline]
fn div_ceil(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_k1_is_67_slices() {
        let b = estimate(&DesignParams::paper_k1());
        assert_eq!(b.oscillator, 3);
        assert_eq!(b.delay_lines, 27);
        assert_eq!(b.synchroniser, 14); // ceil(108/8)
        assert_eq!(b.xor_stage, 9); // ceil(36/4)
        assert_eq!(b.encoder, 14); // ceil(105/8)
        assert_eq!(b.total_slices(), 67);
    }

    #[test]
    fn paper_k4_is_40_slices() {
        let b = estimate(&DesignParams::paper_k4());
        assert_eq!(b.oscillator, 3);
        assert_eq!(b.delay_lines, 27);
        assert_eq!(b.synchroniser, 4); // ceil(27/8)
        assert_eq!(b.xor_stage, 3); // ceil(9/4)
        assert_eq!(b.encoder, 3); // ceil(24/8)
        assert_eq!(b.total_slices(), 40);
    }

    #[test]
    fn oscillator_matches_paper_claim() {
        // "Our entropy source is a ring oscillator which consumes only
        // 3 slices."
        assert_eq!(estimate(&DesignParams::paper_k1()).oscillator, 3);
    }

    #[test]
    fn larger_k_is_never_larger() {
        let base = DesignParams::paper_k1();
        let s1 = estimate(&base).total_slices();
        let s2 = estimate(&DesignParams { k: 2, ..base }).total_slices();
        let s4 = estimate(&DesignParams { k: 4, ..base }).total_slices();
        assert!(s1 >= s2 && s2 >= s4, "{s1} {s2} {s4}");
    }

    #[test]
    fn scales_with_ring_length() {
        let base = DesignParams::paper_k1();
        let n3 = estimate(&base).total_slices();
        let n5 = estimate(&DesignParams { n: 5, ..base }).total_slices();
        assert!(n5 > n3);
        // Two extra delay lines dominate: +2 (osc) + 2*9 (lines) + sync.
        assert!(n5 - n3 >= 20, "delta {}", n5 - n3);
    }

    #[test]
    fn usage_counts_are_consistent() {
        let u = estimate_usage(&DesignParams::paper_k1());
        assert_eq!(u.slices, 67);
        assert_eq!(u.carry4s, 27);
        assert_eq!(u.ffs, 3 * 36 + 3 * 36 + 1);
        assert!(u.luts > 36);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn rejects_bad_m() {
        let _ = estimate(&DesignParams {
            m: 30,
            ..DesignParams::paper_k1()
        });
    }
}
