//! Von Neumann post-processing — the classical alternative to the
//! paper's XOR compressor (Section 4.5), included as an ablation.
//!
//! Von Neumann's extractor maps raw bit *pairs* `01 → 0`, `10 → 1` and
//! discards `00`/`11`. For independent bits of any bias it produces
//! perfectly unbiased output, at a data-dependent rate of
//! `p(1−p) ≤ 1/4` output bits per input pair — versus XOR's fixed
//! `1/np` rate with a residual bias of `2^{np−1}·b^{np}`. The paper
//! chooses XOR for its compact hardware and *deterministic* throughput
//! (a TRNG with variable output rate needs elastic buffering); the
//! comparison is quantified in the `ablation_quality` experiment.

/// Streaming Von Neumann extractor.
///
/// # Examples
///
/// ```
/// use trng_core::von_neumann::VonNeumann;
///
/// let mut vn = VonNeumann::new();
/// assert_eq!(vn.push(false), None);       // first half of the pair
/// assert_eq!(vn.push(true), Some(false)); // 01 -> 0
/// assert_eq!(vn.push(true), None);
/// assert_eq!(vn.push(true), None);        // 11 -> discarded
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VonNeumann {
    pending: Option<bool>,
}

impl VonNeumann {
    /// Creates an extractor with an empty pair buffer.
    pub fn new() -> Self {
        VonNeumann::default()
    }

    /// Feeds one raw bit; returns an output bit when a `01`/`10` pair
    /// completes.
    pub fn push(&mut self, bit: bool) -> Option<bool> {
        match self.pending.take() {
            None => {
                self.pending = Some(bit);
                None
            }
            Some(first) => {
                if first != bit {
                    Some(first)
                } else {
                    None
                }
            }
        }
    }

    /// Discards a half-consumed pair.
    pub fn reset(&mut self) {
        self.pending = None;
    }

    /// Extracts from a whole slice (trailing half-pair discarded).
    pub fn extract(bits: &[bool]) -> Vec<bool> {
        let mut vn = VonNeumann::new();
        bits.iter().filter_map(|&b| vn.push(b)).collect()
    }

    /// Expected output bits per input bit for an i.i.d. source with
    /// `P(1) = p`: `p(1−p)` (one output per `01`/`10` pair of two
    /// bits → rate `2·p(1−p)/2`).
    pub fn expected_rate(p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        p * (1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::rng::SimRng;

    #[test]
    fn mapping_follows_von_neumann() {
        // Pairs: (0,1) -> 0, (1,0) -> 1, equal pairs discarded.
        assert_eq!(
            VonNeumann::extract(&[false, true, true, false, true, true, false, false]),
            vec![false, true]
        );
    }

    #[test]
    fn output_is_unbiased_for_biased_input() {
        let mut rng = SimRng::seed_from(11);
        let raw: Vec<bool> = (0..400_000).map(|_| rng.bernoulli(0.8)).collect();
        let out = VonNeumann::extract(&raw);
        // Rate: p(1-p) = 0.16 outputs per input bit.
        let rate = out.len() as f64 / raw.len() as f64;
        assert!((rate - 0.16).abs() < 0.01, "rate {rate}");
        let ones = out.iter().filter(|&&b| b).count() as f64 / out.len() as f64;
        // 5-sigma band for ~64k outputs: +-0.01.
        assert!((ones - 0.5).abs() < 0.01, "ones {ones}");
    }

    #[test]
    fn streaming_equals_batch() {
        let mut rng = SimRng::seed_from(12);
        let raw: Vec<bool> = (0..1000).map(|_| rng.bernoulli(0.3)).collect();
        let batch = VonNeumann::extract(&raw);
        let mut vn = VonNeumann::new();
        let streamed: Vec<bool> = raw.iter().filter_map(|&b| vn.push(b)).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn reset_discards_half_pair() {
        let mut vn = VonNeumann::new();
        assert_eq!(vn.push(true), None);
        vn.reset();
        // A fresh pair starts now: (0, 1) -> 0.
        assert_eq!(vn.push(false), None);
        assert_eq!(vn.push(true), Some(false));
    }

    #[test]
    fn constant_input_yields_nothing() {
        assert!(VonNeumann::extract(&[true; 100]).is_empty());
        assert!(VonNeumann::extract(&[false; 100]).is_empty());
    }

    #[test]
    fn expected_rate_peaks_at_half() {
        assert_eq!(VonNeumann::expected_rate(0.5), 0.25);
        assert!(VonNeumann::expected_rate(0.8) < 0.25);
        assert_eq!(VonNeumann::expected_rate(0.0), 0.0);
    }

    #[test]
    fn correlated_input_is_not_fixed_by_von_neumann() {
        // Von Neumann assumes independence: a strongly sticky source
        // (P(flip) = 0.1) produces *anti*-correlated output pairs —
        // document the known limitation with a positive test that the
        // output is still balanced but the rate collapses.
        let mut rng = SimRng::seed_from(13);
        let mut prev = false;
        let raw: Vec<bool> = (0..200_000)
            .map(|_| {
                if rng.bernoulli(0.1) {
                    prev = !prev;
                }
                prev
            })
            .collect();
        let out = VonNeumann::extract(&raw);
        let rate = out.len() as f64 / raw.len() as f64;
        // i.i.d. balanced would give 0.25; the sticky source gives ~
        // P(pair differs)/2 = 0.1... /2.
        assert!(rate < 0.08, "rate {rate}");
    }
}
