//! The elementary TRNG baseline — Section 5.3.
//!
//! "Elementary TRNG consists of a free-running oscillator sampled by a
//! system clock. Jitter accumulation process is exactly the same as
//! described in our model, but the entropy extraction is different
//! since the noisy signal is sampled with timing-precision equal to
//! the half-period of the ring oscillator."
//!
//! The baseline shares the simulated substrate with the carry-chain
//! TRNG, so accumulation-time comparisons (the 797× of equation (8))
//! are apples-to-apples: same jitter physics, different extractor.

use trng_fpga_sim::noise::NoiseConfig;
use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_model::params::PlatformParams;

/// Configuration of the elementary TRNG.
#[derive(Debug, Clone)]
pub struct ElementaryConfig {
    /// Platform parameters (d0 and jitter sigma drive the simulation).
    pub platform: PlatformParams,
    /// Ring stages. The paper's best case is a single-LUT ring
    /// (sampling precision `tstep_RO = d0_LUT`), which this defaults to.
    pub stages: usize,
    /// Accumulation time between samples.
    pub t_a: Ps,
    /// Device identity.
    pub device: DeviceSeed,
    /// Process-variation magnitudes.
    pub process: ProcessVariation,
}

impl ElementaryConfig {
    /// Best-case elementary TRNG (1-stage ring) with the given
    /// accumulation time on the default Spartan-6 platform.
    pub fn best_case(t_a: Ps) -> Self {
        ElementaryConfig {
            platform: PlatformParams::spartan6(),
            stages: 1,
            t_a,
            device: DeviceSeed::new(0),
            process: ProcessVariation::NONE,
        }
    }
}

/// A free-running ring oscillator sampled directly by the system clock.
///
/// # Examples
///
/// ```
/// use trng_core::elementary::{ElementaryConfig, ElementaryTrng};
/// use trng_fpga_sim::time::Ps;
///
/// // With a long accumulation time the bits are essentially fair.
/// let cfg = ElementaryConfig::best_case(Ps::from_us(20.0));
/// let mut trng = ElementaryTrng::new(cfg, 1).expect("valid");
/// let bits = trng.generate(100);
/// assert_eq!(bits.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct ElementaryTrng {
    oscillator: RingOscillator,
    t: Ps,
    t_a: Ps,
}

impl ElementaryTrng {
    /// Builds the baseline TRNG.
    ///
    /// # Errors
    ///
    /// Returns the oscillator's validation message for invalid
    /// configurations (even stage count, non-positive delays or
    /// accumulation time).
    pub fn new(config: ElementaryConfig, seed: u64) -> Result<Self, String> {
        if config.t_a.as_ps() <= 0.0 {
            return Err(format!(
                "accumulation time must be positive, got {}",
                config.t_a
            ));
        }
        let ro_config = RingOscillatorConfig {
            stages: config.stages,
            stage_delay: Ps::from_ps(config.platform.d0_lut_ps),
            noise: NoiseConfig::white_only(Ps::from_ps(config.platform.sigma_lut_ps)),
            process: config.process,
            device: config.device,
            base_site: (0, 0),
            history_window: Ps::from_ns(2.0),
            backend: Default::default(),
        };
        let oscillator = RingOscillator::new(ro_config, SimRng::seed_from(seed))?;
        Ok(ElementaryTrng {
            oscillator,
            t: Ps::ZERO,
            t_a: config.t_a,
        })
    }

    /// Sampling precision of this baseline: the ring half-period.
    pub fn sampling_precision(&self) -> Ps {
        self.oscillator.half_period()
    }

    /// Generates the next bit: advance `tA`, sample node 0.
    pub fn next_bit(&mut self) -> bool {
        self.t += self.t_a;
        self.oscillator.advance_to(self.t);
        self.oscillator.node(0).edge_train().level_at(self.t)
    }

    /// Generates `count` bits.
    pub fn generate(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.next_bit()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bias_of(bits: &[bool]) -> f64 {
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        (ones - 0.5).abs()
    }

    fn flip_rate(bits: &[bool]) -> f64 {
        bits.windows(2).filter(|w| w[0] != w[1]).count() as f64 / (bits.len() - 1) as f64
    }

    #[test]
    fn long_accumulation_gives_fair_bits() {
        // sigma_acc(20 us) = 2.6 * sqrt(2e7/480) ~ 530 ps > half-period
        // 480 ps: the phase is fully randomized between samples.
        let cfg = ElementaryConfig::best_case(Ps::from_us(20.0));
        let mut trng = ElementaryTrng::new(cfg, 42).expect("valid");
        let bits = trng.generate(4000);
        assert!(bias_of(&bits) < 0.03, "bias {}", bias_of(&bits));
        let fr = flip_rate(&bits);
        assert!((fr - 0.5).abs() < 0.04, "flip rate {fr}");
    }

    #[test]
    fn short_accumulation_is_predictable() {
        // At tA = 100 ns, sigma_acc ~ 37 ps << 480 ps half-period:
        // consecutive samples are strongly correlated (the phase barely
        // diffuses relative to the deterministic drift pattern).
        let cfg = ElementaryConfig {
            // Pin the deterministic drift to zero: tA an exact multiple
            // of the period (2 * d0 for a 1-stage ring).
            platform: PlatformParams::new(100_000.0 / 208.0, 17.0, 2.6).expect("valid"),
            ..ElementaryConfig::best_case(Ps::from_ns(100.0))
        };
        let mut trng = ElementaryTrng::new(cfg, 7).expect("valid");
        let bits = trng.generate(2000);
        // Few flips: the random walk (37 ps/step) rarely crosses the
        // half-period-wide decision boundary.
        assert!(flip_rate(&bits) < 0.3, "flip rate {}", flip_rate(&bits));
    }

    #[test]
    fn sampling_precision_is_half_period() {
        let cfg = ElementaryConfig::best_case(Ps::from_us(1.0));
        let trng = ElementaryTrng::new(cfg, 0).expect("valid");
        assert_eq!(trng.sampling_precision(), Ps::from_ps(480.0));
        let cfg3 = ElementaryConfig {
            stages: 3,
            ..ElementaryConfig::best_case(Ps::from_us(1.0))
        };
        let trng3 = ElementaryTrng::new(cfg3, 0).expect("valid");
        assert_eq!(trng3.sampling_precision(), Ps::from_ps(1440.0));
    }

    #[test]
    fn reproducible_with_seed() {
        let cfg = ElementaryConfig::best_case(Ps::from_us(5.0));
        let mut a = ElementaryTrng::new(cfg.clone(), 9).expect("valid");
        let mut b = ElementaryTrng::new(cfg, 9).expect("valid");
        assert_eq!(a.generate(100), b.generate(100));
    }

    #[test]
    fn rejects_zero_accumulation() {
        let cfg = ElementaryConfig::best_case(Ps::ZERO);
        assert!(ElementaryTrng::new(cfg, 0).is_err());
    }

    #[test]
    fn rejects_even_ring() {
        let cfg = ElementaryConfig {
            stages: 2,
            ..ElementaryConfig::best_case(Ps::from_us(1.0))
        };
        assert!(ElementaryTrng::new(cfg, 0).is_err());
    }
}
