//! The carry-chain TRNG — the paper's complete design (Figures 2/3/5).
//!
//! [`CarryChainTrng`] wires together the simulated substrate and the
//! extractor exactly like the hardware: a free-running `n`-stage ring
//! oscillator whose every node feeds a fast tapped delay line; on each
//! sampling clock edge (every `N_A` system-clock periods, i.e. every
//! `tA`), all lines capture simultaneously and the entropy extractor
//! decodes one raw bit from the first edge position.

use trng_fpga_sim::batch::BatchedRingEngine;
use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::edge_train::EdgeCursor;
use trng_fpga_sim::fabric::Fabric;
use trng_fpga_sim::noise::{
    AttackInjection, FlickerParams, GlobalModulation, NoiseBackend, NoiseConfig,
};
use trng_fpga_sim::placement::{PlacementError, TrngPlacement};
use trng_fpga_sim::primitives::CaptureFf;
use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::scenario::NoiseEnvironment;
use trng_fpga_sim::time::Ps;
use trng_model::params::{DesignParams, ParamError, PlatformParams};

use crate::bubble::BubbleFilter;
use crate::extractor::{EntropyExtractor, ExtractedBit};
use crate::snippet::{Snippet, SnippetKind};

use core::fmt;
use std::error::Error;

/// Full configuration of a simulated TRNG instance.
#[derive(Debug, Clone)]
pub struct TrngConfig {
    /// Platform parameters (drive the simulator's physics).
    pub platform: PlatformParams,
    /// Design parameters (n, m, k, f_CLK, N_A, np).
    pub design: DesignParams,
    /// Bubble-filter strategy of the extractor.
    pub bubble_filter: BubbleFilter,
    /// Device identity (freezes process variation).
    pub device: DeviceSeed,
    /// Process-variation magnitudes.
    pub process: ProcessVariation,
    /// Fabric geometry.
    pub fabric: Fabric,
    /// First carry column of the delay lines.
    pub start_column: u32,
    /// First slice row of the delay lines.
    pub first_row: u32,
    /// Optional flicker noise.
    pub flicker: Option<FlickerParams>,
    /// Optional global supply/temperature modulation.
    pub global: Option<GlobalModulation>,
    /// Optional attacker injection.
    pub attack: Option<AttackInjection>,
    /// Use ideal delay lines (no DNL, skew or metastability).
    ///
    /// Turns the simulation into the paper's *model* assumptions
    /// exactly — used to validate equation (3) against simulation.
    pub ideal_tdc: bool,
    /// Flip-flop metastability half-aperture (ignored when
    /// `ideal_tdc`).
    pub meta_window: Ps,
    /// How run-time noise is synthesised. [`NoiseBackend::Scalar`]
    /// (default) keeps the replay-exact draw sequence;
    /// [`NoiseBackend::Batched`] synthesises whole windows at once —
    /// statistically equivalent, roughly an order of magnitude faster
    /// per raw bit, but not byte-identical to scalar streams.
    pub noise_backend: NoiseBackend,
}

impl TrngConfig {
    /// The paper's `k = 1` configuration on the default device.
    pub fn paper_k1() -> Self {
        TrngConfig {
            platform: PlatformParams::spartan6(),
            design: DesignParams::paper_k1(),
            bubble_filter: BubbleFilter::Priority,
            device: DeviceSeed::new(0),
            process: ProcessVariation::default(),
            fabric: Fabric::spartan6(),
            start_column: 4,
            first_row: 1,
            flicker: Some(FlickerParams::default()),
            global: None,
            attack: None,
            ideal_tdc: false,
            // Wide enough that adjacent-tap apertures overlap on narrow
            // CARRY4 bins, reproducing Figure 4 (c) bubbles; see
            // `CaptureFf::default`.
            meta_window: Ps::from_ps(9.0),
            noise_backend: NoiseBackend::Scalar,
        }
    }

    /// The paper's `k = 4` configuration (tA = 50 ns, np = 13).
    pub fn paper_k4() -> Self {
        TrngConfig {
            design: DesignParams::paper_k4(),
            ..TrngConfig::paper_k1()
        }
    }

    /// An idealized instance matching the stochastic model exactly:
    /// no process variation, no flicker, ideal TDC.
    pub fn ideal() -> Self {
        TrngConfig {
            process: ProcessVariation::NONE,
            flicker: None,
            ideal_tdc: true,
            meta_window: Ps::ZERO,
            ..TrngConfig::paper_k1()
        }
    }

    /// Sets the design, builder-style.
    pub fn with_design(mut self, design: DesignParams) -> Self {
        self.design = design;
        self
    }

    /// Sets the device seed, builder-style.
    pub fn with_device(mut self, device: DeviceSeed) -> Self {
        self.device = device;
        self
    }

    /// Sets the bubble filter, builder-style.
    pub fn with_bubble_filter(mut self, filter: BubbleFilter) -> Self {
        self.bubble_filter = filter;
        self
    }

    /// Sets the noise-synthesis backend, builder-style.
    pub fn with_noise_backend(mut self, backend: NoiseBackend) -> Self {
        self.noise_backend = backend;
        self
    }

    /// Derives the configuration of shard `index` in a multi-instance
    /// deployment on the *same* device.
    ///
    /// The paper scales throughput by instantiating parallel copies of
    /// the 67-slice design (Section 6, Table 2); the copies share the
    /// FPGA but occupy disjoint sites, so each sees its own process
    /// variation. Shards are packed left-to-right along the carry
    /// columns (each instance spans `2·n` columns) and wrap into the
    /// next clock region when a row band is full, keeping every carry
    /// chain inside a single region.
    ///
    /// Shard 0 is the base configuration itself.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTrngError::Placement`] when `index` does not fit
    /// on the fabric.
    pub fn for_shard(&self, index: u32) -> Result<TrngConfig, BuildTrngError> {
        let span = 2 * self.design.n as u32;
        let usable = self.fabric.columns.saturating_sub(self.start_column);
        let slots_per_band = (usable / span).max(1);
        let mut config = self.clone();
        config.start_column = self.start_column + (index % slots_per_band) * span;
        config.first_row =
            self.first_row + (index / slots_per_band) * self.fabric.clock_region_rows;
        // Validate the placement eagerly so an oversubscribed fabric is
        // a build error at derivation time, not at first use.
        TrngPlacement::auto(
            &config.fabric,
            config.design.n,
            config.design.m,
            config.start_column,
            config.first_row,
        )?;
        Ok(config)
    }

    /// Applies a scenario [`NoiseEnvironment`] to this configuration.
    ///
    /// `Some` overrides replace the corresponding noise source, `None`
    /// keeps the base one, and `white_sigma_scale` multiplies the
    /// platform's thermal sigma (`sigma_LUT`). The default environment
    /// returns a configuration equal to `self`.
    pub fn with_environment(&self, env: &NoiseEnvironment) -> TrngConfig {
        let mut config = self.clone();
        if let Some(f) = env.flicker {
            config.flicker = Some(f);
        }
        if let Some(g) = &env.global {
            config.global = Some(g.clone());
        }
        if let Some(a) = env.attack {
            config.attack = Some(a);
        }
        config.platform = PlatformParams {
            sigma_lut_ps: self.platform.sigma_lut_ps * env.white_sigma_scale,
            ..self.platform
        };
        config
    }

    fn noise(&self) -> NoiseConfig {
        let mut noise = NoiseConfig::white_only(Ps::from_ps(self.platform.sigma_lut_ps));
        noise.flicker = self.flicker;
        noise.global = self.global.clone();
        noise.attack = self.attack;
        noise
    }
}

impl Default for TrngConfig {
    fn default() -> Self {
        TrngConfig::paper_k1()
    }
}

/// Errors building a [`CarryChainTrng`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildTrngError {
    /// Design parameters inconsistent with the platform.
    Params(ParamError),
    /// Placement violates fabric constraints.
    Placement(PlacementError),
    /// Ring-oscillator configuration rejected.
    Oscillator(String),
}

impl fmt::Display for BuildTrngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTrngError::Params(e) => write!(f, "invalid design parameters: {e}"),
            BuildTrngError::Placement(e) => write!(f, "invalid placement: {e}"),
            BuildTrngError::Oscillator(e) => write!(f, "invalid oscillator: {e}"),
        }
    }
}

impl Error for BuildTrngError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildTrngError::Params(e) => Some(e),
            BuildTrngError::Placement(e) => Some(e),
            BuildTrngError::Oscillator(_) => None,
        }
    }
}

impl From<ParamError> for BuildTrngError {
    fn from(e: ParamError) -> Self {
        BuildTrngError::Params(e)
    }
}

impl From<PlacementError> for BuildTrngError {
    fn from(e: PlacementError) -> Self {
        BuildTrngError::Placement(e)
    }
}

/// Per-run statistics of a TRNG instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrngStats {
    /// Total snippets sampled.
    pub samples: u64,
    /// Snippets with no detectable edge (Section 5.2 failure mode).
    pub missed_edges: u64,
    /// Regular snippets (Figure 4 (a)).
    pub regular: u64,
    /// Double-edge snippets (Figure 4 (b)).
    pub double_edge: u64,
    /// Bubbled snippets (Figure 4 (c)).
    pub bubbled: u64,
}

impl TrngStats {
    /// Fraction of samples whose edge was missed.
    pub fn missed_edge_rate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.missed_edges as f64 / self.samples as f64
        }
    }
}

/// The complete simulated carry-chain TRNG.
///
/// # Examples
///
/// ```
/// use trng_core::trng::{CarryChainTrng, TrngConfig};
///
/// let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 2015)?;
/// let raw: Vec<bool> = trng.generate_raw(64);
/// assert_eq!(raw.len(), 64);
/// // Post-processed output applies the design's np = 7 XOR compression.
/// let out = trng.generate_postprocessed(8);
/// assert_eq!(out.len(), 8);
/// # Ok::<(), trng_core::trng::BuildTrngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CarryChainTrng {
    config: TrngConfig,
    oscillator: RingOscillator,
    /// Block-synthesis engine, present only on the
    /// [`NoiseBackend::Batched`] hot path (and only when the placed
    /// lines support the run-length sampler). When set it replaces the
    /// oscillator + per-line sampler entirely.
    engine: Option<BatchedRingEngine>,
    lines: Vec<TappedDelayLine>,
    extractor: EntropyExtractor,
    rng: SimRng,
    t: Ps,
    t_a: Ps,
    stats: TrngStats,
    /// One reusable packed capture word per line — the hot path never
    /// allocates per sample (`m ≤ 64`, which holds for every paper
    /// configuration).
    scratch_words: Vec<u64>,
    /// Per-line edge-train cursors giving the sampler amortized O(1)
    /// signal lookups instead of per-tap binary searches.
    cursors: Vec<EdgeCursor>,
}

impl CarryChainTrng {
    /// Builds a TRNG instance with a reproducible simulation seed.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTrngError`] if the design is inconsistent with
    /// the platform, the placement violates fabric constraints, or the
    /// oscillator configuration is invalid.
    pub fn new(config: TrngConfig, seed: u64) -> Result<Self, BuildTrngError> {
        config.design.validate(&config.platform)?;
        let mut rng = SimRng::seed_from(seed);

        let n = config.design.n;
        let m = config.design.m;
        let tstep = Ps::from_ps(config.platform.tstep_ps);

        // Place the design (even for ideal TDC: placement is still
        // validated so resource accounting stays meaningful).
        let placement =
            TrngPlacement::auto(&config.fabric, n, m, config.start_column, config.first_row)?;

        // History must cover the longest line look-back plus a safety
        // margin for DNL (bins up to ~1.5x nominal) and clock skew.
        let history = Ps::from_ps(config.platform.tstep_ps * m as f64 * 2.0 + 500.0);

        let ro_config = RingOscillatorConfig {
            stages: n,
            stage_delay: Ps::from_ps(config.platform.d0_lut_ps),
            noise: config.noise(),
            process: config.process,
            device: config.device,
            base_site: (
                u64::from(placement.oscillator_site(0).x),
                u64::from(placement.oscillator_site(0).y),
            ),
            history_window: history,
            backend: config.noise_backend,
        };
        let ro_config_for_engine = ro_config.clone();
        let oscillator =
            RingOscillator::new(ro_config, rng.fork()).map_err(BuildTrngError::Oscillator)?;

        let lines: Vec<TappedDelayLine> = (0..n)
            .map(|i| {
                if config.ideal_tdc {
                    TappedDelayLine::ideal(m, tstep)
                } else {
                    let site = placement.carry4_site(i, 0);
                    TappedDelayLine::placed(
                        tstep,
                        config.device,
                        &config.process,
                        &config.fabric,
                        site.x,
                        site.y,
                        placement.carry4s_per_line,
                        CaptureFf::new(config.meta_window),
                    )
                }
            })
            .collect();

        let extractor = EntropyExtractor::new(config.design.k, config.bubble_filter);
        let t_a = Ps::from_ps(config.design.t_a_ps());

        // Batched backend: build the whole-window engine from the same
        // ring configuration and placed lines. Unsupported layouts
        // (wide lines, non-monotone taps) silently fall back to the
        // scalar oscillator, which still uses block-ziggurat normals.
        let engine = if config.noise_backend == NoiseBackend::Batched && m <= 64 {
            BatchedRingEngine::new(&ro_config_for_engine, &lines, rng.fork()).ok()
        } else {
            None
        };

        Ok(CarryChainTrng {
            config,
            oscillator,
            engine,
            lines,
            extractor,
            rng,
            t: Ps::ZERO,
            t_a,
            stats: TrngStats::default(),
            scratch_words: vec![0; n],
            cursors: vec![EdgeCursor::new(); n],
        })
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &TrngConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &TrngStats {
        &self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> Ps {
        self.t
    }

    /// Advances one accumulation interval and captures every line into
    /// the packed scratch words, returning their XOR and updating the
    /// sample statistics.
    ///
    /// This is the allocation-free hot path for `m ≤ 64`. It is bit-
    /// and RNG-draw-identical to the `Vec<bool>` pipeline: taps are
    /// captured in the same order through the same metastability
    /// model, only the storage (packed words) and the signal lookup
    /// (resumable [`EdgeCursor`] per line) differ.
    fn sample_words(&mut self) -> u64 {
        self.t += self.t_a;
        let xor = if let Some(engine) = &mut self.engine {
            // Batched backend: whole-window synthesis + run-length
            // sampling in one pass; metastability coins still come
            // from the TRNG's own RNG in ascending-tap order.
            engine.sample_words(self.t, &mut self.rng, &mut self.scratch_words)
        } else {
            self.oscillator.advance_to(self.t);
            let mut xor = 0u64;
            for i in 0..self.lines.len() {
                let node = self.oscillator.node(i);
                let word =
                    self.lines[i].sample_into(&node, self.t, &mut self.cursors[i], &mut self.rng);
                self.scratch_words[i] = word;
                xor ^= word;
            }
            xor
        };
        self.stats.samples += 1;
        self.record_kind(Snippet::classify_word(xor, self.config.design.m));
        xor
    }

    /// The noise backend actually in effect: [`NoiseBackend::Batched`]
    /// only when the whole-window engine was built (requested *and*
    /// the layout supports it); otherwise [`NoiseBackend::Scalar`].
    pub fn active_noise_backend(&self) -> NoiseBackend {
        if self.engine.is_some() {
            NoiseBackend::Batched
        } else {
            NoiseBackend::Scalar
        }
    }

    fn record_kind(&mut self, kind: SnippetKind) {
        match kind {
            SnippetKind::Regular => self.stats.regular += 1,
            SnippetKind::DoubleEdge => self.stats.double_edge += 1,
            SnippetKind::Bubbled => self.stats.bubbled += 1,
            SnippetKind::NoEdge => {}
        }
    }

    /// Advances one accumulation interval and captures the raw snippet.
    pub fn sample_snippet(&mut self) -> Snippet {
        let m = self.config.design.m;
        if m <= 64 {
            let _ = self.sample_words();
            return Snippet::from_packed_words(&self.scratch_words, m);
        }
        // Wide-line fallback: the original unpacked pipeline.
        self.t += self.t_a;
        self.oscillator.advance_to(self.t);
        let words: Vec<Vec<bool>> = (0..self.config.design.n)
            .map(|i| {
                let node = self.oscillator.node(i);
                self.lines[i].sample(&node, self.t, &mut self.rng)
            })
            .collect();
        let snippet = Snippet::new(words);
        self.stats.samples += 1;
        let kind = snippet.classify();
        self.record_kind(kind);
        snippet
    }

    /// Generates one raw bit with full decode information.
    ///
    /// `None` means the edge was missed (counted in
    /// [`TrngStats::missed_edges`]); the hardware would emit the
    /// priority encoder's default in that case — see
    /// [`CarryChainTrng::next_raw_bit`].
    pub fn next_extracted(&mut self) -> Option<ExtractedBit> {
        let m = self.config.design.m;
        let out = if m <= 64 {
            let xor = self.sample_words();
            self.extractor.extract_word(xor, m as u32)
        } else {
            let snippet = self.sample_snippet();
            self.extractor.extract(&snippet)
        };
        if out.is_none() {
            self.stats.missed_edges += 1;
        }
        out
    }

    /// Generates one raw bit.
    ///
    /// On a missed edge the hardware priority encoder outputs position
    /// 0, so the bit is `true` (even-position parity); the miss is
    /// counted in [`TrngStats`].
    pub fn next_raw_bit(&mut self) -> bool {
        self.next_extracted().is_none_or(|e| e.bit)
    }

    /// Generates `count` raw (pre-compression) bits.
    pub fn generate_raw(&mut self, count: usize) -> Vec<bool> {
        (0..count).map(|_| self.next_raw_bit()).collect()
    }

    /// Generates `count` post-processed bits using the design's XOR
    /// compression rate `np` (each output bit consumes `np` raw bits).
    pub fn generate_postprocessed(&mut self, count: usize) -> Vec<bool> {
        let np = self.config.design.np;
        (0..count)
            .map(|_| {
                let mut acc = false;
                for _ in 0..np {
                    acc ^= self.next_raw_bit();
                }
                acc
            })
            .collect()
    }

    /// Fills `out` with raw (pre-compression) bits, 8 per byte, MSB
    /// first — byte `b` packs bits `8b..8b+8` of the raw stream in
    /// generation order.
    ///
    /// Equivalent to packing [`CarryChainTrng::generate_raw`] output,
    /// but allocation-free in steady state: the whole
    /// sample→extract→pack pipeline runs on reused scratch words.
    pub fn fill_raw(&mut self, out: &mut [u8]) {
        for byte in out {
            let mut b = 0u8;
            for _ in 0..8 {
                b = b << 1 | u8::from(self.next_raw_bit());
            }
            *byte = b;
        }
    }

    /// Fills `out` with post-processed bytes: every output bit is the
    /// XOR of `np` raw bits (the design's compression), packed 8 per
    /// byte, MSB first.
    ///
    /// Equivalent to packing [`CarryChainTrng::generate_postprocessed`]
    /// output, but allocation-free in steady state.
    pub fn fill_postprocessed(&mut self, out: &mut [u8]) {
        let np = self.config.design.np;
        for byte in out {
            let mut b = 0u8;
            for _ in 0..8 {
                let mut acc = false;
                for _ in 0..np {
                    acc ^= self.next_raw_bit();
                }
                b = b << 1 | u8::from(acc);
            }
            *byte = b;
        }
    }

    /// An iterator over raw bits (borrows the generator).
    pub fn raw_bits(&mut self) -> RawBits<'_> {
        RawBits { trng: self }
    }
}

/// Iterator over raw bits of a [`CarryChainTrng`].
#[derive(Debug)]
pub struct RawBits<'a> {
    trng: &'a mut CarryChainTrng,
}

impl Iterator for RawBits<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        Some(self.trng.next_raw_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_overrides_replace_and_scale() {
        use trng_fpga_sim::noise::AttackInjection;

        let base = TrngConfig::paper_k1();
        let identity = base.with_environment(&NoiseEnvironment::default());
        assert_eq!(identity.platform, base.platform);
        assert_eq!(identity.flicker, base.flicker);
        assert_eq!(identity.attack, base.attack);

        let env = NoiseEnvironment {
            attack: Some(AttackInjection::locking(1e12 / 480.0, 0.5)),
            white_sigma_scale: 0.5,
            ..NoiseEnvironment::default()
        };
        let out = base.with_environment(&env);
        assert_eq!(out.attack, env.attack);
        assert_eq!(out.flicker, base.flicker, "None keeps base flicker");
        assert!((out.platform.sigma_lut_ps - base.platform.sigma_lut_ps * 0.5).abs() < 1e-12);
        assert_eq!(out.platform.d0_lut_ps, base.platform.d0_lut_ps);
    }

    #[test]
    fn paper_k1_generates_balanced_bits() {
        let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 1).expect("build");
        let bits = trng.generate_raw(4000);
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        // H_RAW ~ 0.99 -> worst-case model bias ~ 0.06, but the CARRY4
        // structural DNL adds a parity imbalance of ~0.1 (this is the
        // non-linearity that makes the paper compress with np = 7).
        assert!((ones - 0.5).abs() < 0.16, "ones fraction {ones}");
        assert_eq!(trng.stats().samples, 4000);
        // m = 36 never misses the edge (Section 5.2).
        assert_eq!(trng.stats().missed_edges, 0);
    }

    #[test]
    fn ideal_instance_matches_model_entropy_roughly() {
        // With an ideal TDC and no coloured noise, the bit probability
        // tracks eq (3); at tA = 20 ns the bits are essentially fair.
        let cfg = TrngConfig::ideal().with_design(DesignParams {
            n_a: 2,
            ..DesignParams::paper_k1()
        });
        let mut trng = CarryChainTrng::new(cfg, 7).expect("build");
        let bits = trng.generate_raw(6000);
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.05, "ones fraction {ones}");
    }

    #[test]
    fn k4_low_ta_is_heavily_biased_or_sticky() {
        // Table 1: k = 4, tA = 10 ns has H_RAW = 0.03. To expose the
        // low entropy directly, pin the deterministic phase drift to
        // zero by making tA an exact multiple of the stage delay
        // (d0 = 10 ns / 21); the edge position then only moves by the
        // accumulated jitter (~9 ps/sample), far less than the 68 ps
        // combined bin, so consecutive bits rarely flip.
        let mut cfg = TrngConfig::ideal().with_design(DesignParams {
            k: 4,
            n_a: 1,
            np: 1,
            ..DesignParams::paper_k4()
        });
        cfg.platform = PlatformParams::new(10_000.0 / 21.0, 17.0, 2.6).expect("valid platform");
        let mut trng = CarryChainTrng::new(cfg, 3).expect("build");
        let bits = trng.generate_raw(2000);
        // Count bit flips: a healthy source flips ~50 %, this one far less.
        let flips =
            bits.windows(2).filter(|w| w[0] != w[1]).count() as f64 / (bits.len() - 1) as f64;
        assert!(flips < 0.25, "flip rate {flips}");
    }

    #[test]
    fn sample_snippet_classification_accumulates() {
        let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 11).expect("build");
        for _ in 0..500 {
            let _ = trng.sample_snippet();
        }
        let s = trng.stats();
        assert_eq!(s.samples, 500);
        // Classified kinds never exceed the sample count (the remainder
        // are no-edge snippets, none expected at m = 36).
        assert!(s.regular + s.double_edge + s.bubbled <= 500);
        // Regular sampling dominates (Figure 4 (a) is "most cases").
        assert!(s.regular > 250, "regular {}", s.regular);
    }

    #[test]
    fn postprocessed_output_is_less_biased() {
        let cfg = TrngConfig::ideal().with_design(DesignParams {
            k: 4,
            n_a: 5,
            np: 13,
            ..DesignParams::paper_k4()
        });
        let mut trng = CarryChainTrng::new(cfg, 5).expect("build");
        let bits = trng.generate_postprocessed(2000);
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.05, "ones fraction {ones}");
    }

    #[test]
    fn missed_edges_appear_with_short_lines() {
        // m = 32 on a device with a slow LUT: the paper observed 0.8 %
        // missed edges and attributed them to LUTs slower than the
        // average d0. Find a fabricated device whose slowest stage
        // delay exceeds the 32-bin window (544 ps nominal), then show
        // the edge is sometimes missed on exactly that device.
        let process = ProcessVariation::new(0.08, 0.06, 0.01);
        let placement_x = 4u64; // oscillator sites are (4, 0), (6, 0), (8, 0)
        let slow_device = (0..5000u64)
            .map(DeviceSeed::new)
            .find(|&dev| {
                (0..3).any(|i| {
                    process.delay_multiplier(dev, placement_x + 2 * i, 0) > 544.0 / 480.0 + 0.01
                })
            })
            .expect("a device with a slow LUT exists among 5000");
        let cfg = TrngConfig {
            device: slow_device,
            process,
            ..TrngConfig::paper_k1()
        }
        .with_design(DesignParams {
            m: 32,
            ..DesignParams::paper_k1()
        });
        let mut trng = CarryChainTrng::new(cfg, 17).expect("build");
        let _ = trng.generate_raw(3000);
        let rate = trng.stats().missed_edge_rate();
        assert!(rate > 0.0, "expected some missed edges at m = 32");
        assert!(rate < 0.2, "missed-edge rate implausibly high: {rate}");
    }

    #[test]
    fn m36_never_misses() {
        for dev in 0..4 {
            let cfg = TrngConfig {
                device: DeviceSeed::new(dev),
                ..TrngConfig::paper_k1()
            };
            let mut trng = CarryChainTrng::new(cfg, dev).expect("build");
            let _ = trng.generate_raw(500);
            assert_eq!(trng.stats().missed_edges, 0, "device {dev}");
        }
    }

    #[test]
    fn build_errors_are_reported() {
        let bad = TrngConfig::paper_k1().with_design(DesignParams {
            m: 28,
            ..DesignParams::paper_k1()
        });
        assert!(matches!(
            CarryChainTrng::new(bad, 0),
            Err(BuildTrngError::Params(_))
        ));
        let bad = TrngConfig {
            start_column: 5, // odd column: no carry chain
            ..TrngConfig::paper_k1()
        };
        assert!(matches!(
            CarryChainTrng::new(bad, 0),
            Err(BuildTrngError::Placement(_))
        ));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = CarryChainTrng::new(TrngConfig::paper_k1(), 99).expect("build");
        let mut b = CarryChainTrng::new(TrngConfig::paper_k1(), 99).expect("build");
        assert_eq!(a.generate_raw(200), b.generate_raw(200));
        let mut c = CarryChainTrng::new(TrngConfig::paper_k1(), 100).expect("build");
        assert_ne!(a.generate_raw(200), c.generate_raw(200));
    }

    #[test]
    fn raw_bits_iterator_yields() {
        let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 1).expect("build");
        let v: Vec<bool> = trng.raw_bits().take(32).collect();
        assert_eq!(v.len(), 32);
    }

    #[test]
    fn for_shard_places_disjoint_instances() {
        let base = TrngConfig::paper_k1();
        // n = 3 -> 6 columns per shard, start column 4, 64-column
        // fabric: 10 shards per 16-row clock region.
        let s0 = base.for_shard(0).expect("shard 0");
        assert_eq!(s0.start_column, base.start_column);
        assert_eq!(s0.first_row, base.first_row);
        let s1 = base.for_shard(1).expect("shard 1");
        assert_eq!(s1.start_column, base.start_column + 6);
        assert_eq!(s1.first_row, base.first_row);
        let s10 = base.for_shard(10).expect("shard 10");
        assert_eq!(s10.start_column, base.start_column);
        assert_eq!(s10.first_row, base.first_row + 16);
        // Every derived shard must actually build.
        for i in 0..8 {
            let cfg = base.for_shard(i).expect("derive");
            assert!(CarryChainTrng::new(cfg, 1).is_ok(), "shard {i} builds");
        }
        // Shards on the same device see different process variation, so
        // identical simulation seeds still produce distinct streams.
        let mut a = CarryChainTrng::new(base.for_shard(0).expect("cfg"), 7).expect("build");
        let mut b = CarryChainTrng::new(base.for_shard(1).expect("cfg"), 7).expect("build");
        assert_ne!(a.generate_raw(256), b.generate_raw(256));
    }

    #[test]
    fn for_shard_rejects_off_fabric_indices() {
        let base = TrngConfig::paper_k1();
        // 10 slots per band x 8 bands fit; far beyond must fail.
        assert!(matches!(
            base.for_shard(1000),
            Err(BuildTrngError::Placement(_))
        ));
    }

    #[test]
    fn stats_missed_edge_rate() {
        let s = TrngStats {
            samples: 1000,
            missed_edges: 8,
            ..TrngStats::default()
        };
        assert!((s.missed_edge_rate() - 0.008).abs() < 1e-12);
        assert_eq!(TrngStats::default().missed_edge_rate(), 0.0);
    }
}
