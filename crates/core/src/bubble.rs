//! Bubble-filter strategies for the edge decoder.
//!
//! Metastable capture flip-flops flip isolated bits ("bubbles") near
//! the signal edge (Figure 4 (c)). The paper filters them "using
//! priority decoder" — the decoder commits to the first observed
//! deviation, which bounds a bubble's damage to a one-bin position
//! error. This module makes the strategy pluggable so the ablation
//! bench can quantify the design choice:
//!
//! * [`BubbleFilter::Priority`] — the paper's behaviour: no smoothing,
//!   the priority encoder takes the first deviation as the edge.
//! * [`BubbleFilter::Majority3`] — a 3-tap majority smoothing pass
//!   before encoding, which repairs isolated bubbles at the cost of
//!   one extra LUT level.
//! * [`BubbleFilter::None`] — alias of `Priority` at the decoding
//!   level but *reports* bubbles instead of silently absorbing them;
//!   useful for instrumentation.

/// Strategy applied to the XOR-combined code before priority encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BubbleFilter {
    /// First deviation wins (the paper's priority decoder).
    #[default]
    Priority,
    /// 3-tap majority vote smoothing, then priority encoding.
    Majority3,
    /// No filtering; identical decode to `Priority` but callers can
    /// distinguish instrumented runs.
    None,
}

impl BubbleFilter {
    /// Applies the filter to a combined code vector, returning the
    /// (possibly smoothed) vector the priority encoder will see.
    pub fn apply(self, code: &[bool]) -> Vec<bool> {
        match self {
            BubbleFilter::Priority | BubbleFilter::None => code.to_vec(),
            BubbleFilter::Majority3 => majority3(code),
        }
    }

    /// Packed-word counterpart of [`BubbleFilter::apply`] for codes of
    /// at most 64 taps: bit `i` of the result equals element `i` of
    /// `apply` on the unpacked code.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=64`.
    pub fn apply_word(self, code: u64, width: u32) -> u64 {
        assert!(
            (1..=64).contains(&width),
            "packed filtering supports at most 64 taps, got {width}"
        );
        match self {
            BubbleFilter::Priority | BubbleFilter::None => code,
            BubbleFilter::Majority3 => majority3_word(code, width),
        }
    }
}

/// 3-tap sliding majority vote; end taps count their single neighbour
/// twice, so isolated end bubbles are also repaired (at the cost of
/// also smoothing away a genuine single-tap run at the ends — the
/// usual trade-off of smoothing filters).
fn majority3(code: &[bool]) -> Vec<bool> {
    let n = code.len();
    if n < 3 {
        return code.to_vec();
    }
    (0..n)
        .map(|i| {
            let a = if i == 0 { code[1] } else { code[i - 1] };
            let b = code[i];
            let c = if i == n - 1 { code[n - 2] } else { code[i + 1] };
            (u8::from(a) + u8::from(b) + u8::from(c)) >= 2
        })
        .collect()
}

/// Bit-parallel [`majority3`]: builds the left- and right-neighbour
/// words (with the end taps' single neighbour duplicated, exactly like
/// the scalar version) and takes the per-bit majority of the three.
fn majority3_word(code: u64, width: u32) -> u64 {
    if width < 3 {
        return code;
    }
    let mask = u64::MAX >> (64 - width);
    let code = code & mask;
    // prev[i] = code[i-1], except prev[0] = code[1].
    let prev = (code << 1) | (code >> 1 & 1);
    // next[i] = code[i+1], except next[width-1] = code[width-2].
    let next = (code >> 1) | ((code >> (width - 2) & 1) << (width - 1));
    ((code & prev) | (code & next) | (prev & next)) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    fn pack(code: &[bool]) -> u64 {
        code.iter()
            .enumerate()
            .fold(0u64, |w, (j, &b)| w | (u64::from(b) << j))
    }

    #[test]
    fn priority_is_identity() {
        let code = bits("11011000");
        assert_eq!(BubbleFilter::Priority.apply(&code), code);
        assert_eq!(BubbleFilter::None.apply(&code), code);
    }

    #[test]
    fn majority_repairs_isolated_bubble() {
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11011000")),
            bits("11111000")
        );
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11101000")),
            bits("11110000")
        );
    }

    #[test]
    fn majority_repairs_end_bubble() {
        // Bubble in the first position.
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("01100000")),
            bits("11100000")
        );
        // Bubble in the last position.
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11100001")),
            bits("11100000")
        );
    }

    #[test]
    fn majority_preserves_clean_edges() {
        for s in ["11110000", "00001111", "11111111", "00000000"] {
            assert_eq!(BubbleFilter::Majority3.apply(&bits(s)), bits(s), "{s}");
        }
    }

    #[test]
    fn majority_preserves_double_edges() {
        // Two genuine edges, each at least 2 taps wide, survive.
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11000011")),
            bits("11000011")
        );
    }

    #[test]
    fn short_codes_pass_through() {
        assert_eq!(BubbleFilter::Majority3.apply(&bits("10")), bits("10"));
        assert_eq!(BubbleFilter::Majority3.apply(&bits("1")), bits("1"));
    }

    #[test]
    fn default_is_priority() {
        assert_eq!(BubbleFilter::default(), BubbleFilter::Priority);
    }

    #[test]
    fn packed_majority_matches_scalar() {
        let cases = [
            "11011000", "11101000", "01100000", "11100001", "11110000", "00001111", "11111111",
            "00000000", "11000011", "10", "1", "011", "010", "101",
        ];
        for s in cases {
            let code = bits(s);
            let expected = pack(&BubbleFilter::Majority3.apply(&code));
            let got = BubbleFilter::Majority3.apply_word(pack(&code), code.len() as u32);
            assert_eq!(got, expected, "{s}");
        }
        // Exhaustive at width 8 and boundary widths 63/64 on patterns.
        for w in 0..256u64 {
            let code: Vec<bool> = (0..8).map(|j| w >> j & 1 == 1).collect();
            let expected = pack(&BubbleFilter::Majority3.apply(&code));
            assert_eq!(
                BubbleFilter::Majority3.apply_word(w, 8),
                expected,
                "width 8 pattern {w:08b}"
            );
        }
        for width in [63u32, 64] {
            for seed in 0..32u64 {
                let word = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left((seed % 63) as u32);
                let code: Vec<bool> = (0..width).map(|j| word >> j & 1 == 1).collect();
                let expected = pack(&BubbleFilter::Majority3.apply(&code));
                assert_eq!(
                    BubbleFilter::Majority3.apply_word(word, width),
                    expected,
                    "width {width} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn packed_priority_is_identity() {
        assert_eq!(
            BubbleFilter::Priority.apply_word(0b1101_1000, 8),
            0b1101_1000
        );
        assert_eq!(BubbleFilter::None.apply_word(0b1101_1000, 8), 0b1101_1000);
    }
}
