//! Bubble-filter strategies for the edge decoder.
//!
//! Metastable capture flip-flops flip isolated bits ("bubbles") near
//! the signal edge (Figure 4 (c)). The paper filters them "using
//! priority decoder" — the decoder commits to the first observed
//! deviation, which bounds a bubble's damage to a one-bin position
//! error. This module makes the strategy pluggable so the ablation
//! bench can quantify the design choice:
//!
//! * [`BubbleFilter::Priority`] — the paper's behaviour: no smoothing,
//!   the priority encoder takes the first deviation as the edge.
//! * [`BubbleFilter::Majority3`] — a 3-tap majority smoothing pass
//!   before encoding, which repairs isolated bubbles at the cost of
//!   one extra LUT level.
//! * [`BubbleFilter::None`] — alias of `Priority` at the decoding
//!   level but *reports* bubbles instead of silently absorbing them;
//!   useful for instrumentation.

/// Strategy applied to the XOR-combined code before priority encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BubbleFilter {
    /// First deviation wins (the paper's priority decoder).
    #[default]
    Priority,
    /// 3-tap majority vote smoothing, then priority encoding.
    Majority3,
    /// No filtering; identical decode to `Priority` but callers can
    /// distinguish instrumented runs.
    None,
}

impl BubbleFilter {
    /// Applies the filter to a combined code vector, returning the
    /// (possibly smoothed) vector the priority encoder will see.
    pub fn apply(self, code: &[bool]) -> Vec<bool> {
        match self {
            BubbleFilter::Priority | BubbleFilter::None => code.to_vec(),
            BubbleFilter::Majority3 => majority3(code),
        }
    }
}

/// 3-tap sliding majority vote; end taps count their single neighbour
/// twice, so isolated end bubbles are also repaired (at the cost of
/// also smoothing away a genuine single-tap run at the ends — the
/// usual trade-off of smoothing filters).
fn majority3(code: &[bool]) -> Vec<bool> {
    let n = code.len();
    if n < 3 {
        return code.to_vec();
    }
    (0..n)
        .map(|i| {
            let a = if i == 0 { code[1] } else { code[i - 1] };
            let b = code[i];
            let c = if i == n - 1 { code[n - 2] } else { code[i + 1] };
            (u8::from(a) + u8::from(b) + u8::from(c)) >= 2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn priority_is_identity() {
        let code = bits("11011000");
        assert_eq!(BubbleFilter::Priority.apply(&code), code);
        assert_eq!(BubbleFilter::None.apply(&code), code);
    }

    #[test]
    fn majority_repairs_isolated_bubble() {
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11011000")),
            bits("11111000")
        );
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11101000")),
            bits("11110000")
        );
    }

    #[test]
    fn majority_repairs_end_bubble() {
        // Bubble in the first position.
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("01100000")),
            bits("11100000")
        );
        // Bubble in the last position.
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11100001")),
            bits("11100000")
        );
    }

    #[test]
    fn majority_preserves_clean_edges() {
        for s in ["11110000", "00001111", "11111111", "00000000"] {
            assert_eq!(BubbleFilter::Majority3.apply(&bits(s)), bits(s), "{s}");
        }
    }

    #[test]
    fn majority_preserves_double_edges() {
        // Two genuine edges, each at least 2 taps wide, survive.
        assert_eq!(
            BubbleFilter::Majority3.apply(&bits("11000011")),
            bits("11000011")
        );
    }

    #[test]
    fn short_codes_pass_through() {
        assert_eq!(BubbleFilter::Majority3.apply(&bits("10")), bits("10"));
        assert_eq!(BubbleFilter::Majority3.apply(&bits("1")), bits("1"));
    }

    #[test]
    fn default_is_priority() {
        assert_eq!(BubbleFilter::default(), BubbleFilter::Priority);
    }
}
