//! Property-based tests of the extractor pipeline and post-processing.
//!
//! Runs under the hermetic `trng-testkit` harness: each property
//! executes `TRNG_PROP_CASES` (default 64) independently seeded cases
//! and reports the failing seed for replay via `TRNG_PROP_SEED`.

use trng_core::bubble::BubbleFilter;
use trng_core::downsample::downsample;
use trng_core::extractor::EntropyExtractor;
use trng_core::postprocess::XorCompressor;
use trng_core::rtl::{extract_packed, PackedWord};
use trng_core::snippet::{Snippet, SnippetKind};
use trng_testkit::prng::{Rng, StdRng};
use trng_testkit::prop::{pick, vec_bool};
use trng_testkit::props;

/// Generator: a single-edge thermometer code of length `4 * m4` plus
/// its edge index (first tap past the edge).
fn thermometer(rng: &mut StdRng, m4: usize) -> (Vec<bool>, usize) {
    let m = m4 * 4;
    let edge = rng.gen_range(1..m);
    let code: Vec<bool> = (0..m).map(|j| j < edge).collect();
    (code, edge)
}

props! {
    fn extractor_decodes_thermometer_parity(rng) {
        let (code, edge) = thermometer(rng, 9);
        let ext = EntropyExtractor::default();
        let out = ext.extract(&Snippet::new(vec![code])).expect("edge present");
        assert_eq!(out.edge_position, edge - 1);
        assert_eq!(out.bit, (edge - 1) % 2 == 0);
    }

    fn extractor_is_polarity_invariant(rng) {
        let (code, _) = thermometer(rng, 9);
        let ext = EntropyExtractor::default();
        let inverted: Vec<bool> = code.iter().map(|&b| !b).collect();
        let a = ext.extract(&Snippet::new(vec![code]));
        let b = ext.extract(&Snippet::new(vec![inverted]));
        assert_eq!(a, b);
    }

    fn extractor_ignores_extra_constant_lines(rng) {
        let (code, _) = thermometer(rng, 9);
        let level = rng.gen::<bool>();
        // XOR with a constant line flips polarity at most — decode is
        // unchanged (polarity invariance).
        let ext = EntropyExtractor::default();
        let single = ext.extract(&Snippet::new(vec![code.clone()]));
        let padded = ext.extract(&Snippet::new(vec![code.clone(), vec![level; code.len()]]));
        assert_eq!(single, padded);
    }

    fn downsample_preserves_every_kth_tap(rng) {
        let bits = vec_bool(rng, 1..20);
        let k = pick(rng, &[1u32, 2, 3, 4]);
        // Pad to a multiple of k.
        let mut code = bits;
        while code.len() % k as usize != 0 {
            code.push(false);
        }
        let d = downsample(&code, k);
        assert_eq!(d.len(), code.len() / k as usize);
        for (l, &bit) in d.iter().enumerate() {
            assert_eq!(bit, code[(l + 1) * k as usize - 1]);
        }
    }

    fn majority_filter_preserves_length_and_clean_codes(rng) {
        let (code, _) = thermometer(rng, 16);
        let filtered = BubbleFilter::Majority3.apply(&code);
        assert_eq!(filtered.len(), code.len());
        // Thermometer codes with runs >= 2 on both sides are fixed
        // points; the generated codes always have a leading run >= 1
        // and trailing run >= 1 — only single-bit end runs may change.
        let edge = code.iter().position(|&b| !b).unwrap();
        if edge >= 2 && code.len() - edge >= 2 {
            assert_eq!(filtered, code);
        }
    }

    fn majority_filter_repairs_any_isolated_interior_bubble(rng) {
        let (mut code, edge) = thermometer(rng, 16);
        let bubble_at = rng.gen_range(0usize..64);
        // A 3-tap majority provably repairs an isolated flipped bit
        // when both of the bit's neighbours (and their neighbours) are
        // clean and agree: at least 2 taps from either array end, and
        // at least 3 taps before / 2 taps after the edge boundary.
        let m = code.len();
        let pos = bubble_at % m;
        // The clean code must itself be a fixed point (runs of >= 2 on
        // both sides of the edge), else the filter smooths the clean
        // single-tap end run too.
        let clean_is_fixed_point = edge >= 2 && edge + 2 <= m;
        let repairable =
            pos >= 2 && pos + 3 <= m && (pos + 3 <= edge || pos >= edge + 2);
        if !(clean_is_fixed_point && repairable) {
            return; // precondition unmet: skip this case
        }
        let clean = code.clone();
        code[pos] = !code[pos];
        let filtered = BubbleFilter::Majority3.apply(&code);
        assert_eq!(filtered, clean);
    }

    fn xor_compressor_streaming_equals_batch(rng) {
        let bits = vec_bool(rng, 0..200);
        let np = rng.gen_range(1u32..12);
        let batch = XorCompressor::compress(np, &bits);
        let mut c = XorCompressor::new(np);
        let streamed: Vec<bool> = bits.iter().filter_map(|&b| c.push(b)).collect();
        assert_eq!(&batch, &streamed);
        assert_eq!(batch.len(), bits.len() / np as usize);
    }

    fn xor_compressor_output_is_group_parity(rng) {
        let bits = vec_bool(rng, 1..120);
        let np = rng.gen_range(1u32..8);
        let out = XorCompressor::compress(np, &bits);
        for (g, &bit) in out.iter().enumerate() {
            let parity = bits[g * np as usize..(g + 1) * np as usize]
                .iter()
                .fold(false, |acc, &b| acc ^ b);
            assert_eq!(bit, parity);
        }
    }

    fn snippet_classification_is_exhaustive(rng) {
        let n_lines = rng.gen_range(1usize..4);
        let lines: Vec<Vec<bool>> = (0..n_lines)
            .map(|_| (0..12).map(|_| rng.gen::<bool>()).collect())
            .collect();
        // classify() never panics and the result is consistent with
        // the edge count of the XOR vector.
        let s = Snippet::new(lines);
        let edges = s.edge_positions().len();
        match s.classify() {
            SnippetKind::NoEdge => assert_eq!(edges, 0),
            SnippetKind::Regular => assert_eq!(edges, 1),
            SnippetKind::DoubleEdge | SnippetKind::Bubbled => assert!(edges >= 2),
        }
    }

    fn xor_vector_is_linear(rng) {
        let a: Vec<bool> = (0..16).map(|_| rng.gen::<bool>()).collect();
        let b: Vec<bool> = (0..16).map(|_| rng.gen::<bool>()).collect();
        // xor_vector of [a, b] equals elementwise a ^ b.
        let s = Snippet::new(vec![a.clone(), b.clone()]);
        let expected: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        assert_eq!(s.xor_vector(), expected);
    }

    fn packed_extractor_is_equivalent_to_golden_model(rng) {
        let n_lines = rng.gen_range(1usize..4);
        let lines: Vec<Vec<bool>> = (0..n_lines)
            .map(|_| (0..36).map(|_| rng.gen::<bool>()).collect())
            .collect();
        let k = pick(rng, &[1u32, 2, 4]);
        // RTL-vs-reference equivalence over arbitrary captures
        // (including bubbles, double edges and no-edge words).
        let golden = EntropyExtractor::new(k, BubbleFilter::Priority);
        let expected = golden.extract(&Snippet::new(lines.clone()));
        let packed: Vec<PackedWord> = lines.iter().map(|l| PackedWord::pack(l)).collect();
        let got = extract_packed(&packed, k);
        assert_eq!(got, expected);
    }
}
