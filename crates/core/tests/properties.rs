//! Property-based tests of the extractor pipeline and post-processing.

use proptest::prelude::*;
use trng_core::bubble::BubbleFilter;
use trng_core::downsample::downsample;
use trng_core::extractor::EntropyExtractor;
use trng_core::postprocess::XorCompressor;
use trng_core::rtl::{extract_packed, PackedWord};
use trng_core::snippet::{Snippet, SnippetKind};

/// Strategy: a single-edge thermometer code of length `4 * m4`.
fn thermometer(m4: usize) -> impl Strategy<Value = (Vec<bool>, usize)> {
    let m = m4 * 4;
    (1..m).prop_map(move |edge| {
        let code: Vec<bool> = (0..m).map(|j| j < edge).collect();
        (code, edge)
    })
}

proptest! {
    #[test]
    fn extractor_decodes_thermometer_parity((code, edge) in thermometer(9)) {
        let ext = EntropyExtractor::default();
        let out = ext.extract(&Snippet::new(vec![code])).expect("edge present");
        prop_assert_eq!(out.edge_position, edge - 1);
        prop_assert_eq!(out.bit, (edge - 1) % 2 == 0);
    }

    #[test]
    fn extractor_is_polarity_invariant((code, _) in thermometer(9)) {
        let ext = EntropyExtractor::default();
        let inverted: Vec<bool> = code.iter().map(|&b| !b).collect();
        let a = ext.extract(&Snippet::new(vec![code]));
        let b = ext.extract(&Snippet::new(vec![inverted]));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn extractor_ignores_extra_constant_lines((code, _) in thermometer(9), level in any::<bool>()) {
        // XOR with a constant line flips polarity at most — decode is
        // unchanged (polarity invariance).
        let ext = EntropyExtractor::default();
        let single = ext.extract(&Snippet::new(vec![code.clone()]));
        let padded = ext.extract(&Snippet::new(vec![code.clone(), vec![level; code.len()]]));
        prop_assert_eq!(single, padded);
    }

    #[test]
    fn downsample_preserves_every_kth_tap(
        bits in proptest::collection::vec(any::<bool>(), 1..20),
        k in prop_oneof![Just(1u32), Just(2), Just(3), Just(4)],
    ) {
        // Pad to a multiple of k.
        let mut code = bits;
        while code.len() % k as usize != 0 {
            code.push(false);
        }
        let d = downsample(&code, k);
        prop_assert_eq!(d.len(), code.len() / k as usize);
        for (l, &bit) in d.iter().enumerate() {
            prop_assert_eq!(bit, code[(l + 1) * k as usize - 1]);
        }
    }

    #[test]
    fn majority_filter_preserves_length_and_clean_codes((code, _) in thermometer(16)) {
        let filtered = BubbleFilter::Majority3.apply(&code);
        prop_assert_eq!(filtered.len(), code.len());
        // Thermometer codes with runs >= 2 on both sides are fixed
        // points; the generated codes always have a leading run >= 1
        // and trailing run >= 1 — only single-bit end runs may change.
        let edge = code.iter().position(|&b| !b).unwrap();
        if edge >= 2 && code.len() - edge >= 2 {
            prop_assert_eq!(filtered, code);
        }
    }

    #[test]
    fn majority_filter_repairs_any_isolated_interior_bubble(
        (mut code, edge) in thermometer(16),
        bubble_at in 0usize..64,
    ) {
        // A 3-tap majority provably repairs an isolated flipped bit
        // when both of the bit's neighbours (and their neighbours) are
        // clean and agree: at least 2 taps from either array end, and
        // at least 3 taps before / 2 taps after the edge boundary.
        let m = code.len();
        let pos = bubble_at % m;
        // The clean code must itself be a fixed point (runs of >= 2 on
        // both sides of the edge), else the filter smooths the clean
        // single-tap end run too.
        let clean_is_fixed_point = edge >= 2 && edge + 2 <= m;
        let repairable =
            pos >= 2 && pos + 3 <= m && (pos + 3 <= edge || pos >= edge + 2);
        prop_assume!(clean_is_fixed_point && repairable);
        let clean = code.clone();
        code[pos] = !code[pos];
        let filtered = BubbleFilter::Majority3.apply(&code);
        prop_assert_eq!(filtered, clean);
    }

    #[test]
    fn xor_compressor_streaming_equals_batch(
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        np in 1u32..12,
    ) {
        let batch = XorCompressor::compress(np, &bits);
        let mut c = XorCompressor::new(np);
        let streamed: Vec<bool> = bits.iter().filter_map(|&b| c.push(b)).collect();
        prop_assert_eq!(&batch, &streamed);
        prop_assert_eq!(batch.len(), bits.len() / np as usize);
    }

    #[test]
    fn xor_compressor_output_is_group_parity(
        bits in proptest::collection::vec(any::<bool>(), 1..120),
        np in 1u32..8,
    ) {
        let out = XorCompressor::compress(np, &bits);
        for (g, &bit) in out.iter().enumerate() {
            let parity = bits[g * np as usize..(g + 1) * np as usize]
                .iter()
                .fold(false, |acc, &b| acc ^ b);
            prop_assert_eq!(bit, parity);
        }
    }

    #[test]
    fn snippet_classification_is_exhaustive(
        lines in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 12),
            1..4,
        ),
    ) {
        // classify() never panics and the result is consistent with
        // the edge count of the XOR vector.
        let s = Snippet::new(lines);
        let edges = s.edge_positions().len();
        match s.classify() {
            SnippetKind::NoEdge => prop_assert_eq!(edges, 0),
            SnippetKind::Regular => prop_assert_eq!(edges, 1),
            SnippetKind::DoubleEdge | SnippetKind::Bubbled => prop_assert!(edges >= 2),
        }
    }

    #[test]
    fn xor_vector_is_linear(
        a in proptest::collection::vec(any::<bool>(), 16),
        b in proptest::collection::vec(any::<bool>(), 16),
    ) {
        // xor_vector of [a, b] equals elementwise a ^ b.
        let s = Snippet::new(vec![a.clone(), b.clone()]);
        let expected: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        prop_assert_eq!(s.xor_vector(), expected);
    }

    #[test]
    fn packed_extractor_is_equivalent_to_golden_model(
        lines in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 36),
            1..4,
        ),
        k in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        // RTL-vs-reference equivalence over arbitrary captures
        // (including bubbles, double edges and no-edge words).
        let golden = EntropyExtractor::new(k, BubbleFilter::Priority);
        let expected = golden.extract(&Snippet::new(lines.clone()));
        let packed: Vec<PackedWord> = lines.iter().map(|l| PackedWord::pack(l)).collect();
        let got = extract_packed(&packed, k);
        prop_assert_eq!(got, expected);
    }
}
