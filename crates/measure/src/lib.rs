//! Platform-parameter measurement procedures — Section 5.1 of the
//! reproduced DAC 2015 paper, run against the simulated fabric.
//!
//! The paper's design methodology (Figure 1) starts by *measuring* the
//! platform: the average LUT delay `d0`, the TDC bin width `tstep` and
//! the per-transition thermal jitter `σ_LUT`. This crate implements
//! those procedures against [`trng_fpga_sim`], closing the loop: the
//! measurements must recover the parameters the simulator was
//! configured with, exactly as the real procedures recover the
//! silicon's parameters.
//!
//! * [`lut_delay`] — transition counting over a fixed period
//!   (paper result: 480 ps);
//! * [`tstep`] — stage counting over a known period in a long carry
//!   chain (paper result: ~17 ps);
//! * [`jitter`] — differential two-oscillator measurement over 20 ns,
//!   1000 repetitions (paper result: ~2 ps);
//! * [`calibration`] — code-density DNL characterization of the TDC
//!   (the non-linearity behind the k = 4 down-sampling decision).
//!
//! [`measure_platform`] chains the first three into a
//! `PlatformParams` (in `trng-model`) ready for the stochastic model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod jitter;
pub mod lut_delay;
pub mod tstep;

pub use calibration::{code_density, CodeDensity};
pub use jitter::{measure_jitter, JitterMeasurement};
pub use lut_delay::{measure_lut_delay, LutDelayMeasurement};
pub use tstep::{measure_tstep, TstepMeasurement};

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

/// The measured platform parameters in the model's preferred form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPlatform {
    /// Average LUT delay, ps.
    pub d0_lut_ps: f64,
    /// TDC bin width, ps.
    pub tstep_ps: f64,
    /// Per-transition thermal sigma, ps.
    pub sigma_lut_ps: f64,
}

/// Runs the full Section-5.1 measurement flow (Step 1 of the design
/// procedure) on the given oscillator configuration and capture line.
///
/// # Errors
///
/// Propagates the first failing procedure's message.
pub fn measure_platform(
    config: &RingOscillatorConfig,
    line: &TappedDelayLine,
    mut rng: SimRng,
) -> Result<MeasuredPlatform, String> {
    let lut = measure_lut_delay(config.clone(), Ps::from_us(2.0), rng.fork())?;
    let half_period = lut.d0 * config.stages as f64;
    let ts = measure_tstep(config.clone(), line, half_period, 400, rng.fork())?;
    let jitter = measure_jitter(config.clone(), line, Ps::from_ns(20.0), 1000, rng.fork())?;
    Ok(MeasuredPlatform {
        d0_lut_ps: lut.d0.as_ps(),
        tstep_ps: ts.tstep.as_ps(),
        sigma_lut_ps: jitter.sigma_lut.as_ps(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_flow_recovers_spartan6_parameters() {
        // Ground truth: d0 = 480 ps, tstep = 17 ps, sigma = 2.6 ps.
        let config = RingOscillatorConfig {
            history_window: Ps::from_ns(4.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6))
        };
        let line = TappedDelayLine::ideal(128, Ps::from_ps(17.0));
        let m = measure_platform(&config, &line, SimRng::seed_from(30)).expect("measure");
        assert!((m.d0_lut_ps - 480.0).abs() < 3.0, "d0 = {}", m.d0_lut_ps);
        assert!((m.tstep_ps - 17.0).abs() < 0.5, "tstep = {}", m.tstep_ps);
        assert!(
            (m.sigma_lut_ps - 2.6).abs() < 0.4,
            "sigma = {}",
            m.sigma_lut_ps
        );
    }
}
