//! LUT-delay measurement — Section 5.1.
//!
//! "LUT delays are determined by implementing a ring oscillator, and
//! counting the number of transitions within a fixed time period."
//! The paper's result on Spartan-6: `d0_LUT = 480 ps`.
//!
//! The procedure below runs an `n`-stage simulated ring for a set
//! duration, counts the transitions of one node in chunks (bounded
//! memory), and recovers the average per-stage delay as
//! `d0 = T / (N_toggles · n)` — one node toggles once per ring
//! traversal, and a traversal takes `n` stage delays.

use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

/// Result of one LUT-delay measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutDelayMeasurement {
    /// Estimated average per-stage delay.
    pub d0: Ps,
    /// Transitions counted on the observed node.
    pub transitions: u64,
    /// Total observation time.
    pub duration: Ps,
}

/// Measures the average LUT delay of an oscillator by transition
/// counting over `duration`.
///
/// # Errors
///
/// Propagates the oscillator's configuration validation message.
///
/// # Examples
///
/// ```
/// use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
/// use trng_fpga_sim::rng::SimRng;
/// use trng_fpga_sim::time::Ps;
/// use trng_measure::lut_delay::measure_lut_delay;
///
/// let m = measure_lut_delay(
///     RingOscillatorConfig::paper_default(),
///     Ps::from_us(2.0),
///     SimRng::seed_from(1),
/// )?;
/// // The paper's platform: ~480 ps per LUT.
/// assert!((m.d0.as_ps() - 480.0).abs() < 480.0 * 0.2);
/// # Ok::<(), String>(())
/// ```
pub fn measure_lut_delay(
    config: RingOscillatorConfig,
    duration: Ps,
    rng: SimRng,
) -> Result<LutDelayMeasurement, String> {
    if duration.as_ps() <= 0.0 {
        return Err(format!(
            "measurement duration must be positive, got {duration}"
        ));
    }
    let stages = config.stages;
    // Observe in chunks that fit the history window.
    let chunk = config.history_window * 0.5;
    let mut ro = RingOscillator::new(config, rng)?;
    let mut transitions = 0u64;
    let mut t = Ps::ZERO;
    while t < duration {
        let next = (t + chunk).min(duration);
        ro.run_until(next);
        transitions += ro.count_transitions(0, t, next) as u64;
        t = next;
    }
    if transitions == 0 {
        return Err("oscillator produced no transitions".to_string());
    }
    let d0 = duration / (transitions as f64 * stages as f64);
    Ok(LutDelayMeasurement {
        d0,
        transitions,
        duration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};

    #[test]
    fn recovers_ideal_delay_exactly() {
        let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::ZERO);
        let m = measure_lut_delay(cfg, Ps::from_us(1.0), SimRng::seed_from(0)).expect("measure");
        // Noiseless: the count is exact up to one edge of truncation.
        assert!((m.d0.as_ps() - 480.0).abs() < 1.0, "d0 = {}", m.d0);
        assert!(m.transitions > 600);
    }

    #[test]
    fn noise_does_not_bias_the_average() {
        let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6));
        let m = measure_lut_delay(cfg, Ps::from_us(5.0), SimRng::seed_from(1)).expect("measure");
        assert!((m.d0.as_ps() - 480.0).abs() < 2.0, "d0 = {}", m.d0);
    }

    #[test]
    fn measures_the_device_not_the_datasheet() {
        // With process variation the measured value reflects this
        // device's actual average stage delay.
        let cfg = RingOscillatorConfig {
            process: ProcessVariation::new(0.08, 0.0, 0.0),
            device: DeviceSeed::new(77),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6))
        };
        let expected = {
            let ro = RingOscillator::new(cfg.clone(), SimRng::seed_from(0)).expect("build");
            ro.half_period() / 3.0
        };
        let m = measure_lut_delay(cfg, Ps::from_us(5.0), SimRng::seed_from(2)).expect("measure");
        assert!(
            (m.d0.as_ps() - expected.as_ps()).abs() < 2.0,
            "measured {} vs actual {}",
            m.d0,
            expected
        );
        // And differs from the nominal 480 ps.
        assert!((m.d0.as_ps() - 480.0).abs() > 2.0);
    }

    #[test]
    fn longer_measurements_are_tighter() {
        let spread = |dur_us: f64| -> f64 {
            let mut vals = Vec::new();
            for seed in 0..8 {
                let cfg = RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(5.0));
                let m = measure_lut_delay(cfg, Ps::from_us(dur_us), SimRng::seed_from(seed))
                    .expect("measure");
                vals.push(m.d0.as_ps());
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        // Counting-quantization error shrinks ~1/T.
        assert!(spread(4.0) <= spread(0.5) + 0.05);
    }

    #[test]
    fn rejects_zero_duration() {
        let cfg = RingOscillatorConfig::paper_default();
        assert!(measure_lut_delay(cfg, Ps::ZERO, SimRng::seed_from(0)).is_err());
    }
}
