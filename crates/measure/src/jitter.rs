//! Differential thermal-jitter measurement — Section 5.1.
//!
//! The paper stresses that jitter measurement is the critical step and
//! easy to get wrong: it must be **on-chip** (pins and scopes filter
//! the noise), **short** (≤ ~1 µs, or flicker noise dominates — Haddad
//! et al., DATE 2014) and **differential** (to cancel global supply
//! noise). Their procedure: two identical ring oscillators placed
//! close together, enabled for 20 ns, outputs captured in CARRY4
//! delay lines; the standard deviation of the edge-position
//! *difference* over 1000 runs gives the accumulated jitter, from
//! which `σ_G,LUT ≈ 2 ps` followed.
//!
//! The simulated procedure is identical. Because both oscillators see
//! the same [`GlobalModulation`](trng_fpga_sim::noise::GlobalModulation),
//! the difference cancels it exactly like the real differential
//! measurement; the TDC quantization variance (`2·tstep²/12`) is
//! subtracted before converting to a per-transition sigma.

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

/// Result of the differential jitter measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterMeasurement {
    /// Estimated per-transition thermal sigma `σ_LUT`.
    pub sigma_lut: Ps,
    /// Standard deviation of the raw edge-time difference.
    pub sigma_diff: Ps,
    /// Accumulation time used.
    pub t_a: Ps,
    /// Number of measurement runs.
    pub runs: usize,
}

/// First edge *time* (look-back from the sampling instant) decoded
/// from a captured word: the boundary tap index scaled by the line's
/// mean bin width, with a half-bin centring term.
fn first_edge_lookback(word: &[bool], bin: Ps) -> Option<Ps> {
    let idx = word.windows(2).position(|w| w[0] != w[1])?;
    Some(bin * (idx as f64 + 1.5))
}

/// Runs the two-oscillator differential measurement.
///
/// `config` describes each oscillator (place two with different device
/// sites but identical nominal parameters); `t_a` is the enable time
/// (paper: 20 ns); `runs` the number of repetitions (paper: 1000).
///
/// # Errors
///
/// Returns an error for invalid oscillator configurations, a zero
/// accumulation time, fewer than 2 runs, or when edges could not be
/// decoded.
pub fn measure_jitter(
    config: RingOscillatorConfig,
    line: &TappedDelayLine,
    t_a: Ps,
    runs: usize,
    mut rng: SimRng,
) -> Result<JitterMeasurement, String> {
    if t_a.as_ps() <= 0.0 {
        return Err(format!("accumulation time must be positive, got {t_a}"));
    }
    if runs < 2 {
        return Err("need at least two runs".to_string());
    }
    let bin = line.mean_bin_width();
    let mut diffs = Vec::with_capacity(runs);
    for _ in 0..runs {
        // Fresh enable for both oscillators each run (the paper
        // enables for 20 ns and captures).
        let mut ro_a = RingOscillator::new(config.clone(), rng.fork())?;
        let mut ro_b = RingOscillator::new(config.clone(), rng.fork())?;
        ro_a.run_until(t_a);
        ro_b.run_until(t_a);
        let word_a = line.sample(&ro_a.node(0), t_a, &mut rng);
        let word_b = line.sample(&ro_b.node(0), t_a, &mut rng);
        if let (Some(ea), Some(eb)) = (
            first_edge_lookback(&word_a, bin),
            first_edge_lookback(&word_b, bin),
        ) {
            diffs.push((ea - eb).as_ps());
        }
    }
    if diffs.len() < runs / 2 {
        return Err(format!(
            "only {} of {runs} runs produced decodable edges",
            diffs.len()
        ));
    }
    let n = diffs.len() as f64;
    let mean = diffs.iter().sum::<f64>() / n;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1.0);
    // Subtract the two-TDC quantization variance, floor at zero.
    let var_jitter = (var - bin.as_ps() * bin.as_ps() / 6.0).max(0.0);
    let sigma_diff = var.sqrt();
    // Each oscillator contributes sigma_acc^2 = sigma_LUT^2 * tA/d0;
    // the difference doubles it.
    let events = t_a / (config.stage_delay);
    let sigma_lut = (var_jitter / (2.0 * events)).sqrt();
    Ok(JitterMeasurement {
        sigma_lut: Ps::from_ps(sigma_lut),
        sigma_diff: Ps::from_ps(sigma_diff),
        t_a,
        runs: diffs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::noise::{GlobalModulation, SupplyTone};

    fn capture_line() -> TappedDelayLine {
        // 2.2 ns span at 17 ps: covers the edge with margin at tA=20ns.
        TappedDelayLine::ideal(128, Ps::from_ps(17.0))
    }

    fn base_config(sigma: f64) -> RingOscillatorConfig {
        RingOscillatorConfig {
            history_window: Ps::from_ns(4.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(sigma))
        }
    }

    #[test]
    fn recovers_configured_sigma() {
        let m = measure_jitter(
            base_config(2.6),
            &capture_line(),
            Ps::from_ns(20.0),
            1000,
            SimRng::seed_from(10),
        )
        .expect("measure");
        // sigma_acc(20 ns) = 2.6*sqrt(41.7) = 16.8 ps; the estimator
        // should land within ~15 % of 2.6 ps.
        assert!(
            (m.sigma_lut.as_ps() - 2.6).abs() < 0.4,
            "sigma = {}",
            m.sigma_lut
        );
        assert!(m.runs >= 900);
    }

    #[test]
    fn differential_cancels_global_noise() {
        // A strong supply tone would wreck a single-ended measurement;
        // the differential procedure must still recover ~2.6 ps.
        let cfg = RingOscillatorConfig {
            noise: trng_fpga_sim::noise::NoiseConfig::white_only(Ps::from_ps(2.6))
                .with_global(GlobalModulation::supply_tone(SupplyTone::new(5e6, 0.01))),
            ..base_config(2.6)
        };
        let m = measure_jitter(
            cfg,
            &capture_line(),
            Ps::from_ns(20.0),
            1000,
            SimRng::seed_from(11),
        )
        .expect("measure");
        assert!(
            (m.sigma_lut.as_ps() - 2.6).abs() < 0.5,
            "sigma = {}",
            m.sigma_lut
        );
    }

    #[test]
    fn larger_sigma_measures_larger() {
        let small = measure_jitter(
            base_config(1.0),
            &capture_line(),
            Ps::from_ns(20.0),
            600,
            SimRng::seed_from(12),
        )
        .expect("measure");
        let large = measure_jitter(
            base_config(5.0),
            &capture_line(),
            Ps::from_ns(20.0),
            600,
            SimRng::seed_from(13),
        )
        .expect("measure");
        assert!(large.sigma_lut > small.sigma_lut * 2.0);
    }

    #[test]
    fn edge_lookback_decoding() {
        let bin = Ps::from_ps(17.0);
        let word = [true, true, false, false];
        let e = first_edge_lookback(&word, bin).unwrap();
        assert!((e.as_ps() - 17.0 * 2.5).abs() < 1e-9);
        assert!(first_edge_lookback(&[true, true], bin).is_none());
    }

    #[test]
    fn rejects_bad_parameters() {
        let cfg = base_config(2.0);
        assert!(measure_jitter(
            cfg.clone(),
            &capture_line(),
            Ps::ZERO,
            10,
            SimRng::seed_from(0)
        )
        .is_err());
        assert!(measure_jitter(
            cfg,
            &capture_line(),
            Ps::from_ns(20.0),
            1,
            SimRng::seed_from(0)
        )
        .is_err());
    }
}
