//! Code-density calibration of TDC bin widths.
//!
//! Section 5.2 discusses the carry-chain's non-linearity ("different
//! bins have different widths", citing the TDC literature \[6\]). The
//! standard way to characterize it is the *code-density test*: sample
//! a signal whose edge phase is uniform with respect to the bins and
//! histogram the decoded edge positions — each bin's hit count is
//! proportional to its width. The measured DNL justifies (or not) the
//! `k = 4` down-sampling decision.

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

/// Result of a code-density calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeDensity {
    /// Hits per edge-boundary position (length `m − 1`).
    pub histogram: Vec<u64>,
    /// Estimated relative bin widths (mean 1), same length.
    pub relative_widths: Vec<f64>,
    /// Total decoded edges.
    pub total: u64,
}

impl CodeDensity {
    /// Estimated DNL of boundary `j` in LSB: `w_j/mean(w) − 1`.
    pub fn dnl(&self, j: usize) -> f64 {
        self.relative_widths[j] - 1.0
    }

    /// Peak absolute DNL across all measured bins.
    pub fn max_abs_dnl(&self) -> f64 {
        self.relative_widths
            .iter()
            .map(|w| (w - 1.0).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs a code-density test: samples the oscillator `samples` times at
/// pseudo-irregular instants and histograms the first-edge positions.
///
/// # Errors
///
/// Returns an error for invalid configurations, zero samples, or when
/// fewer than half the samples contained an edge.
pub fn code_density(
    config: RingOscillatorConfig,
    line: &TappedDelayLine,
    samples: usize,
    mut rng: SimRng,
) -> Result<CodeDensity, String> {
    if samples == 0 {
        return Err("need at least one sample".to_string());
    }
    let mut ro = RingOscillator::new(config, rng.fork())?;
    let half = ro.half_period();
    let mut histogram = vec![0u64; line.len() - 1];
    let mut total = 0u64;
    let mut t = Ps::from_ns(20.0);
    for i in 0..samples {
        t += half * (2.0 + 0.613 * ((i % 11) as f64));
        ro.advance_to(t);
        let word = line.sample(&ro.node(0), t, &mut rng);
        if let Some(idx) = word.windows(2).position(|w| w[0] != w[1]) {
            histogram[idx] += 1;
            total += 1;
        }
    }
    // A line shorter than the oscillator half-period legitimately
    // captures no edge in many samples; only give up when edges are
    // essentially absent.
    if total < samples as u64 / 10 {
        return Err(format!(
            "only {total} of {samples} samples contained an edge"
        ));
    }
    // Only boundaries the edge can actually reach (inside one
    // half-period from the start) carry statistics; normalize over the
    // populated prefix.
    let populated: Vec<u64> = {
        let reach = (half / line.mean_bin_width()).floor() as usize;
        histogram
            .iter()
            .copied()
            .take(reach.min(histogram.len()))
            .collect()
    };
    let mean = populated.iter().sum::<u64>() as f64 / populated.len() as f64;
    let relative_widths = populated.iter().map(|&h| h as f64 / mean).collect();
    Ok(CodeDensity {
        histogram,
        relative_widths,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::fabric::Fabric;
    use trng_fpga_sim::primitives::CaptureFf;
    use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};

    fn ro_config() -> RingOscillatorConfig {
        RingOscillatorConfig {
            history_window: Ps::from_ns(4.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6))
        }
    }

    #[test]
    fn ideal_line_shows_flat_density() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let cd = code_density(ro_config(), &line, 30_000, SimRng::seed_from(20)).expect("run");
        // All populated bins within ~10 % of uniform (Poisson noise).
        assert!(cd.max_abs_dnl() < 0.18, "max DNL = {}", cd.max_abs_dnl());
        assert!(cd.total > 10_000);
    }

    #[test]
    fn placed_line_reveals_carry4_pattern() {
        let fabric = Fabric::spartan6();
        let line = TappedDelayLine::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(9),
            &ProcessVariation::NONE,
            &fabric,
            4,
            1,
            9,
            CaptureFf::ideal(),
        );
        let cd = code_density(ro_config(), &line, 60_000, SimRng::seed_from(21)).expect("run");
        // The structural +35 % wide first bin of each CARRY4 must show
        // up in the measured widths.
        assert!(cd.max_abs_dnl() > 0.2, "max DNL = {}", cd.max_abs_dnl());
        // Boundary j's hit count is proportional to bin width w_{j+1}:
        // boundary 3 measures w_4 (wide, +0.35), boundary 4 measures
        // w_5 (narrow, -0.20).
        assert!(
            cd.relative_widths[3] > cd.relative_widths[4],
            "widths: {:?}",
            &cd.relative_widths[..8]
        );
    }

    #[test]
    fn zero_samples_rejected() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        assert!(code_density(ro_config(), &line, 0, SimRng::seed_from(0)).is_err());
    }
}
