//! TDC bin-width (`tstep`) measurement — Section 5.1.
//!
//! "Tapped-line delay step was determined by capturing an oscillator
//! output in a long carry chain, and counting the number of stages of
//! a clock period." Result on Spartan-6: `tstep ≈ 17 ps`.
//!
//! Procedure: an oscillator of *known* half-period (measured first via
//! [`crate::lut_delay`]) is captured in a carry chain long enough to
//! contain two consecutive signal edges; the average tap distance
//! between consecutive edges equals `half_period / tstep`.

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::ring_oscillator::{RingOscillator, RingOscillatorConfig};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;

/// Result of a `tstep` measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TstepMeasurement {
    /// Estimated average bin width.
    pub tstep: Ps,
    /// Mean tap distance between consecutive edges.
    pub mean_edge_distance_taps: f64,
    /// Number of samples containing two decodable edges.
    pub samples_used: usize,
}

/// Edge boundary positions (indices where adjacent captured bits
/// differ) of one captured word.
fn edge_positions(word: &[bool]) -> Vec<usize> {
    word.windows(2)
        .enumerate()
        .filter_map(|(i, w)| (w[0] != w[1]).then_some(i))
        .collect()
}

/// Measures the average bin width of `line` by repeatedly sampling a
/// free-running oscillator of known half-period.
///
/// `samples` sampling instants are spaced pseudo-irregularly so edge
/// phases cover the bins uniformly.
///
/// # Errors
///
/// Returns an error when the oscillator configuration is invalid, the
/// line is too short to ever contain two edges, or no usable samples
/// were captured.
pub fn measure_tstep(
    config: RingOscillatorConfig,
    line: &TappedDelayLine,
    half_period_hint: Ps,
    samples: usize,
    mut rng: SimRng,
) -> Result<TstepMeasurement, String> {
    if samples == 0 {
        return Err("need at least one sample".to_string());
    }
    // Two edges are d0*n apart; the line must span at least ~1.2x that.
    if line.total_delay() < half_period_hint * 1.1 {
        return Err(format!(
            "delay line spans {} but the oscillator half-period is {}; two edges cannot be captured",
            line.total_delay(),
            half_period_hint
        ));
    }
    let mut ro = RingOscillator::new(config, rng.fork())?;
    let mut distances = Vec::new();
    let mut t = Ps::from_ns(50.0);
    for i in 0..samples {
        // Irregular sampling stride decorrelates edge phase from bins.
        t += half_period_hint * (3.0 + 0.37 * (i % 7) as f64);
        ro.advance_to(t);
        let word = line.sample(&ro.node(0), t, &mut rng);
        let edges = edge_positions(&word);
        // Use the distance between the first two edges.
        if edges.len() >= 2 {
            distances.push((edges[1] - edges[0]) as f64);
        }
    }
    if distances.is_empty() {
        return Err("no sample contained two edges".to_string());
    }
    let mean = distances.iter().sum::<f64>() / distances.len() as f64;
    Ok(TstepMeasurement {
        tstep: half_period_hint / mean,
        mean_edge_distance_taps: mean,
        samples_used: distances.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trng_fpga_sim::fabric::Fabric;
    use trng_fpga_sim::primitives::CaptureFf;
    use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};

    fn long_ideal_line() -> TappedDelayLine {
        // 26 CARRY4 = 104 taps of 17 ps = 1768 ps > 1440 ps half-period.
        TappedDelayLine::ideal(104, Ps::from_ps(17.0))
    }

    #[test]
    fn recovers_ideal_tstep() {
        let cfg = RingOscillatorConfig {
            history_window: Ps::from_ns(4.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6))
        };
        let m = measure_tstep(
            cfg,
            &long_ideal_line(),
            Ps::from_ps(1440.0),
            400,
            SimRng::seed_from(3),
        )
        .expect("measure");
        assert!((m.tstep.as_ps() - 17.0).abs() < 0.5, "tstep = {}", m.tstep);
        // Only samples whose most recent edge is old enough contain a
        // second edge within the 104-tap window (~23 %).
        assert!(m.samples_used > 50, "used {}", m.samples_used);
    }

    #[test]
    fn recovers_mean_width_of_nonuniform_line() {
        // A placed line with DNL: the *average* width is still ~17 ps.
        let fabric = Fabric::spartan6();
        let line = TappedDelayLine::placed(
            Ps::from_ps(17.0),
            DeviceSeed::new(5),
            &ProcessVariation::default(),
            &fabric,
            4,
            1,
            26,
            CaptureFf::ideal(),
        );
        let cfg = RingOscillatorConfig {
            history_window: Ps::from_ns(4.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(2.6))
        };
        let m = measure_tstep(cfg, &line, Ps::from_ps(1440.0), 600, SimRng::seed_from(4))
            .expect("measure");
        assert!((m.tstep.as_ps() - 17.0).abs() < 1.0, "tstep = {}", m.tstep);
    }

    #[test]
    fn short_line_is_rejected() {
        let line = TappedDelayLine::ideal(36, Ps::from_ps(17.0));
        let cfg = RingOscillatorConfig::paper_default();
        let err =
            measure_tstep(cfg, &line, Ps::from_ps(1440.0), 10, SimRng::seed_from(0)).unwrap_err();
        assert!(err.contains("cannot be captured"), "{err}");
    }

    #[test]
    fn edge_positions_helper() {
        let word = [true, true, false, false, true];
        assert_eq!(edge_positions(&word), vec![1, 3]);
        assert!(edge_positions(&[true, true]).is_empty());
    }

    #[test]
    fn zero_samples_rejected() {
        let cfg = RingOscillatorConfig::paper_default();
        assert!(measure_tstep(
            cfg,
            &long_ideal_line(),
            Ps::from_ps(1440.0),
            0,
            SimRng::seed_from(0)
        )
        .is_err());
    }
}
