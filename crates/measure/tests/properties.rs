//! Property-based tests: the measurement procedures recover whatever
//! ground truth the simulator is configured with — not just the
//! Spartan-6 values.
//!
//! Runs under the hermetic `trng-testkit` harness: each property
//! executes `TRNG_PROP_CASES` (default 64) independently seeded cases
//! and reports the failing seed for replay via `TRNG_PROP_SEED`.
//! Each case runs a real simulation; the measurement windows below
//! are sized so the full default suite stays fast.

use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_measure::{measure_jitter, measure_lut_delay, measure_tstep};
use trng_testkit::prng::Rng;
use trng_testkit::props;

props! {
    fn lut_delay_recovers_arbitrary_ground_truth(rng) {
        let d0 = rng.gen_range(200.0..900.0f64);
        let sigma = rng.gen_range(0.0..6.0f64);
        let seed = rng.gen_range(0u64..1_000);
        let cfg = RingOscillatorConfig {
            history_window: Ps::from_ns(6.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(d0), Ps::from_ps(sigma))
        };
        let m = measure_lut_delay(cfg, Ps::from_us(2.0), SimRng::seed_from(seed))
            .expect("measure");
        // Counting quantization: one edge over the whole window.
        assert!(
            (m.d0.as_ps() - d0).abs() < d0 * 0.01 + 1.0,
            "measured {} for true {}",
            m.d0,
            d0
        );
    }

    fn tstep_recovers_arbitrary_bin_width(rng) {
        let tstep = rng.gen_range(10.0..30.0f64);
        let seed = rng.gen_range(0u64..1_000);
        let d0 = 480.0;
        let cfg = RingOscillatorConfig {
            history_window: Ps::from_ns(6.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(d0), Ps::from_ps(2.6))
        };
        // Line long enough for two edges at any tstep in range.
        let taps = ((2.0 * 3.0 * d0) / tstep).ceil() as usize + 8;
        let line = TappedDelayLine::ideal(taps, Ps::from_ps(tstep));
        let m = measure_tstep(cfg, &line, Ps::from_ps(3.0 * d0), 300, SimRng::seed_from(seed))
            .expect("measure");
        assert!(
            (m.tstep.as_ps() - tstep).abs() < tstep * 0.08,
            "measured {} for true {}",
            m.tstep,
            tstep
        );
    }

    fn jitter_recovers_arbitrary_sigma(rng) {
        let sigma = rng.gen_range(1.0..6.0f64);
        let seed = rng.gen_range(0u64..1_000);
        let cfg = RingOscillatorConfig {
            history_window: Ps::from_ns(6.0),
            ..RingOscillatorConfig::ideal(3, Ps::from_ps(480.0), Ps::from_ps(sigma))
        };
        let line = TappedDelayLine::ideal(160, Ps::from_ps(17.0));
        let m = measure_jitter(cfg, &line, Ps::from_ns(20.0), 600, SimRng::seed_from(seed))
            .expect("measure");
        // 600 runs: sampling error on a std estimate ~ sigma/sqrt(2*600)
        // plus quantization residue; allow 25 %.
        assert!(
            (m.sigma_lut.as_ps() - sigma).abs() < sigma * 0.25 + 0.3,
            "measured {} for true {}",
            m.sigma_lut,
            sigma
        );
    }
}
