//! Leftover-hash-lemma parameter sizing.
//!
//! For a two-universal family (the seeded Toeplitz matrices are one),
//! the leftover hash lemma states: hashing an input with min-entropy
//! `k` down to `m` output bits yields a distribution within statistical
//! distance `ε = 2^−(k−m)/2 / 2` of uniform — equivalently, choosing
//!
//! ```text
//! m ≤ k − 2·log2(1/ε)
//! ```
//!
//! guarantees ε-closeness. The calculators below work per input block
//! of `n` bits carrying a *claimed* per-bit min-entropy `H∞` (the
//! per-source eq. (7)-derived figure a pool shard advertises), so
//! `k = n·H∞`. The guarantee is only as good as the claim: the pool's
//! SP 800-90B continuous tests police the claim at runtime, and the
//! composed pool stage takes the *minimum* claim across its input
//! shards.

/// Largest output size `m` the leftover hash lemma allows for an
/// `input_bits`-bit block claiming `min_entropy_per_bit` bits of
/// min-entropy per bit, at statistical distance `ε = 2^−epsilon_log2`:
/// `m = ⌊input_bits·H∞ − 2·epsilon_log2⌋`, floored at 0.
///
/// A non-positive budget (claim too small for the requested ε at this
/// block size) returns 0 — the caller must grow the block.
pub fn leftover_hash_output_bits(
    input_bits: usize,
    min_entropy_per_bit: f64,
    epsilon_log2: u32,
) -> usize {
    let k = input_bits as f64 * min_entropy_per_bit.clamp(0.0, 1.0);
    let m = k - 2.0 * f64::from(epsilon_log2);
    if m <= 0.0 {
        0
    } else {
        m.floor() as usize
    }
}

/// Smallest input/output ratio `r` such that an input block of
/// `r · output_block_bits` bits claiming `min_entropy_per_bit` per bit
/// may be hashed to `output_block_bits` output bits at
/// `ε = 2^−epsilon_log2` — i.e. the smallest `r` with
/// `leftover_hash_output_bits(r·m, H∞, ε) ≥ m`.
///
/// # Panics
///
/// When `output_block_bits == 0` or the claim is so small (≤ 0) that
/// no finite ratio satisfies the lemma.
pub fn leftover_hash_ratio(
    min_entropy_per_bit: f64,
    epsilon_log2: u32,
    output_block_bits: u32,
) -> u32 {
    assert!(output_block_bits > 0, "zero output block");
    let m = f64::from(output_block_bits);
    let h = min_entropy_per_bit.clamp(0.0, 1.0);
    assert!(
        h > 0.0,
        "min-entropy claim {min_entropy_per_bit} cannot be extracted from"
    );
    // Closed form, then nudge up over float edges.
    let mut r = ((m + 2.0 * f64::from(epsilon_log2)) / (m * h)).ceil() as u32;
    r = r.max(1);
    while leftover_hash_output_bits(r as usize * output_block_bits as usize, h, epsilon_log2)
        < output_block_bits as usize
    {
        r += 1;
    }
    r
}

/// Per-bit min-entropy of an `m`-bit block that is within statistical
/// distance `ε = 2^−epsilon_log2` of uniform: no outcome's probability
/// exceeds `2^−m + ε`, so the block's min-entropy is at least
/// `−log2(2^−m + ε)`, or `−log2(2^−m + ε)/m` per bit.
///
/// For `m = 64`, `ε = 2^−32` this is ≈ 0.5 bits/bit — the claimed
/// figure the composed pool stage publishes next to its measured
/// estimate.
///
/// # Panics
///
/// When `output_block_bits == 0`.
pub fn extracted_min_entropy_per_bit(output_block_bits: u32, epsilon_log2: u32) -> f64 {
    assert!(output_block_bits > 0, "zero output block");
    let p_max = 2f64.powi(-(output_block_bits.min(1060) as i32))
        + 2f64.powi(-(epsilon_log2.min(1060) as i32));
    -p_max.log2() / f64::from(output_block_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_bits_follow_the_lemma() {
        // n·H − 2·log2(1/ε): 320 · 0.5 − 64 = 96.
        assert_eq!(leftover_hash_output_bits(320, 0.5, 32), 96);
        // Budget short of the subtraction floors at zero.
        assert_eq!(leftover_hash_output_bits(64, 0.5, 32), 0);
        // A perfect source still pays the ε tax.
        assert_eq!(leftover_hash_output_bits(128, 1.0, 32), 64);
        // Claims are clamped into [0, 1].
        assert_eq!(
            leftover_hash_output_bits(128, 7.0, 32),
            leftover_hash_output_bits(128, 1.0, 32)
        );
    }

    #[test]
    fn ratio_is_minimal_and_sufficient() {
        for (h, eps, m) in [
            (0.42150816165381844, 32, 64), // paper k=1 eq. (7) claim
            (0.16094345604468555, 32, 64), // paper k=4 eq. (7) claim
            (0.05, 32, 64),                // the claim floor
            (0.999, 16, 64),
            (0.737, 32, 64), // p(1) = 0.6 biased source
        ] {
            let r = leftover_hash_ratio(h, eps, m);
            assert!(
                leftover_hash_output_bits(r as usize * m as usize, h, eps) >= m as usize,
                "ratio {r} insufficient for H={h}, eps=2^-{eps}"
            );
            if r > 1 {
                assert!(
                    leftover_hash_output_bits((r - 1) as usize * m as usize, h, eps) < m as usize,
                    "ratio {r} not minimal for H={h}, eps=2^-{eps}"
                );
            }
        }
        // The paper's k=1 claim sizes to ratio 5 at ε = 2^-32 — under
        // the design's np = 7, so the extractor beats eq. (7)'s rate
        // while adding the uniformity guarantee.
        assert_eq!(leftover_hash_ratio(0.42150816165381844, 32, 64), 5);
    }

    #[test]
    fn extracted_claim_is_dominated_by_epsilon() {
        let h = extracted_min_entropy_per_bit(64, 32);
        // −log2(2^−64 + 2^−32)/64 ≈ 32/64, a hair under 0.5.
        assert!(h > 0.4999 && h < 0.5, "claim {h}");
        // Tighter ε, higher claim; never above 1.
        assert!(extracted_min_entropy_per_bit(64, 48) > h);
        assert!(extracted_min_entropy_per_bit(64, 128) <= 1.0);
        // Degenerate-but-legal shapes stay finite.
        assert!(extracted_min_entropy_per_bit(1, 32).is_finite());
    }

    #[test]
    #[should_panic(expected = "cannot be extracted")]
    fn zero_claim_is_rejected() {
        let _ = leftover_hash_ratio(0.0, 32, 64);
    }
}
