//! The Toeplitz matrix in diagonal-reuse layout and its streaming
//! block extractor.

use trng_testkit::prng::{RngCore, SeedableRng, StdRng};

/// An `m×n` binary Toeplitz matrix `T[i][j] = d[i + (n−1) − j]`,
/// stored as its `m+n−1` diagonal bits `d` packed LSB-first into
/// `u64` words.
///
/// Every diagonal of a Toeplitz matrix is constant, so row `i` is row
/// `i−1` shifted right by one with a fresh bit entering on the left:
/// the whole matrix is one bit-string, and the GF(2) matrix–vector
/// product `y = T·x` becomes, per output bit, an AND of a shifted
/// `n`-bit window of `d` against the *reversed* input followed by a
/// popcount parity:
///
/// ```text
/// y_i = ⊕_j T[i][j]·x_j = ⊕_t d[i+t] · x[n−1−t] = parity(d[i .. i+n] & rev(x))
/// ```
///
/// With `d` and `rev(x)` packed into words, each output bit costs
/// `⌈n/64⌉` shift/AND/XOR word operations plus one `count_ones`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToeplitzMatrix {
    m: usize,
    n: usize,
    /// `m+n−1` diagonal bits, LSB-first; trailing bits of the last
    /// word are zero.
    diag: Vec<u64>,
}

impl ToeplitzMatrix {
    /// Draws the `m+n−1` diagonal bits from a seeded xoshiro256++
    /// stream: the same `(m, n, seed)` always yields the same matrix,
    /// so extractor output is replayable from configuration alone.
    ///
    /// # Panics
    ///
    /// When `m == 0` or `n == 0`.
    pub fn from_seed(m: usize, n: usize, seed: u64) -> Self {
        assert!(m > 0 && n > 0, "degenerate {m}x{n} Toeplitz matrix");
        let bits = m + n - 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut diag = vec![0u64; bits.div_ceil(64)];
        for word in &mut diag {
            *word = rng.next_u64();
        }
        // Zero the tail so equality/Debug depend only on live bits.
        let tail = bits % 64;
        if tail != 0 {
            if let Some(last) = diag.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        ToeplitzMatrix { m, n, diag }
    }

    /// Output bits per block.
    pub fn output_bits(&self) -> usize {
        self.m
    }

    /// Input bits per block.
    pub fn input_bits(&self) -> usize {
        self.n
    }

    /// The matrix entry `T[i][j]`.
    ///
    /// # Panics
    ///
    /// When `i >= m` or `j >= n`.
    pub fn entry(&self, i: usize, j: usize) -> bool {
        assert!(i < self.m && j < self.n, "entry ({i}, {j}) out of range");
        let k = i + (self.n - 1) - j;
        self.diag[k / 64] >> (k % 64) & 1 == 1
    }

    /// The `n`-bit window `d[i .. i+n]` of the diagonal string, packed
    /// LSB-first — row `i` read against the reversed input.
    #[inline]
    fn window_word(&self, i: usize, w: usize) -> u64 {
        let base = i / 64 + w;
        let s = i % 64;
        let lo = self.diag.get(base).copied().unwrap_or(0) >> s;
        if s == 0 {
            lo
        } else {
            lo | self.diag.get(base + 1).copied().unwrap_or(0) << (64 - s)
        }
    }

    /// GF(2) product `y = T·x` over packed words. `xrev` holds the
    /// input *reversed* — bit `t` of `xrev` is `x[n−1−t]` — with any
    /// bits past `n` zero; `out` receives the `m` output bits packed
    /// LSB-first.
    ///
    /// # Panics
    ///
    /// When `xrev` or `out` is shorter than the packed block demands.
    pub fn mul_packed(&self, xrev: &[u64], out: &mut [u64]) {
        let nw = self.n.div_ceil(64);
        assert!(xrev.len() >= nw, "input words {} < {nw}", xrev.len());
        assert!(
            out.len() >= self.m.div_ceil(64),
            "output words {} < {}",
            out.len(),
            self.m.div_ceil(64)
        );
        for word in out.iter_mut() {
            *word = 0;
        }
        for i in 0..self.m {
            let mut acc = 0u64;
            for (w, &x) in xrev.iter().enumerate().take(nw) {
                acc ^= self.window_word(i, w) & x;
            }
            out[i / 64] |= u64::from(acc.count_ones() & 1) << (i % 64);
        }
    }

    /// One output word of the product for matrices with `m <= 64` —
    /// the pool's block shape, avoiding any output allocation.
    ///
    /// # Panics
    ///
    /// When `m > 64` or `xrev` is too short.
    pub fn mul_packed_word(&self, xrev: &[u64]) -> u64 {
        assert!(
            self.m <= 64,
            "mul_packed_word needs m <= 64, got {}",
            self.m
        );
        let mut out = [0u64; 1];
        self.mul_packed(xrev, &mut out);
        out[0]
    }

    /// Naive bit-by-bit reference product over `entry(i, j)` — the
    /// specification the packed path is property-tested against.
    ///
    /// # Panics
    ///
    /// When `x.len() != n`.
    pub fn mul_naive(&self, x: &[bool]) -> Vec<bool> {
        assert_eq!(x.len(), self.n, "input length");
        (0..self.m)
            .map(|i| {
                (0..self.n)
                    .map(|j| self.entry(i, j) && x[j])
                    .fold(false, |a, b| a ^ b)
            })
            .collect()
    }
}

/// Streaming block extractor over a [`ToeplitzMatrix`] with `m <= 64`:
/// absorb input bits one at a time; every `n`-th bit completes a block
/// and emits the `m` output bits as one word (bit `i` of the word is
/// output bit `y_i`).
///
/// Only the input accumulator is stateful — the seeded matrix is
/// reused across blocks, which is what makes the construction a
/// *strong* extractor (output ε-close to uniform even given the seed).
/// [`reset`](ToeplitzExtractor::reset) drops a partial input block
/// (e.g. after an upstream health alarm discards the raw stretch it
/// came from) while keeping the matrix, so the seed→stream mapping
/// stays a pure function of configuration.
#[derive(Debug, Clone)]
pub struct ToeplitzExtractor {
    matrix: ToeplitzMatrix,
    /// Reversed packed input accumulator: arrival `j` lands at bit
    /// `n−1−j`, so a complete block is already in `mul_packed` form.
    xrev: Vec<u64>,
    filled: usize,
}

impl ToeplitzExtractor {
    /// Wraps an explicit matrix.
    ///
    /// # Panics
    ///
    /// When the matrix has more than 64 output bits.
    pub fn from_matrix(matrix: ToeplitzMatrix) -> Self {
        assert!(
            matrix.m <= 64,
            "streaming extractor emits one word per block; m = {} > 64",
            matrix.m
        );
        let words = matrix.n.div_ceil(64);
        ToeplitzExtractor {
            matrix,
            xrev: vec![0u64; words],
            filled: 0,
        }
    }

    /// Builds the extractor over [`ToeplitzMatrix::from_seed`].
    pub fn from_seed(m: usize, n: usize, seed: u64) -> Self {
        Self::from_matrix(ToeplitzMatrix::from_seed(m, n, seed))
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &ToeplitzMatrix {
        &self.matrix
    }

    /// Input bits per block (`n`).
    pub fn input_block_bits(&self) -> usize {
        self.matrix.n
    }

    /// Output bits per block (`m`).
    pub fn output_block_bits(&self) -> usize {
        self.matrix.m
    }

    /// Input bits absorbed toward the next emission (always `< n`).
    pub fn pending_input_bits(&self) -> usize {
        self.filled
    }

    /// Absorbs one input bit; returns the next `m`-bit output block
    /// (output bit `y_i` at word bit `i`) when this bit completes it.
    #[inline]
    pub fn push(&mut self, bit: bool) -> Option<u64> {
        let pos = self.matrix.n - 1 - self.filled;
        if bit {
            self.xrev[pos / 64] |= 1u64 << (pos % 64);
        }
        self.filled += 1;
        if self.filled < self.matrix.n {
            return None;
        }
        let word = self.matrix.mul_packed_word(&self.xrev);
        for w in &mut self.xrev {
            *w = 0;
        }
        self.filled = 0;
        Some(word)
    }

    /// Discards any partial input block; the matrix is kept.
    pub fn reset(&mut self) {
        for w in &mut self.xrev {
            *w = 0;
        }
        self.filled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Packs `x` reversed for `mul_packed`, as the extractor does.
    fn pack_rev(x: &[bool]) -> Vec<u64> {
        let n = x.len();
        let mut words = vec![0u64; n.div_ceil(64)];
        for (j, &bit) in x.iter().enumerate() {
            let t = n - 1 - j;
            if bit {
                words[t / 64] |= 1u64 << (t % 64);
            }
        }
        words
    }

    fn bits_from_word(word: u64, m: usize) -> Vec<bool> {
        (0..m).map(|i| word >> i & 1 == 1).collect()
    }

    #[test]
    fn diagonal_layout_is_constant_along_diagonals() {
        let t = ToeplitzMatrix::from_seed(17, 41, 7);
        for i in 1..17 {
            for j in 1..41 {
                assert_eq!(t.entry(i, j), t.entry(i - 1, j - 1), "({i}, {j})");
            }
        }
    }

    #[test]
    fn matrix_is_a_pure_function_of_its_seed() {
        let a = ToeplitzMatrix::from_seed(64, 320, 99);
        let b = ToeplitzMatrix::from_seed(64, 320, 99);
        assert_eq!(a, b);
        assert_ne!(a, ToeplitzMatrix::from_seed(64, 320, 100));
    }

    #[test]
    fn packed_product_matches_naive_on_a_fixed_case() {
        let t = ToeplitzMatrix::from_seed(64, 320, 3);
        let x: Vec<bool> = (0..320).map(|j| j % 5 == 0 || j % 7 == 3).collect();
        let naive = t.mul_naive(&x);
        let word = t.mul_packed_word(&pack_rev(&x));
        assert_eq!(bits_from_word(word, 64), naive);
    }

    #[test]
    fn streaming_matches_one_shot_blocks() {
        let t = ToeplitzMatrix::from_seed(48, 130, 11);
        let mut ex = ToeplitzExtractor::from_matrix(t.clone());
        let stream: Vec<bool> = (0..390).map(|j| (j * j + 1) % 3 == 0).collect();
        let mut emitted = Vec::new();
        for &bit in &stream {
            if let Some(word) = ex.push(bit) {
                emitted.push(word);
            }
        }
        assert_eq!(emitted.len(), 3);
        assert_eq!(ex.pending_input_bits(), 0);
        for (k, &word) in emitted.iter().enumerate() {
            let block = &stream[k * 130..(k + 1) * 130];
            assert_eq!(bits_from_word(word, 48), t.mul_naive(block), "block {k}");
        }
    }

    #[test]
    fn reset_drops_the_partial_block_and_keeps_the_matrix() {
        let mut ex = ToeplitzExtractor::from_seed(8, 24, 5);
        for j in 0..10 {
            assert!(ex.push(j % 2 == 0).is_none());
        }
        assert_eq!(ex.pending_input_bits(), 10);
        ex.reset();
        assert_eq!(ex.pending_input_bits(), 0);
        // Same stream from a fresh extractor: identical emission.
        let stream: Vec<bool> = (0..24).map(|j| j % 3 != 1).collect();
        let mut fresh = ToeplitzExtractor::from_seed(8, 24, 5);
        let a: Vec<_> = stream.iter().filter_map(|&b| ex.push(b)).collect();
        let b: Vec<_> = stream.iter().filter_map(|&b| fresh.push(b)).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "one word per block")]
    fn wide_output_rejects_the_streaming_form() {
        let _ = ToeplitzExtractor::from_seed(65, 128, 1);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_size_is_rejected() {
        let _ = ToeplitzMatrix::from_seed(0, 8, 1);
    }
}
