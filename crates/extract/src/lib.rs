//! # trng-extract — seeded Toeplitz strong extractor
//!
//! The paper's XOR post-processing (Section 4.5, eq. (7)) compresses
//! the carry-chain's structural bias but makes no information-theoretic
//! statement about its output: it is a deterministic function of one
//! source, so an adversary who knows the raw distribution knows the
//! output distribution too. This crate supplies the production-grade
//! alternative — a *seeded* Toeplitz hash, the classic two-universal
//! family whose output the leftover hash lemma proves ε-close to
//! uniform whenever the input carries enough min-entropy:
//!
//! * [`ToeplitzMatrix`] — an `m×n` binary Toeplitz matrix stored in its
//!   *diagonal-reuse* layout: because every diagonal is constant, the
//!   whole matrix is `m+n−1` seed bits packed into `u64` words, and the
//!   GF(2) matrix–vector product reduces to a shifted-window AND plus a
//!   popcount parity per output bit — no per-entry work, no
//!   multiplications.
//! * [`ToeplitzExtractor`] — the streaming block form: push raw bits,
//!   and every `n`-th bit completes an input block and emits `m` output
//!   bits at once. State between blocks is just the input accumulator;
//!   the matrix (the seed) is reused for every block, which is exactly
//!   what makes the construction a *strong* extractor — the output
//!   stays ε-close to uniform even given the seed.
//! * [`leftover_hash_output_bits`] / [`leftover_hash_ratio`] — the
//!   parameter calculators: given a per-bit min-entropy claim (the
//!   per-source eq. (7)-derived figure a pool shard advertises) and a
//!   statistical distance target ε = 2^−`epsilon_log2`, size the output
//!   so the leftover hash lemma `m ≤ n·H∞ − 2·log2(1/ε)` holds.
//! * [`extracted_min_entropy_per_bit`] — the claim the sized output
//!   then carries: ε-closeness to uniform bounds any outcome's
//!   probability by `2^−m + ε`, hence a per-bit min-entropy of
//!   `−log2(2^−m + ε)/m`.
//!
//! The crate is deliberately free of TRNG-specific types — it consumes
//! and produces plain bits/words — so `trng-pool` can thread it through
//! per-shard conditioning and the pool-level composed stage, and tests
//! can drive it against naive references.
//!
//! ```
//! use trng_extract::{leftover_hash_ratio, ToeplitzExtractor};
//!
//! // Per-source claim H∞ = 0.42 bits/bit, ε = 2^-32, 64-bit blocks:
//! let ratio = leftover_hash_ratio(0.42, 32, 64);
//! let mut ex = ToeplitzExtractor::from_seed(64, 64 * ratio as usize, 0x5EED);
//! let mut out = Vec::new();
//! for i in 0..(64 * ratio as usize) {
//!     if let Some(word) = ex.push(i % 3 == 0) {
//!         out.push(word);
//!     }
//! }
//! assert_eq!(out.len(), 1); // n input bits -> one m-bit block
//! ```

#![warn(missing_docs)]

mod params;
mod toeplitz;

pub use params::{extracted_min_entropy_per_bit, leftover_hash_output_bits, leftover_hash_ratio};
pub use toeplitz::{ToeplitzExtractor, ToeplitzMatrix};
