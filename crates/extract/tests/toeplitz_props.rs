//! Property suite for the GF(2) Toeplitz core: the packed
//! word-parity product is bit-identical to the naive bit-by-bit
//! matrix reference across random shapes and seeds, the map is
//! GF(2)-linear, and distinct seeds give distinct extractors.

use trng_testkit::prng::Rng;
use trng_testkit::props;

use trng_extract::{ToeplitzExtractor, ToeplitzMatrix};

fn random_bits<R: Rng>(rng: &mut R, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen::<bool>()).collect()
}

/// Packs `x` reversed (bit `t` holds `x[n−1−t]`), the `mul_packed`
/// input convention.
fn pack_rev(x: &[bool]) -> Vec<u64> {
    let n = x.len();
    let mut words = vec![0u64; n.div_ceil(64)];
    for (j, &bit) in x.iter().enumerate() {
        if bit {
            let t = n - 1 - j;
            words[t / 64] |= 1u64 << (t % 64);
        }
    }
    words
}

fn unpack(words: &[u64], m: usize) -> Vec<bool> {
    (0..m).map(|i| words[i / 64] >> (i % 64) & 1 == 1).collect()
}

props! {
    /// Packed product == naive reference, across random m/n/seed —
    /// word-boundary shapes included by construction of the ranges.
    fn packed_product_matches_naive(rng) {
        let m = rng.gen_range(1usize..=64);
        let n = rng.gen_range(1usize..260);
        let t = ToeplitzMatrix::from_seed(m, n, rng.gen::<u64>());
        let x = random_bits(rng, n);
        let mut out = vec![0u64; m.div_ceil(64)];
        t.mul_packed(&pack_rev(&x), &mut out);
        assert_eq!(unpack(&out, m), t.mul_naive(&x), "m={m} n={n}");
    }

    /// Exact word-multiple shapes, where every shifted window spans
    /// two diagonal words except at s == 0.
    fn packed_product_matches_naive_on_word_multiples(rng) {
        let m = 64;
        let n = 64 * rng.gen_range(1usize..6);
        let t = ToeplitzMatrix::from_seed(m, n, rng.gen::<u64>());
        let x = random_bits(rng, n);
        let word = t.mul_packed_word(&pack_rev(&x));
        assert_eq!(unpack(&[word], m), t.mul_naive(&x), "n={n}");
    }

    /// GF(2) linearity: T(x ⊕ y) = T(x) ⊕ T(y).
    fn product_is_linear_over_gf2(rng) {
        let m = rng.gen_range(1usize..=64);
        let n = rng.gen_range(1usize..200);
        let t = ToeplitzMatrix::from_seed(m, n, rng.gen::<u64>());
        let x = random_bits(rng, n);
        let y = random_bits(rng, n);
        let xy: Vec<bool> = x.iter().zip(&y).map(|(&a, &b)| a ^ b).collect();
        let lhs = t.mul_naive(&xy);
        let rhs: Vec<bool> = t
            .mul_naive(&x)
            .into_iter()
            .zip(t.mul_naive(&y))
            .map(|(a, b)| a ^ b)
            .collect();
        assert_eq!(lhs, rhs, "m={m} n={n}");
        // Corollary: T(0) = 0.
        assert!(t.mul_naive(&vec![false; n]).iter().all(|&b| !b));
    }

    /// Seed sensitivity: two extractors drawn from distinct seeds
    /// disagree on some block of a shared input stream. (Two random
    /// 64×n matrices collide with probability 2^−(m+n−1); the input
    /// re-randomises per case, so a persistent pass is conclusive.)
    fn distinct_seeds_give_distinct_extractors(rng) {
        let n = 64 * rng.gen_range(2usize..5);
        let seed = rng.gen::<u64>();
        let mut a = ToeplitzExtractor::from_seed(64, n, seed);
        let mut b = ToeplitzExtractor::from_seed(64, n, seed ^ rng.gen_range(1u64..u64::MAX));
        let stream = random_bits(rng, n * 4);
        let out_a: Vec<u64> = stream.iter().filter_map(|&bit| a.push(bit)).collect();
        let out_b: Vec<u64> = stream.iter().filter_map(|&bit| b.push(bit)).collect();
        assert_eq!(out_a.len(), 4);
        assert_ne!(out_a, out_b, "n={n} seed={seed:#x}");
    }

    /// The streaming block API agrees with one-shot products over the
    /// same matrix, across random shapes and stream lengths.
    fn streaming_equals_one_shot(rng) {
        let m = rng.gen_range(1usize..=64);
        let n = rng.gen_range(1usize..180);
        let t = ToeplitzMatrix::from_seed(m, n, rng.gen::<u64>());
        let blocks = rng.gen_range(1usize..5);
        let partial = rng.gen_range(0..n);
        let stream = random_bits(rng, n * blocks + partial);
        let mut ex = ToeplitzExtractor::from_matrix(t.clone());
        let emitted: Vec<u64> = stream.iter().filter_map(|&bit| ex.push(bit)).collect();
        assert_eq!(emitted.len(), stream.len() / n);
        assert_eq!(ex.pending_input_bits(), stream.len() % n);
        for (k, &word) in emitted.iter().enumerate() {
            let reference = t.mul_naive(&stream[k * n..(k + 1) * n]);
            assert_eq!(unpack(&[word], m), reference, "m={m} n={n} block {k}");
        }
    }
}
