#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before merging.
#
# The whole pipeline is hermetic — `--offline` everywhere, and the
# workspace has no registry dependencies (see DESIGN.md, "Hermetic
# builds"). Run from anywhere inside the repository.
#
#   scripts/ci.sh            # full gate
#   TRNG_PROP_CASES=512 scripts/ci.sh   # heavier property sweep

set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline"
cargo test -q --offline

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --offline --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint"
fi

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --quiet

# Entropy-pool smoke: bring up a 2-shard pool, stream 1 MB of raw
# bytes through the threaded service path, and fail on any health
# alarm, retired shard, or degenerate output. Exercises the worker
# threads, SPSC rings, and continuous-test gating end to end.
echo "==> pool smoke (2 shards, 1 MB)"
TRNG_POOL_SMOKE_BYTES=${TRNG_POOL_SMOKE_BYTES:-1000000} \
TRNG_POOL_SMOKE_SHARDS=${TRNG_POOL_SMOKE_SHARDS:-2} \
    cargo run -q --release --offline -p trng-pool --bin pool_smoke

# Serving-layer smoke: daemon on an ephemeral loopback port, ~1 MB
# fetched by four concurrent clients (one deliberately over quota and
# throttled, not errored), metrics scrape, graceful drain with every
# worker joined. Exercises the frame protocol, token buckets, and the
# shared pool handle end to end.
echo "==> serve smoke (4 clients, ~1 MB, quota + metrics + drain)"
TRNG_SERVE_SMOKE_BYTES=${TRNG_SERVE_SMOKE_BYTES:-327680} \
TRNG_SERVE_SMOKE_SHARDS=${TRNG_SERVE_SMOKE_SHARDS:-2} \
    cargo run -q --release --offline -p trng-serve --bin serve_smoke

# Self-healing smoke: 3-shard deterministic pool with a scripted
# persistent fault on shard 1 and a respawn budget of one. Fails
# unless exactly one respawn heals the pool, the delivered stream
# re-passes a fresh continuous-test gate (zero unhealthy bytes), and
# the incident journal matches the scripted story event-for-event.
echo "==> elastic smoke (3 shards, persistent fault on shard 1, 1 respawn)"
TRNG_ELASTIC_SMOKE_BYTES=${TRNG_ELASTIC_SMOKE_BYTES:-32768} \
    cargo run -q --release --offline -p trng-pool --bin elastic_smoke

# Adversarial-detection smoke: 2-shard monitored pool hit by two
# scripted campaigns — injection locking on shard 0 (invisible to the
# SP 800-90B gate; only the jitter monitor's differential sigma probe
# catches it) and a severe thermal runaway on shard 1 (monitor drift
# first, 90B alarm second, shard retired). Fails unless both detections
# land in the incident journal in that order and the delivered stream
# re-passes a fresh continuous-test gate.
echo "==> adversarial smoke (locking + thermal runaway, monitor-first detection)"
TRNG_ADVERSARIAL_SMOKE_BYTES=${TRNG_ADVERSARIAL_SMOKE_BYTES:-4096} \
    cargo run -q --release --offline -p trng-pool --bin adversarial_smoke

# Coherence smoke: 3-shard monitored pool hit by the sub-threshold
# shared supply tone (0.4 % @ 5 MHz) on shards 0+1 — invisible to
# every per-shard gate. Fails unless the cross-shard coherence
# detector journals the expected CommonModeCoherence quorum event
# (coherence probe code, aliased line, mask 0b011) while the per-shard
# gates stay silent, the run replays byte-identically, and a
# single-shard control tone does NOT trip the quorum.
echo "==> coherence smoke (2-of-3 shared tone quorum, per-shard gates silent)"
TRNG_COHERENCE_SMOKE_BYTES=${TRNG_COHERENCE_SMOKE_BYTES:-12288} \
    cargo run -q --release --offline -p trng-pool --bin coherence_smoke

# Per-backend smoke: each of the four entropy backends (carry-chain,
# dual-oscillator, trace replay, OS entropy) runs alone behind a
# deterministic pool — admitted by the AIS-31 startup test, serving
# bytes, and surviving an injected Stuck fault's quarantine/readmit
# round trip — then all four run mixed behind one 4-shard pool.
echo "==> sources smoke (4 backends + mixed pool, Stuck drill on every shard)"
TRNG_SOURCES_SMOKE_BYTES=${TRNG_SOURCES_SMOKE_BYTES:-8192} \
    cargo run -q --release --offline -p trng-pool --bin sources_smoke

# Extraction smoke: 2-shard composed deterministic pool (raw shards
# feeding the pool-level cross-shard Toeplitz stage at the leftover-
# hash-sized ratio) streams ~1 MB. Fails on any health alarm, a shard
# leaving the online state, a ratio wider than the design's np = 7,
# claimed > measured min-entropy, or a replay divergence.
echo "==> extract smoke (2-shard composed Toeplitz pool, claimed <= measured)"
TRNG_EXTRACT_SMOKE_BYTES=${TRNG_EXTRACT_SMOKE_BYTES:-1000000} \
TRNG_EXTRACT_SMOKE_SHARDS=${TRNG_EXTRACT_SMOKE_SHARDS:-2} \
    cargo run -q --release --offline -p trng-pool --bin extract_smoke

# Extraction regression gate: quick run of the extract bench, writing
# BENCH_extract.json (design-XOR baseline vs per-shard Toeplitz vs the
# composed stage) and failing if a Toeplitz row costs more than 2x the
# design-XOR ns/bit (ratio 5 consumes fewer raw bits than np = 7, so
# parity or better is expected; the 2x gate absorbs slow CI hosts).
echo "==> extract bench (quick, Toeplitz vs design-XOR ns/bit gate at 2x)"
TRNG_EXTRACT_BENCH_BYTES=${TRNG_EXTRACT_BENCH_BYTES:-8192} \
TRNG_EXTRACT_GATE_RATIO=${TRNG_EXTRACT_GATE_RATIO:-2.0} \
TRNG_BENCH_OUT_DIR=$(mktemp -d) \
    cargo bench -q --offline -p trng-bench --bench pool_extract

# Heterogeneous-backend throughput: quick run of the sources bench,
# writing BENCH_sources.json (ns/bit and Mb/s per backend plus the
# mixed 4-source pool) and asserting the OS-backed pool outpaces the
# event-driven carry-chain simulator on the host.
echo "==> sources bench (quick, per-backend + mixed throughput)"
TRNG_SOURCES_BENCH_BYTES=${TRNG_SOURCES_BENCH_BYTES:-4096} \
TRNG_BENCH_OUT_DIR=$(mktemp -d) \
    cargo bench -q --offline -p trng-bench --bench pool_sources

# Detection-latency table: quick run of the adversarial bench, which
# asserts internally that no detection precedes its attack onset and
# writes BENCH_adversarial.json (thermal ramp/runaway, locking,
# flicker; the sub-threshold shared supply tone stays undetected by
# the per-shard gates alone, and the +coherence row shows the
# cross-shard detector closing that gap).
echo "==> adversarial bench (quick, detection-latency table)"
TRNG_ADVERSARIAL_BENCH_BYTES=${TRNG_ADVERSARIAL_BENCH_BYTES:-6144} \
TRNG_BENCH_OUT_DIR=$(mktemp -d) \
    cargo bench -q --offline -p trng-bench --bench pool_adversarial

# Coherence detection-latency gate: quick run of the coherence bench,
# writing BENCH_coherence.json (2-of-2 and 2-of-3 quorum rows plus a
# 1-of-3 control) and failing if a quorum row misses the tone, takes
# longer than the gate (measured ~15.2k bits; 24k absorbs host
# scheduling skew in observation cadence), or the control row alarms.
echo "==> coherence bench (quick, quorum latency gate + single-shard control)"
TRNG_COHERENCE_BENCH_BYTES=${TRNG_COHERENCE_BENCH_BYTES:-8192} \
TRNG_COHERENCE_GATE_BITS=${TRNG_COHERENCE_GATE_BITS:-24576} \
TRNG_BENCH_OUT_DIR=$(mktemp -d) \
    cargo bench -q --offline -p trng-bench --bench pool_coherence

# Hot-path regression gate: quick run of the per-bit bench, failing
# if the raw-bit cost regresses to more than 2x the checked-in
# baseline (BENCH_hotpath.json: after_ns_per_bit ~ 1615 ns/bit on the
# reference host; the 2x headroom absorbs slower CI machines). The
# batched gate is host-speed independent — it compares the batched and
# scalar raw rows measured in the same process and fails below 5x
# (reference host sits at ~6x, so ~20% regression headroom).
echo "==> hotpath bench (quick, scalar gate at 2x baseline, batched gate at 5x scalar)"
TRNG_HOTPATH_BENCH_BYTES=${TRNG_HOTPATH_BENCH_BYTES:-8192} \
TRNG_HOTPATH_GATE_NS=${TRNG_HOTPATH_GATE_NS:-3230} \
TRNG_HOTPATH_BATCHED_MIN_SPEEDUP=${TRNG_HOTPATH_BATCHED_MIN_SPEEDUP:-5} \
TRNG_BENCH_OUT_DIR=$(mktemp -d) \
    cargo bench -q --offline -p trng-bench --bench hotpath

echo "==> tier-1 gate passed"
