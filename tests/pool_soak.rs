//! Pool soak tests: multi-shard runs with a mid-stream fault injected
//! into one shard. The delivered stream must stay health-clean — the
//! zero-unhealthy-bytes guarantee — and `PoolStats` must record
//! exactly the injected quarantine, nothing more.
//!
//! The first tests run in tier-1 CI; the statistics-battery soak at
//! the bottom is ignored by default (run with `--ignored`).

use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_model::params::{DesignParams, PlatformParams};
use trng_pool::{
    Conditioning, EntropyPool, FaultInjection, PoolConfig, PoolError, ShardFault, ShardState,
};

/// Drift-frozen, injection-locked configuration; a running shard
/// swapped onto it reliably trips the continuous tests.
fn dead_config() -> TrngConfig {
    let mut config = TrngConfig::ideal();
    config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
    config.design = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
        ..DesignParams::paper_k4()
    };
    config
}

fn transient_fault(shard: usize, after_bytes: u64) -> FaultInjection {
    FaultInjection {
        shard,
        after_bytes,
        fault: ShardFault::Config(Box::new(dead_config())),
        transient: true,
    }
}

/// Replays the delivered bytes through a fresh continuous-test gate:
/// if any stretch of the stream carried the injected failure, the same
/// tests that guard the shards would alarm here too.
fn assert_stream_health_clean(bytes: &[u8]) {
    let mut gate = OnlineHealth::new(0.5);
    let mut ones = 0u64;
    for &byte in bytes {
        for bit in (0..8).rev().map(|i| byte >> i & 1 == 1) {
            ones += u64::from(bit);
            assert_eq!(
                gate.push(bit),
                HealthStatus::Ok,
                "delivered stream alarmed the continuous tests"
            );
        }
    }
    let total = bytes.len() as f64 * 8.0;
    let frac = ones as f64 / total;
    assert!(
        (frac - 0.5).abs() < 0.015,
        "delivered stream is biased: ones fraction {frac}"
    );
}

#[test]
fn deterministic_soak_injected_fault_never_taints_the_stream() {
    // Three shards, shard 1 sabotaged after it has contributed 2 KiB.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 3)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0x50AC)
        .with_fault(transient_fault(1, 2048))
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool");
    assert_eq!(
        pool.wait_online(Duration::from_secs(60))
            .expect("admission"),
        3
    );

    let mut delivered = vec![0u8; 16 * 1024];
    pool.fill_bytes(&mut delivered).expect("fill");

    // The incident is fully recorded: exactly one alarm, one
    // quarantine round-trip, on exactly the sabotaged shard.
    let stats = pool.stats();
    let s1 = &stats.shards[1];
    assert_eq!(s1.alarms, 1, "expected exactly the injected alarm");
    assert_eq!(s1.readmissions, 1, "transient fault must be re-admitted");
    assert_eq!(s1.startup_runs, 2, "initial admission + one re-test");
    assert_eq!(s1.state, ShardState::Online);
    for s in [&stats.shards[0], &stats.shards[2]] {
        assert_eq!(s.alarms, 0, "healthy shard {} alarmed", s.id);
        assert_eq!(s.readmissions, 0);
        assert_eq!(s.startup_runs, 1);
        assert_eq!(s.state, ShardState::Online);
    }
    assert_eq!(stats.total_alarms(), 1);
    assert_eq!(stats.bytes_delivered, delivered.len() as u64);

    // Zero-unhealthy-bytes guarantee on the actual delivered stream.
    assert_stream_health_clean(&delivered);

    // And the incident replays byte-identically.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 3)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0x50AC)
        .with_fault(transient_fault(1, 2048))
        .deterministic(true);
    let mut replay_pool = EntropyPool::new(config).expect("pool");
    let mut replay = vec![0u8; 16 * 1024];
    replay_pool.fill_bytes(&mut replay).expect("fill");
    assert_eq!(delivered, replay, "replay diverged");
    assert_eq!(pool.stats(), replay_pool.stats());
}

#[test]
fn threaded_soak_quarantines_and_heals_under_load() {
    let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xBEE)
        .with_block_bytes(128)
        .with_fault(transient_fault(0, 1024));
    let mut pool = EntropyPool::new(config).expect("pool");
    assert_eq!(
        pool.wait_online(Duration::from_secs(120))
            .expect("admission"),
        2
    );

    let mut delivered = vec![0u8; 8 * 1024];
    pool.fill_bytes(&mut delivered).expect("fill");
    assert_stream_health_clean(&delivered);

    // The sabotaged shard must have alarmed exactly once; give the
    // worker a moment to finish the re-admission test if it is still
    // mid-retest when the fill completes.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let stats = loop {
        let stats = pool.stats();
        if stats.shards[0].state != ShardState::Quarantined || std::time::Instant::now() >= deadline
        {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(stats.shards[0].alarms, 1);
    assert_eq!(stats.shards[0].readmissions, 1);
    assert_eq!(stats.shards[0].state, ShardState::Online);
    assert_eq!(stats.shards[1].alarms, 0);
    assert_eq!(stats.shards[1].state, ShardState::Online);
}

#[test]
fn pool_runs_dry_with_typed_error_when_last_shard_dies() {
    // One shard with a *persistent* fault and a budget of one alarm:
    // it retires at re-admission and the pool must surface that as
    // `SourcesExhausted` — after an intact healthy prefix.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xD1E)
        .with_fault(FaultInjection {
            shard: 0,
            after_bytes: 1024,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        })
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool");
    let mut sink = vec![0u8; 1 << 20];
    match pool.fill_bytes(&mut sink) {
        Err(PoolError::SourcesExhausted { filled }) => {
            assert!(filled >= 1024, "healthy prefix was {filled}");
            assert!(filled < sink.len());
            assert_stream_health_clean(&sink[..filled]);
        }
        other => panic!("expected SourcesExhausted, got {other:?}"),
    }
    let stats = pool.stats();
    assert_eq!(stats.shards[0].state, ShardState::Retired);
    assert_eq!(stats.shards[0].alarms, 1);
    assert_eq!(stats.shards[0].readmissions, 0);
}

#[test]
fn trimmed_battery_passes_in_tier1() {
    use trng_stattests::ais31::run_ais31;
    use trng_stattests::bits::BitVec;
    use trng_stattests::nist::run_battery;

    // Tier-1 sized variant of the full soak below: 24 KiB over two
    // shards with one transient mid-stream fault. Tests that need more
    // data (universal, linear complexity, ...) skip as not applicable
    // and do not count as failures.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xFEED)
        .with_fault(transient_fault(1, 4096))
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool");
    let mut delivered = vec![0u8; 24 * 1024];
    pool.fill_bytes(&mut delivered).expect("fill");

    let stats = pool.stats();
    assert_eq!(stats.total_alarms(), 1);
    assert_eq!(stats.shards[1].readmissions, 1);
    assert_stream_health_clean(&delivered);

    let bits: BitVec = delivered
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
        .collect();
    let ais = run_ais31(&bits);
    assert!(ais.all_passed(), "{ais}");
    let battery = run_battery(&bits);
    assert!(
        battery.applicable() >= 8,
        "too few applicable tests\n{battery}"
    );
    assert!(
        battery.failures().len() <= 1,
        "NIST failures: {:?}\n{battery}",
        battery.failures()
    );
}

#[test]
#[ignore = "multi-minute soak run; execute with --ignored"]
fn pooled_output_passes_the_statistical_batteries() {
    use trng_stattests::ais31::run_ais31;
    use trng_stattests::bits::BitVec;
    use trng_stattests::nist::run_battery;

    // Four shards, one transient mid-stream fault, AIS-31 + NIST on
    // the interleaved pooled output.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 4)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xFEED)
        .with_fault(transient_fault(2, 8192))
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool");
    let mut delivered = vec![0u8; 64 * 1024];
    pool.fill_bytes(&mut delivered).expect("fill");

    let stats = pool.stats();
    assert_eq!(stats.total_alarms(), 1);
    assert_eq!(stats.shards[2].readmissions, 1);

    let bits: BitVec = delivered
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
        .collect();
    let ais = run_ais31(&bits);
    assert!(ais.all_passed(), "{ais}");
    let battery = run_battery(&bits);
    assert!(
        battery.failures().len() <= 1,
        "NIST failures: {:?}\n{battery}",
        battery.failures()
    );
}
