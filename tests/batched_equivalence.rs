//! Statistical-equivalence suite for `NoiseBackend::Batched`.
//!
//! The batched noise engine is *not* draw-identical to the scalar
//! oracle — it consumes randomness in a different order — so these
//! tests pin the contract it does make: every observable distribution
//! matches the scalar backend within sampling error. Four angles:
//!
//! * raw Gaussian variates: mean/variance/excess kurtosis inside 5σ
//!   estimator bands, per backend and between backends;
//! * the OU flicker process, driven through either normals backend:
//!   autocorrelation at τ_c and 2·τ_c sits on the exact
//!   `exp(−lag/τ_c)` theory curve and agrees between backends;
//! * the paper's eq. (7): both backends measure the same raw bias, and
//!   both post-processed streams respect the XOR-compression bound the
//!   equation predicts from that bias;
//! * black-box quality: a batched 64 KiB post-processed stream clears
//!   the full NIST SP 800-22 battery and the AIS-31 procedure suite.

use trng_core::postprocess::XorCompressor;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::noise::{FlickerNoise, FlickerParams, NoiseBackend};
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_model::postprocess::{bias, xor_bias};
use trng_stattests::ais31::run_ais31;
use trng_stattests::bits::BitVec;
use trng_stattests::nist::run_battery;

/// Builds the paper configuration on the requested noise backend.
fn config(backend: NoiseBackend) -> TrngConfig {
    TrngConfig::paper_k1().with_noise_backend(backend)
}

fn raw_bits(config: TrngConfig, seed: u64, n: usize) -> Vec<bool> {
    let mut trng = CarryChainTrng::new(config, seed).expect("build");
    let bits = trng.generate_raw(n);
    assert_eq!(trng.stats().missed_edges, 0);
    bits
}

fn ones_fraction(bits: &[bool]) -> f64 {
    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
}

/// Lag-`lag` autocorrelation of a real-valued series.
fn autocorr(x: &[f64], lag: usize) -> f64 {
    let n = x.len() - lag;
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
    let cov = (0..n)
        .map(|i| (x[i] - mean) * (x[i + lag] - mean))
        .sum::<f64>()
        / n as f64;
    cov / var
}

/// Sample mean, variance, and excess kurtosis of a draw set.
fn moments(draws: &[f64]) -> (f64, f64, f64) {
    let n = draws.len() as f64;
    let mean = draws.iter().sum::<f64>() / n;
    let m2 = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let m4 = draws.iter().map(|x| (x - mean).powi(4)).sum::<f64>() / n;
    (mean, m2, m4 / (m2 * m2) - 3.0)
}

/// Gaussian moments: for each seed, both backends' draws must sit
/// inside the 5σ estimator bands around the N(0, 1) theory values,
/// and the two backends must agree with each other inside the joint
/// (√2-wider) bands.
#[test]
fn gaussian_moments_match_within_five_sigma() {
    const N: usize = 1 << 21;
    let n = N as f64;
    // Standard errors of the three estimators under N(0, 1).
    let se_mean = (1.0 / n).sqrt();
    let se_var = (2.0 / n).sqrt();
    let se_kurt = (24.0 / n).sqrt();

    for seed in [11u64, 12, 13] {
        let mut scalar_rng = SimRng::seed_from(seed);
        let mut scalar = vec![0.0f64; N];
        for slot in &mut scalar {
            *slot = scalar_rng.standard_normal();
        }

        let mut batched_rng = SimRng::seed_from(seed);
        batched_rng.enable_batched_normals();
        assert!(batched_rng.batched_normals());
        let mut batched = vec![0.0f64; N];
        batched_rng.fill_standard_normals(&mut batched);

        let (ms, vs, ks) = moments(&scalar);
        let (mb, vb, kb) = moments(&batched);
        for (label, mean, var, kurt) in [("scalar", ms, vs, ks), ("batched", mb, vb, kb)] {
            assert!(
                mean.abs() < 5.0 * se_mean,
                "{label} seed {seed}: mean {mean}"
            );
            assert!(
                (var - 1.0).abs() < 5.0 * se_var,
                "{label} seed {seed}: variance {var}"
            );
            assert!(
                kurt.abs() < 5.0 * se_kurt,
                "{label} seed {seed}: excess kurtosis {kurt}"
            );
        }
        // Cross-backend: both estimates target the same value, so
        // their difference is at most √2 of one estimator's sigma.
        let joint = 2f64.sqrt();
        assert!(
            (ms - mb).abs() < 5.0 * joint * se_mean,
            "seed {seed} mean gap"
        );
        assert!(
            (vs - vb).abs() < 5.0 * joint * se_var,
            "seed {seed} variance gap"
        );
        assert!(
            (ks - kb).abs() < 5.0 * joint * se_kurt,
            "seed {seed} kurtosis gap"
        );
    }
}

/// OU flicker autocorrelation at the correlation time.
///
/// [`FlickerNoise`] draws its innovations through [`SimRng`], so the
/// same exact-recurrence OU process runs on either backend by flipping
/// the generator into batched-normals mode. Sampled on a regular grid,
/// both versions must show the closed-form `exp(−lag/τ_c)`
/// autocorrelation at τ_c and 2·τ_c, and agree with each other within
/// the ensemble standard error over independent seeds.
#[test]
fn ou_autocorrelation_at_tau_c_matches_between_backends() {
    let params = FlickerParams::new(Ps::from_ps(2.0), Ps::from_ns(100.0));
    const STEPS: usize = 100_000;
    const LAG: usize = 10; // grid step = tau_c / LAG
    const RUNS: usize = 6;
    let dt = Ps::from_ns(100.0 / LAG as f64);

    let ensemble = |backend: NoiseBackend, lag: usize| -> Vec<f64> {
        (0..RUNS)
            .map(|run| {
                let mut rng = SimRng::seed_from(41 + run as u64);
                if backend == NoiseBackend::Batched {
                    rng.enable_batched_normals();
                }
                let mut ou = FlickerNoise::new(params, &mut rng);
                let series: Vec<f64> = (0..STEPS)
                    .map(|i| {
                        ou.sample(Ps::from_ps(dt.as_ps() * i as f64), &mut rng)
                            .as_ps()
                    })
                    .collect();
                autocorr(&series, lag)
            })
            .collect()
    };
    let stats = |xs: &[f64]| -> (f64, f64) {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        (mean, (var / xs.len() as f64).sqrt())
    };

    for (lag, theory) in [(LAG, (-1.0f64).exp()), (2 * LAG, (-2.0f64).exp())] {
        let (rho_s, se_s) = stats(&ensemble(NoiseBackend::Scalar, lag));
        let (rho_b, se_b) = stats(&ensemble(NoiseBackend::Batched, lag));
        // Each backend against the closed form...
        assert!(
            (rho_s - theory).abs() < 0.03,
            "scalar OU autocorrelation at lag {lag}: {rho_s} vs {theory}"
        );
        assert!(
            (rho_b - theory).abs() < 0.03,
            "batched OU autocorrelation at lag {lag}: {rho_b} vs {theory}"
        );
        // ...and against each other, inside the joint ensemble error.
        let se = (se_s * se_s + se_b * se_b).sqrt();
        assert!(
            (rho_s - rho_b).abs() < 5.0 * se.max(0.002),
            "lag {lag}: scalar rho {rho_s} (se {se_s}) vs batched rho {rho_b} (se {se_b})"
        );
    }
}

/// Eq. (7) agreement: both backends measure the same raw bias, and
/// each post-processed stream lands within sampling error of the bias
/// the equation predicts from that backend's own raw measurement.
#[test]
fn eq7_bound_holds_for_both_backends() {
    const NP: u32 = 7;
    const RAW_BITS: usize = 700_000;
    let seed = 0x0E97;

    let raw_s = raw_bits(config(NoiseBackend::Scalar), seed, RAW_BITS);
    let raw_b = raw_bits(config(NoiseBackend::Batched), seed, RAW_BITS);
    let b_s = bias(ones_fraction(&raw_s));
    let b_b = bias(ones_fraction(&raw_b));

    // Same device, same seed: the structural bias (CARRY4 DNL parity
    // imbalance, ~0.1) is deterministic; only the noise realization
    // differs. A generous 0.01 band is ~10x the i.i.d. standard error
    // to absorb flicker-induced variance inflation.
    assert!(
        (b_s - b_b).abs() < 0.01,
        "raw bias disagrees: scalar {b_s} vs batched {b_b}"
    );

    for (label, raw, b_raw) in [("scalar", &raw_s, b_s), ("batched", &raw_b, b_b)] {
        let pp = XorCompressor::compress(NP, raw);
        let predicted = xor_bias(b_raw, NP);
        let measured = bias(ones_fraction(&pp));
        // Eq. (7) predicts a ~6e-6 residual bias at b ~ 0.1, np = 7 —
        // far below the sampling floor, so the measurement must sit
        // inside prediction + 5 sigma of the binomial estimator.
        let se = (0.25 / pp.len() as f64).sqrt();
        assert!(
            measured <= predicted + 5.0 * se,
            "{label}: post-processed bias {measured} exceeds eq. (7) bound \
             {predicted} + 5se ({se})"
        );
    }
}

/// Black-box acceptance: a 64 KiB post-processed stream produced
/// entirely on the batched backend clears the full NIST SP 800-22
/// battery (at most one marginal failure, matching the soak-test
/// criterion) and every applicable AIS-31 test.
#[test]
fn batched_64kib_stream_clears_nist_and_ais31() {
    const NP: u32 = 7;
    const PP_BITS: usize = 64 * 1024 * 8;
    let raw = raw_bits(config(NoiseBackend::Batched), 0x64AB, PP_BITS * NP as usize);
    let pp: BitVec = XorCompressor::compress(NP, &raw).into_iter().collect();
    assert_eq!(pp.len(), PP_BITS);

    let battery = run_battery(&pp);
    assert!(
        battery.applicable() >= 8,
        "too few applicable tests\n{battery}"
    );
    assert!(
        battery.failures().len() <= 1,
        "NIST failures: {:?}\n{battery}",
        battery.failures()
    );

    let ais = run_ais31(&pp);
    assert!(ais.all_passed(), "{ais}");
}
