//! Environmental-corner robustness — Section 3's requirement that "the
//! delay of the oscillator elements as well as the time-step of the
//! conversion can vary due to the temperature or voltage variations
//! and signal edge has to be detected under the worst-case conditions".
//!
//! The m = 36 margin (window 612 ps vs. stage delay 480 ps) must
//! absorb realistic supply and temperature excursions.

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::noise::{GlobalModulation, SupplyTone};
use trng_fpga_sim::process::DeviceSeed;
use trng_stattests::bits::BitVec;
use trng_stattests::estimators::shannon_bias_entropy;

fn with_global(modulation: GlobalModulation, device: u64) -> CarryChainTrng {
    let mut config = TrngConfig::paper_k1();
    config.global = Some(modulation);
    config.device = DeviceSeed::new(device);
    CarryChainTrng::new(config, 100 + device).expect("build")
}

#[test]
fn supply_ripple_corners_never_lose_the_edge() {
    // +-3 % supply-induced delay modulation at two ripple frequencies:
    // far beyond normal regulation, still no missed edges at m = 36.
    for (freq, amp) in [(1e6, 0.03), (50e6, 0.03), (0.2e6, 0.02)] {
        let mut trng = with_global(GlobalModulation::supply_tone(SupplyTone::new(freq, amp)), 1);
        let _ = trng.generate_raw(3_000);
        assert_eq!(
            trng.stats().missed_edges,
            0,
            "missed edges at ripple {freq} Hz / {amp}"
        );
    }
}

#[test]
fn thermal_drift_corner_keeps_working() {
    // A fast warm-up transient: +5 %/s delay drift (delays grow ~0.5 %
    // over a 100 ms run — far more than a real die in that time).
    let mut trng = with_global(GlobalModulation::new().with_thermal_drift(0.05), 2);
    let raw: Vec<bool> = trng.generate_raw(5_000);
    assert_eq!(trng.stats().missed_edges, 0);
    let bv: BitVec = raw.into_iter().collect();
    // Entropy stays in the healthy band despite the drift.
    assert!(
        shannon_bias_entropy(&bv) > 0.9,
        "H = {}",
        shannon_bias_entropy(&bv)
    );
}

#[test]
fn combined_corner_with_slow_device() {
    // Worst case stacking: slow process corner (global +8 % delays via
    // thermal offset), supply ripple, flicker — the design margin of
    // m = 36 still holds.
    let mut config = TrngConfig::paper_k1();
    config.global = Some(
        GlobalModulation::new()
            .with_tone(SupplyTone::new(2e6, 0.02))
            // Static slow corner approximated as an immediate offset:
            // 8 % slower delays from t = 0 on.
            .with_thermal_drift(0.0),
    );
    // Make the *oscillator* the slow element: scale d0 up 8 %.
    config.platform =
        trng_model::params::PlatformParams::new(480.0 * 1.08, 17.0, 2.6).expect("valid");
    let mut trng = CarryChainTrng::new(config, 9).expect("build");
    let _ = trng.generate_raw(4_000);
    // 36 taps * 17 ps = 612 ps vs 518 ps stage delay: still captured.
    assert_eq!(trng.stats().missed_edges, 0);
}

#[test]
fn fast_corner_shifts_but_does_not_break_entropy() {
    // 8 % faster delays: more double edges (window/d0 ratio grows),
    // entropy unaffected.
    let mut config = TrngConfig::paper_k1();
    config.platform =
        trng_model::params::PlatformParams::new(480.0 * 0.92, 17.0, 2.6).expect("valid");
    let mut trng = CarryChainTrng::new(config, 10).expect("build");
    let raw: Vec<bool> = trng.generate_raw(6_000);
    assert_eq!(trng.stats().missed_edges, 0);
    let bv: BitVec = raw.into_iter().collect();
    assert!(shannon_bias_entropy(&bv) > 0.9);
    // Faster ring -> edges closer together -> double edges more common.
    assert!(trng.stats().double_edge > 0);
}
