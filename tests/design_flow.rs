//! E9 — the paper's four-step design procedure end-to-end (Figure 1):
//! measure → model → implement → evaluate, as an integration test.

use trng_core::resources::estimate;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::delay_line::TappedDelayLine;
use trng_fpga_sim::ring_oscillator::RingOscillatorConfig;
use trng_fpga_sim::rng::SimRng;
use trng_fpga_sim::time::Ps;
use trng_measure::measure_platform;
use trng_model::design_space::evaluate;
use trng_model::params::{DesignParams, PlatformParams};
use trng_stattests::bits::BitVec;
use trng_stattests::fips140::run_fips140;
use trng_stattests::nist::run_battery;

#[test]
fn full_design_flow_reproduces_paper_numbers() {
    // --- Step 1: measure the platform -------------------------------
    let ro = RingOscillatorConfig {
        history_window: Ps::from_ns(4.0),
        ..RingOscillatorConfig::paper_default()
    };
    let line = TappedDelayLine::ideal(128, Ps::from_ps(17.0));
    let measured = measure_platform(&ro, &line, SimRng::seed_from(1)).expect("measurement");
    assert!(
        (measured.d0_lut_ps - 480.0).abs() < 480.0 * 0.1,
        "d0 = {}",
        measured.d0_lut_ps
    );
    assert!(
        (measured.tstep_ps - 17.0).abs() < 1.0,
        "tstep = {}",
        measured.tstep_ps
    );
    assert!(
        (measured.sigma_lut_ps - 2.6).abs() < 0.5,
        "sigma = {}",
        measured.sigma_lut_ps
    );

    // --- Step 2: choose design parameters from the model -------------
    let platform =
        PlatformParams::new(measured.d0_lut_ps, measured.tstep_ps, measured.sigma_lut_ps)
            .expect("positive measured values");
    // The paper's m > d0/tstep condition lands near 29 taps.
    assert!(
        (28..=31).contains(&platform.min_taps()),
        "{}",
        platform.min_taps()
    );
    let design = DesignParams::paper_k1();
    let point = evaluate(&platform, &design).expect("valid design");
    assert!(point.h_raw > 0.95, "H_RAW = {}", point.h_raw);

    // --- Step 3: implement ------------------------------------------
    let config = TrngConfig::paper_k1();
    let trng = CarryChainTrng::new(config.clone(), 3).expect("build");
    drop(trng);
    assert_eq!(estimate(&design).total_slices(), 67); // Table 2

    // --- Step 4: statistical evaluation ------------------------------
    let mut trng = CarryChainTrng::new(config, 4).expect("build");
    let pp: BitVec = trng.generate_postprocessed(40_000).into_iter().collect();
    assert_eq!(trng.stats().missed_edges, 0);
    let fips = run_fips140(&pp);
    assert!(fips.all_passed(), "{fips}");
    let battery = run_battery(&pp);
    // A single 40k-bit run evaluates dozens of P-values; tolerate one
    // borderline statistic but nothing systematic.
    assert!(
        battery.failures().len() <= 1,
        "NIST failures: {:?}",
        battery.failures()
    );
}

#[test]
fn mistuned_design_is_rejected_by_the_flow() {
    // A k = 4, tA = 10 ns design (Table 1's hopeless row) must be
    // flagged by the model *before* implementation...
    let platform = PlatformParams::spartan6();
    let bad = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        ..DesignParams::paper_k4()
    };
    let point = evaluate(&platform, &bad).expect("structurally valid");
    assert!(
        point.h_raw < 0.1,
        "model must expose H_RAW ~ 0.03, got {}",
        point.h_raw
    );

    // ...and its simulated output indeed fails the quick tests.
    let config = TrngConfig::paper_k4().with_design(bad);
    let mut trng = CarryChainTrng::new(config, 5).expect("build");
    let raw: BitVec = trng.generate_raw(20_000).into_iter().collect();
    let fips = run_fips140(&raw);
    assert!(
        !fips.all_passed(),
        "k=4/tA=10ns raw bits passed FIPS: {fips}"
    );
}
