//! Elastic-pool chaos soak: scripted shard kills mid-stream, with a
//! respawn budget. The pool must heal itself — spawning replacement
//! shards on fresh placements that pass the same admission gate —
//! while the delivered stream stays byte-exact and health-clean, and
//! the incident journal must match the fault script event-for-event.
//!
//! The deterministic replay backend makes the whole campaign a pure
//! function of the configuration: the same script replays to the same
//! bytes, the same stats and the same journal.

use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_model::params::{DesignParams, PlatformParams};
use trng_pool::{
    Conditioning, EntropyPool, FaultInjection, IncidentKind, PoolConfig, PoolError, PoolHealth,
    RespawnPolicy, ShardFault, ShardOrigin, ShardState,
};

/// Drift-frozen, injection-locked configuration; a running shard
/// swapped onto it reliably trips the continuous tests.
fn dead_config() -> TrngConfig {
    let mut config = TrngConfig::ideal();
    config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
    config.design = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
        ..DesignParams::paper_k4()
    };
    config
}

fn fault(shard: usize, after_bytes: u64, transient: bool) -> FaultInjection {
    FaultInjection {
        shard,
        after_bytes,
        fault: ShardFault::Config(Box::new(dead_config())),
        transient,
    }
}

/// Replays the delivered bytes through a fresh continuous-test gate:
/// any unhealthy stretch that leaked into the stream would alarm here.
fn assert_stream_health_clean(bytes: &[u8]) {
    let mut gate = OnlineHealth::new(0.5);
    for &byte in bytes {
        for bit in (0..8).rev().map(|i| byte >> i & 1 == 1) {
            assert_eq!(
                gate.push(bit),
                HealthStatus::Ok,
                "delivered stream alarmed the continuous tests"
            );
        }
    }
}

/// The chaos script: shard 2 takes a transient hit (quarantine and
/// re-admission), shard 1 dies persistently (retired, then replaced by
/// respawned shard 3 on a fresh placement).
fn chaos_config() -> PoolConfig {
    PoolConfig::new(TrngConfig::paper_k1(), 3)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xE1A5)
        .with_block_bytes(64)
        .with_fault(fault(2, 1024, true))
        .with_fault(fault(1, 2048, false))
        .with_respawn(RespawnPolicy::new(3, 2))
        .deterministic(true)
}

#[test]
fn chaos_script_heals_byte_exactly_with_a_matching_journal() {
    let mut pool = EntropyPool::new(chaos_config()).expect("pool");
    assert_eq!(
        pool.wait_online(Duration::from_secs(60))
            .expect("admission"),
        3
    );
    let mut delivered = vec![0u8; 32 * 1024];
    pool.fill_bytes(&mut delivered).expect("fill");
    assert_stream_health_clean(&delivered);

    let stats = pool.stats();
    // Exactly one respawn: shard 1's persistent death, healed by
    // shard 3 on the next fresh placement.
    assert_eq!(stats.respawns, 1);
    assert_eq!(stats.respawns_available, 1);
    assert_eq!(stats.shards.len(), 4);
    assert_eq!(stats.shards[1].state, ShardState::Retired);
    assert!(stats.shards[1].superseded);
    assert_eq!(stats.shards[3].origin, ShardOrigin::Respawn { replaces: 1 });
    assert_eq!(stats.shards[3].state, ShardState::Online);
    assert_eq!(
        stats.shards[3].startup_runs, 1,
        "replacement must pass the same startup gate"
    );
    assert!(stats.shards[3].bytes_produced > 0);
    // The transient incident healed in place.
    assert_eq!(stats.shards[2].state, ShardState::Online);
    assert_eq!(stats.shards[2].readmissions, 1);
    // The healed pool reads healthy — the superseded retiree is out of
    // the live set.
    assert_eq!(stats.health(), PoolHealth::Healthy);

    // Journal matches the script event-for-event, per shard:
    let kinds = |shard: usize| -> Vec<IncidentKind> {
        stats
            .journal
            .iter()
            .filter(|e| e.shard == shard)
            .map(|e| e.kind)
            .collect()
    };
    assert_eq!(kinds(0), [IncidentKind::Spawn]);
    assert_eq!(
        kinds(1),
        [
            IncidentKind::Spawn,
            IncidentKind::Alarm,
            IncidentKind::Quarantine,
            IncidentKind::Retire,
        ]
    );
    assert_eq!(
        kinds(2),
        [
            IncidentKind::Spawn,
            IncidentKind::Alarm,
            IncidentKind::Quarantine,
            IncidentKind::Readmit,
        ]
    );
    assert_eq!(kinds(3), [IncidentKind::Respawn]);
    assert_eq!(stats.journal.len(), 10);
    assert_eq!(stats.journal_recorded, 10);
    // Stamps are meaningful: the alarms fired at (or after) their
    // scripted byte offsets, and the respawn names its predecessor.
    let event = |shard, kind| {
        stats
            .journal
            .iter()
            .find(|e| e.shard == shard && e.kind == kind)
            .expect("scripted event missing")
    };
    assert!(event(2, IncidentKind::Alarm).at_bytes >= 1024);
    assert!(event(1, IncidentKind::Alarm).at_bytes >= 2048);
    assert!(event(1, IncidentKind::Alarm).sim_ns > 0);
    let respawn = event(3, IncidentKind::Respawn);
    assert_eq!(respawn.detail, 1, "respawn must name the replaced shard");
    assert!(respawn.at_bytes >= 2048, "stamped at the retiree's offset");
    // The failed re-admission carries its startup failure mask.
    assert_ne!(event(1, IncidentKind::Retire).detail, 0);

    // Byte-identical healthy replay: the same script yields the same
    // stream, the same stats and the same journal.
    let mut replay_pool = EntropyPool::new(chaos_config()).expect("pool");
    let mut replay = vec![0u8; 32 * 1024];
    replay_pool.fill_bytes(&mut replay).expect("fill");
    assert_eq!(delivered, replay, "replay diverged");
    assert_eq!(pool.stats(), replay_pool.stats());
}

#[test]
fn spent_budget_ends_in_typed_exhaustion_with_every_attempt_journaled() {
    // The same kind of persistent-death script, but the budget cannot
    // cover it: the sole shard dies, both replacements die too, and
    // the pool must end in the typed error — after an intact healthy
    // prefix — with every spawn attempt in the journal.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0xDEAD)
        .with_block_bytes(64)
        .with_max_readmissions(0)
        .with_fault(fault(0, 1024, false))
        .with_fault(fault(1, 512, false))
        .with_fault(fault(2, 0, false))
        .with_respawn(RespawnPolicy::new(1, 2))
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool");
    let mut sink = vec![0u8; 1 << 20];
    match pool.fill_bytes(&mut sink) {
        Err(PoolError::SourcesExhausted { filled }) => {
            assert!(filled >= 1024 + 512, "healthy prefix was {filled}");
            assert!(filled < sink.len());
            assert_stream_health_clean(&sink[..filled]);
        }
        other => panic!("expected SourcesExhausted, got {other:?}"),
    }
    let stats = pool.stats();
    assert_eq!(stats.respawns, 2);
    assert_eq!(stats.respawns_available, 0);
    assert_eq!(stats.health(), PoolHealth::Exhausted);
    assert_eq!(stats.shards.len(), 3);
    // Every attempt is auditable: two respawn events, three retires.
    let count = |kind| stats.journal.iter().filter(|e| e.kind == kind).count();
    assert_eq!(count(IncidentKind::Respawn), 2);
    assert_eq!(count(IncidentKind::Retire), 3);
    for (shard, replaces) in [(1, 0), (2, 1)] {
        let e = stats
            .journal
            .iter()
            .find(|e| e.shard == shard && e.kind == IncidentKind::Respawn)
            .expect("respawn event");
        assert_eq!(e.detail, replaces as u64);
    }
}

#[test]
fn threaded_respawn_joins_the_dead_worker_and_fills_the_new_ring() {
    // Threaded (non-deterministic) path: shard 0 dies persistently,
    // the supervisor joins its finished worker thread, and the
    // replacement's worker comes online and pushes into its own ring.
    let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0x7EAD)
        .with_block_bytes(128)
        .with_max_readmissions(0)
        .with_fault(fault(0, 1024, false))
        .with_respawn(RespawnPolicy::new(2, 1));
    let mut pool = EntropyPool::new(config).expect("pool");
    assert_eq!(
        pool.wait_online(Duration::from_secs(120))
            .expect("admission"),
        2
    );
    // Keep consuming; supervision piggybacks on the fill calls. Stop
    // once the replacement serves (or the deadline trips).
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    let mut delivered = Vec::new();
    loop {
        let mut chunk = vec![0u8; 4096];
        match pool.try_fill_bytes(&mut chunk, Duration::from_millis(500)) {
            Ok(()) => delivered.extend_from_slice(&chunk),
            Err(PoolError::Timeout { filled }) => delivered.extend_from_slice(&chunk[..filled]),
            Err(other) => panic!("pool failed to heal: {other}"),
        }
        let stats = pool.stats();
        let healed = stats.respawns == 1
            && stats.shards.len() == 3
            && stats.shards[2].state == ShardState::Online
            && stats.shards[2].bytes_produced > 0;
        if healed || std::time::Instant::now() >= deadline {
            break;
        }
    }
    assert_stream_health_clean(&delivered);
    let stats = pool.stats();
    assert_eq!(stats.respawns, 1, "no respawn within the deadline");
    assert_eq!(stats.shards[0].state, ShardState::Retired);
    assert!(stats.shards[0].superseded);
    assert_eq!(
        stats.workers_joined, 1,
        "retired shard's worker must be joined"
    );
    assert_eq!(stats.shards[2].origin, ShardOrigin::Respawn { replaces: 0 });
    assert_eq!(stats.shards[2].state, ShardState::Online);
    assert!(
        stats.shards[2].ring_high_water > 0,
        "replacement worker never filled its ring"
    );
    assert_eq!(stats.health(), PoolHealth::Healthy);
    // The full incident is journaled across threads.
    for kind in [
        IncidentKind::Alarm,
        IncidentKind::Retire,
        IncidentKind::Respawn,
    ] {
        assert!(
            stats.journal.iter().any(|e| e.kind == kind),
            "missing {kind} event"
        );
    }
}
