//! Simulation determinism: the entire TRNG pipeline is a pure function
//! of (configuration, seed). This is what makes every other test in
//! the workspace reproducible — and what a hardware TRNG must *not* be.

use trng_core::rng_adapter::TrngRng;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_testkit::prng::RngCore;

/// Packs a bit stream MSB-first into bytes (length must divide by 8).
fn pack(bits: &[bool]) -> Vec<u8> {
    assert_eq!(bits.len() % 8, 0);
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| acc << 1 | u8::from(b)))
        .collect()
}

#[test]
fn same_seed_yields_byte_identical_megabit_streams() {
    let run = || {
        let mut trng = CarryChainTrng::new(TrngConfig::ideal(), 0x2015).expect("build");
        pack(&trng.generate_raw(1_000_000))
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), 125_000);
    // Byte-identical over the full megabit, not merely equal prefixes.
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let run = |seed: u64| {
        let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), seed).expect("build");
        trng.generate_raw(4096)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "seeds 1 and 2 produced identical 4096-bit streams");
    // And the divergence is substantial, not a single flipped bit.
    let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
    assert!(diff > 100, "only {diff} differing bits out of 4096");
}

#[test]
fn adapter_streams_are_deterministic_too() {
    // The RngCore adapter layers np-XOR post-processing and byte
    // packing on top — the determinism guarantee must survive it.
    let run = |seed: u64| {
        let trng = CarryChainTrng::new(TrngConfig::paper_k1(), seed).expect("build");
        let mut rng = TrngRng::new(trng);
        let mut buf = [0u8; 128];
        rng.fill_bytes(&mut buf);
        buf
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
