//! Equivalence suite for the packed, allocation-free sampling hot
//! path: across seeded sweeps of (n, m, k, np) the batch byte APIs
//! must reproduce the scalar `Vec<bool>` pipeline bit for bit, with
//! identical statistics — the packed rewrite is a layout and lookup
//! change, never a semantic one.

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_model::params::DesignParams;

/// Packs a bit vector MSB-first, 8 bits per byte — the byte
/// convention of `fill_raw` / `fill_postprocessed`.
fn pack(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |b, &bit| b << 1 | u8::from(bit)))
        .collect()
}

/// The (n, m, k, np) sweep: every combination is a valid design on
/// the paper's platform (m multiple of 4 and of k, m·tstep > d0,
/// n odd, placement fits the fabric).
fn sweep_configs() -> Vec<(TrngConfig, String)> {
    let mut configs = Vec::new();
    for &n in &[3usize, 5] {
        for &m in &[32usize, 36, 48] {
            for &k in &[1u32, 2, 4] {
                for &np in &[1u32, 7] {
                    if !m.is_multiple_of(k as usize) {
                        continue;
                    }
                    let design = DesignParams {
                        n,
                        m,
                        k,
                        np,
                        ..DesignParams::paper_k1()
                    };
                    let config = TrngConfig::paper_k1().with_design(design);
                    configs.push((config, format!("n={n} m={m} k={k} np={np}")));
                }
            }
        }
    }
    configs
}

#[test]
fn fill_raw_matches_generate_raw_across_sweep() {
    for (i, (config, label)) in sweep_configs().into_iter().enumerate() {
        let seed = 1000 + i as u64;
        let mut a = CarryChainTrng::new(config.clone(), seed).expect("build");
        let mut b = CarryChainTrng::new(config, seed).expect("build");

        let reference = pack(&a.generate_raw(32 * 8));
        let mut batch = vec![0u8; 32];
        b.fill_raw(&mut batch);
        assert_eq!(batch, reference, "{label} seed {seed}");
        assert_eq!(a.stats(), b.stats(), "{label} stats diverged");
    }
}

#[test]
fn fill_postprocessed_matches_generate_postprocessed_across_sweep() {
    for (i, (config, label)) in sweep_configs().into_iter().enumerate() {
        let seed = 2000 + i as u64;
        let mut a = CarryChainTrng::new(config.clone(), seed).expect("build");
        let mut b = CarryChainTrng::new(config, seed).expect("build");

        let reference = pack(&a.generate_postprocessed(8 * 8));
        let mut batch = vec![0u8; 8];
        b.fill_postprocessed(&mut batch);
        assert_eq!(batch, reference, "{label} seed {seed}");
        assert_eq!(a.stats(), b.stats(), "{label} stats diverged");
    }
}

#[test]
fn snippet_and_extracted_paths_stay_interleavable() {
    // Mixing the Snippet-materializing API with the packed extraction
    // API must not disturb the stream: both consume the simulator in
    // the same way.
    let mut a = CarryChainTrng::new(TrngConfig::paper_k1(), 77).expect("build");
    let mut b = CarryChainTrng::new(TrngConfig::paper_k1(), 77).expect("build");
    let mut bits_a = Vec::new();
    for i in 0..256 {
        if i % 3 == 0 {
            // Snippet path: classify + extract manually.
            let snippet = a.sample_snippet();
            let ext = trng_core::extractor::EntropyExtractor::new(
                a.config().design.k,
                a.config().bubble_filter,
            );
            bits_a.push(ext.extract(&snippet).is_none_or(|e| e.bit));
        } else {
            bits_a.push(a.next_raw_bit());
        }
    }
    let bits_b = b.generate_raw(256);
    // The Snippet path skips the missed-edge counter, but the bits and
    // sample counts must match exactly.
    assert_eq!(bits_a, bits_b);
    assert_eq!(a.stats().samples, b.stats().samples);
    assert_eq!(a.stats().regular, b.stats().regular);
    assert_eq!(a.stats().bubbled, b.stats().bubbled);
    assert_eq!(a.stats().double_edge, b.stats().double_edge);
}

#[test]
fn ideal_config_also_equivalent() {
    // meta_window = 0 takes the deterministic-capture early return —
    // the other half of the capture code path.
    let mut a = CarryChainTrng::new(TrngConfig::ideal(), 5).expect("build");
    let mut b = CarryChainTrng::new(TrngConfig::ideal(), 5).expect("build");
    let reference = pack(&a.generate_raw(64 * 8));
    let mut batch = vec![0u8; 64];
    b.fill_raw(&mut batch);
    assert_eq!(batch, reference);
}
