//! E8 — the Section 5.2 delay-line-length experiment: with m = 32 the
//! paper measured a 0.8 % missed-edge rate ("some LUTs may be slower"
//! than the average d0) and moved to m = 36, where the edge was always
//! captured.

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_fpga_sim::process::{DeviceSeed, ProcessVariation};
use trng_model::params::DesignParams;

/// LUT spread used for the experiment; the paper's observation implies
/// slow outliers beyond the 36-bin margin exist on real fabric.
fn experiment_process() -> ProcessVariation {
    ProcessVariation::new(0.08, 0.06, 0.01)
}

/// Builds the m-tap TRNG on a specific device.
fn trng_on_device(m: usize, dev: u64) -> CarryChainTrng {
    let mut config = TrngConfig::paper_k1().with_design(DesignParams {
        m,
        ..DesignParams::paper_k1()
    });
    config.device = DeviceSeed::new(dev);
    config.process = experiment_process();
    CarryChainTrng::new(config, 1000 + dev).expect("build")
}

/// Finds a device whose slowest ring LUT exceeds the m = 32 window.
fn slow_device() -> u64 {
    let process = experiment_process();
    (0..20_000u64)
        .find(|&dev| {
            (0..3).any(|i| {
                process.delay_multiplier(DeviceSeed::new(dev), 4 + 2 * i, 0) > 544.0 / 480.0 + 0.015
            })
        })
        .expect("a slow device exists")
}

#[test]
fn m32_misses_edges_on_slow_devices() {
    let dev = slow_device();
    let mut trng = trng_on_device(32, dev);
    let _ = trng.generate_raw(4_000);
    let rate = trng.stats().missed_edge_rate();
    // Same order as the paper's 0.8 %.
    assert!(rate > 0.0005, "device {dev}: rate {rate}");
    assert!(rate < 0.1, "device {dev}: rate {rate} implausibly high");
}

#[test]
fn m36_captures_every_edge_even_on_slow_devices() {
    let dev = slow_device();
    let mut trng = trng_on_device(36, dev);
    let _ = trng.generate_raw(4_000);
    assert_eq!(
        trng.stats().missed_edges,
        0,
        "m = 36 must always capture (paper Section 5.2)"
    );
}

#[test]
fn average_devices_rarely_miss_even_at_m32() {
    // The failure is a *tail* phenomenon: across a small random device
    // population most instances capture everything at m = 32, which is
    // exactly why the bug is easy to miss without a methodology.
    let mut total_missed = 0u64;
    for dev in 0..5 {
        let mut trng = trng_on_device(32, dev);
        let _ = trng.generate_raw(1_000);
        total_missed += trng.stats().missed_edges;
    }
    assert!(
        total_missed < 200,
        "typical devices miss rarely, got {total_missed} / 5000"
    );
}

#[test]
fn increasing_m_only_helps() {
    let dev = slow_device();
    let mut rates = Vec::new();
    for m in [32usize, 36, 40, 44] {
        let mut trng = trng_on_device(m, dev);
        let _ = trng.generate_raw(2_000);
        rates.push(trng.stats().missed_edge_rate());
    }
    for w in rates.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "rates not monotone: {rates:?}");
    }
}
