//! Golden-vector regression tests.
//!
//! Every value here is a *snapshot* of the current implementation on a
//! fixed seed (simulation side) or a pinned closed-form result (model
//! side). They exist to catch unintended numeric drift: a refactor of
//! the TDC, bubble filter, extractor or model math that changes any of
//! these vectors is a behaviour change and must update the goldens
//! deliberately.

use trng_core::snippet::SnippetKind;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_model::design_space::{compare_with_elementary, improvement_factor};
use trng_model::entropy::entropy_lower_bound;
use trng_model::params::PlatformParams;

/// First 16 extracted bits of the paper's k = 1 configuration at seed
/// 2015 — the Figure-4(a) shape: a single edge that drifts smoothly
/// through the delay line (positions 25 → 17), with the extracted bit
/// equal to the parity of the bubble-filtered first-edge position.
#[test]
fn figure4_snapshot_paper_k1() {
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 2015).expect("build");
    let golden_edges = [
        25, 25, 25, 25, 24, 22, 22, 22, 21, 19, 19, 18, 18, 17, 17, 17,
    ];
    let golden_bits = [
        false, false, false, false, true, true, true, true, false, false, false, true, true, false,
        false, false,
    ];
    for i in 0..16 {
        let e = trng.next_extracted().expect("edge present");
        assert_eq!(e.edge_position, golden_edges[i], "edge at sample {i}");
        assert_eq!(e.bit, golden_bits[i], "bit at sample {i}");
        assert_eq!(
            e.bit,
            e.edge_position.is_multiple_of(2),
            "parity at sample {i}"
        );
    }
}

/// Same snapshot for the k = 4 configuration: the downsampled line has
/// only 9 taps, so edge positions live in 0..9 and wrap faster.
#[test]
fn figure4_snapshot_paper_k4() {
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k4(), 2015).expect("build");
    let golden_edges = [5, 4, 3, 2, 2, 2, 0, 0, 0, 0, 6, 5, 5, 5, 5, 3];
    let golden_bits = [
        false, true, false, true, true, true, true, true, true, true, true, false, false, false,
        false, false,
    ];
    for i in 0..16 {
        let e = trng.next_extracted().expect("edge present");
        assert_eq!(e.edge_position, golden_edges[i], "edge at sample {i}");
        assert_eq!(e.bit, golden_bits[i], "bit at sample {i}");
    }
}

/// Snippet-kind census over 2000 fixed-seed samples. Regular sampling
/// dominates (Figure 4's "in most cases" claim), double edges appear
/// because m·tstep = 612 ps exceeds d0 = 480 ps, bubbles are rare, and
/// no-edge words never occur at m = 36.
#[test]
fn snippet_kind_census_is_stable() {
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 2015).expect("build");
    let mut counts = [0u32; 4];
    for _ in 0..2000 {
        match trng.sample_snippet().classify() {
            SnippetKind::Regular => counts[0] += 1,
            SnippetKind::DoubleEdge => counts[1] += 1,
            SnippetKind::Bubbled => counts[2] += 1,
            SnippetKind::NoEdge => counts[3] += 1,
        }
    }
    assert_eq!(counts, [1510, 487, 3, 0]);
}

/// Equation (7) worst-case entropy bound, pinned at four
/// (sigma_acc, tstep) points covering Figure 7's three curves plus the
/// paper_k4 / n_a = 5 operating point.
#[test]
fn eq7_entropy_bound_golden_values() {
    let cases = [
        (17.0, 17.0, 0.999_939_513_825_220),
        (8.5, 17.0, 0.898_424_878_735_578),
        (17.0 / 3.0, 17.0, 0.567_249_697_251_391),
        (13.0, 17.0, 0.996_354_132_932_677),
    ];
    for (sigma, tstep, golden) in cases {
        let h = entropy_lower_bound(sigma, tstep);
        assert!(
            (h - golden).abs() < 1e-12,
            "H({sigma}, {tstep}) = {h:.15}, golden {golden:.15}"
        );
    }
}

/// Equation (8) throughput-improvement factors over the elementary
/// TRNG: (d0/tstep)² = 797.23… for k = 1 and (d0/4·tstep)² = 49.83…
/// for k = 4 — the paper quotes 797 and 49.8.
#[test]
fn eq8_improvement_factors_golden() {
    let platform = PlatformParams::spartan6();
    let f1 = improvement_factor(&platform, 1);
    let f4 = improvement_factor(&platform, 4);
    // Closed form against the platform constants…
    assert!((f1 - (480.0f64 / 17.0).powi(2)).abs() < 1e-9, "f1 = {f1}");
    assert!((f4 - (480.0f64 / 68.0).powi(2)).abs() < 1e-9, "f4 = {f4}");
    // …and against the paper's quoted values.
    assert!((f1 - 797.0).abs() < 0.5, "f1 = {f1} (paper: 797)");
    assert!((f4 - 49.8).abs() < 0.05, "f4 = {f4} (paper: 49.8)");
}

/// The model-inverted comparison must agree with the closed form: the
/// accumulation-time ratio at equal target entropy IS the equation-(8)
/// factor, and the absolute times are pinned.
#[test]
fn eq8_model_inversion_golden() {
    let platform = PlatformParams::spartan6();
    for (k, factor) in [(1u32, 797.231_833_910_0), (4, 49.826_989_619_4)] {
        let cmp = compare_with_elementary(&platform, k, 0.99);
        assert!(
            (cmp.speedup - factor).abs() < 1e-6,
            "k = {k}: speedup {} vs factor {factor}",
            cmp.speedup
        );
    }
    let cmp = compare_with_elementary(&platform, 1, 0.99);
    assert!(
        (cmp.t_a_carry_ps - 9_905.184_864).abs() < 1e-3,
        "carry tA = {} ps",
        cmp.t_a_carry_ps
    );
    assert!(
        (cmp.t_a_elementary_ps - 7_896_728.694_275).abs() < 1.0,
        "elementary tA = {} ps",
        cmp.t_a_elementary_ps
    );
}
