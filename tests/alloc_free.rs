//! Zero-allocation assertion for the steady-state sampling hot path.
//!
//! This binary installs [`trng_testkit::alloc_counter::CountingAllocator`]
//! as the global allocator, so it must stay a *dedicated* test target:
//! any other test running in the same process would pollute the
//! counter. After warm-up (edge-train buffers reach their pruned
//! steady-state capacity), `fill_raw` must perform no heap allocation
//! at all.

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_testkit::alloc_counter::{allocation_count, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_fill_raw_does_not_allocate() {
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 0xA110C).expect("build");
    let mut buf = [0u8; 256];

    // Warm up: let the ring-oscillator edge trains grow to their
    // steady-state capacity and the pruning cadence settle.
    for _ in 0..8 {
        trng.fill_raw(&mut buf);
    }

    let before = allocation_count();
    trng.fill_raw(&mut buf);
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "steady-state fill_raw allocated {} times for {} bytes",
        after - before,
        buf.len()
    );
    // The buffer actually got entropy (all-zero is p ~ 2^-2048).
    assert!(buf.iter().any(|&b| b != 0));
}

#[test]
fn steady_state_fill_postprocessed_does_not_allocate() {
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 0xA110D).expect("build");
    let mut buf = [0u8; 64];
    for _ in 0..8 {
        trng.fill_postprocessed(&mut buf);
    }

    let before = allocation_count();
    trng.fill_postprocessed(&mut buf);
    assert_eq!(allocation_count() - before, 0);
}
