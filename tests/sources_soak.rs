//! Heterogeneous-source soak tests.
//!
//! The trace-replay round trip is the headline: record a carry-chain
//! capture, feed it back through the *full* pool stack (AIS-31
//! admission, SP 800-90B continuous gates, XOR conditioning, incident
//! journal) and demand the replay be indistinguishable from the live
//! run — byte-identical conditioned output, identical journal,
//! identical progress accounting. That equivalence is what makes a
//! recorded trace admissible evidence for an after-the-fact entropy
//! audit: whatever the gates saw live, they see again.
//!
//! The mixed-pool soak then drives all four backends through the
//! quarantine/readmit lifecycle in one pool.

use std::sync::Arc;
use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_pool::{
    Conditioning, EntropyPool, FaultInjection, IncidentKind, PoolConfig, RecordedTrace, ShardFault,
    ShardState, SourceKind, SourceSpec,
};
use trng_sources::mix_seed;

/// One-shard deterministic pool over the paper's k=1 design.
fn one_shard(seed: u64) -> PoolConfig {
    PoolConfig::new(TrngConfig::paper_k1(), 1)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(seed)
        .deterministic(true)
}

/// Records exactly the raw stream shard 0 of a pool seeded with
/// `pool_seed` consumes: same disjoint placement, same seed lane.
fn record_shard0(pool_seed: u64, nbytes: usize) -> Arc<RecordedTrace> {
    let config = TrngConfig::paper_k1()
        .for_shard(0)
        .expect("shard placement");
    Arc::new(RecordedTrace::record(&config, mix_seed(pool_seed, 0), nbytes).expect("capture"))
}

/// Replays the delivered bytes through a fresh continuous-test gate
/// (the zero-unhealthy-bytes guarantee, as in `pool_soak`).
fn assert_stream_health_clean(bytes: &[u8]) {
    let mut gate = OnlineHealth::new(0.5);
    let mut ones = 0u64;
    for &byte in bytes {
        for bit in (0..8).rev().map(|i| byte >> i & 1 == 1) {
            ones += u64::from(bit);
            assert_eq!(
                gate.push(bit),
                HealthStatus::Ok,
                "delivered stream alarmed the continuous tests"
            );
        }
    }
    let frac = ones as f64 / (bytes.len() as f64 * 8.0);
    assert!(
        (frac - 0.5).abs() < 0.015,
        "delivered stream is biased: ones fraction {frac}"
    );
}

#[test]
fn trace_replay_round_trips_the_live_run_byte_for_byte() {
    const SEED: u64 = 0x7AC3;
    const OUT: usize = 2048;
    // Raw budget: one 2048-bit startup plus OUT bytes at XOR rate 7,
    // with slack so the trace never wraps.
    const RAW: usize = 2048 / 8 * 7 + OUT * 7 + 256;

    // Live run: the carry-chain backend straight through the pool.
    let mut live = EntropyPool::new(one_shard(SEED)).expect("pool");
    assert_eq!(
        live.wait_online(Duration::from_secs(60))
            .expect("admission"),
        1
    );
    let mut live_out = vec![0u8; OUT];
    live.fill_bytes(&mut live_out).expect("fill");
    let live_stats = live.stats();

    // Replay run: a recording of the very same raw stream, behind the
    // trace backend, through the same admission/gating/conditioning.
    let trace = record_shard0(SEED, RAW);
    let config = one_shard(SEED).with_sources(vec![SourceSpec::TraceReplay(trace)]);
    let mut replay = EntropyPool::new(config).expect("pool");
    assert_eq!(
        replay
            .wait_online(Duration::from_secs(60))
            .expect("admission"),
        1,
        "the recorded stream must re-pass the AIS-31 startup test"
    );
    let mut replay_out = vec![0u8; OUT];
    replay.fill_bytes(&mut replay_out).expect("fill");
    let replay_stats = replay.stats();

    // Conditioned output is byte-identical...
    assert_eq!(live_out, replay_out, "conditioned replay diverged");
    // ...the incident journal is identical (same spawns, no spurious
    // alarms, same simulated-clock stamps)...
    assert_eq!(live_stats.journal, replay_stats.journal);
    assert_eq!(live_stats.journal_recorded, replay_stats.journal_recorded);
    // ...and the progress accounting matches at every published field.
    let (l, r) = (&live_stats.shards[0], &replay_stats.shards[0]);
    assert_eq!(l.source, SourceKind::CarryChain);
    assert_eq!(r.source, SourceKind::TraceReplay);
    assert_eq!(l.claimed_min_entropy, r.claimed_min_entropy);
    assert_eq!(l.bytes_produced, r.bytes_produced);
    assert_eq!(l.raw_bits, r.raw_bits);
    assert_eq!(l.sim_elapsed, r.sim_elapsed);
    assert_eq!(l.startup_runs, r.startup_runs);
    assert_eq!((l.alarms, r.alarms), (0, 0));
    assert_eq!(l.state, ShardState::Online);
    assert_eq!(r.state, ShardState::Online);
}

#[test]
fn trace_replay_reproduces_a_live_incident_stamp_for_stamp() {
    const SEED: u64 = 0x51C6;
    const FAULT_AT: u64 = 1024;
    const OUT: usize = 4096;
    // Two startups plus the full output volume; sized so even the
    // post-readmit pass never wraps.
    const RAW: usize = 24 * 1024;

    let stuck = || FaultInjection {
        shard: 0,
        after_bytes: FAULT_AT,
        fault: ShardFault::Stuck,
        transient: true,
    };

    let mut live = EntropyPool::new(one_shard(SEED).with_fault(stuck())).expect("pool");
    let mut live_out = vec![0u8; OUT];
    live.fill_bytes(&mut live_out).expect("fill");
    let live_stats = live.stats();

    let trace = record_shard0(SEED, RAW);
    let config = one_shard(SEED)
        .with_sources(vec![SourceSpec::TraceReplay(trace)])
        .with_fault(stuck());
    let mut replay = EntropyPool::new(config).expect("pool");
    let mut replay_out = vec![0u8; OUT];
    replay.fill_bytes(&mut replay_out).expect("fill");
    let replay_stats = replay.stats();

    // Identical incident lifecycle on both sides.
    let kinds: Vec<IncidentKind> = live_stats.journal.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        [
            IncidentKind::Spawn,
            IncidentKind::Alarm,
            IncidentKind::Quarantine,
            IncidentKind::Readmit,
        ]
    );
    let replay_kinds: Vec<IncidentKind> = replay_stats.journal.iter().map(|e| e.kind).collect();
    assert_eq!(kinds, replay_kinds);
    // Up to and including the quarantine, the events carry identical
    // stamps: the frozen source freezes both clocks at the same
    // whole-byte boundary, so the replay's checkpoint flooring is
    // exact. (The readmission stamp legitimately differs: the live
    // carry chain rebuilds onto a fresh seed lane while the trace
    // rewinds to its head.)
    assert_eq!(live_stats.journal[..3], replay_stats.journal[..3]);

    // Everything delivered before the incident is byte-identical, and
    // both streams stay health-clean end to end.
    assert_eq!(
        live_out[..FAULT_AT as usize],
        replay_out[..FAULT_AT as usize]
    );
    assert_stream_health_clean(&live_out);
    assert_stream_health_clean(&replay_out);
    for stats in [&live_stats, &replay_stats] {
        let s = &stats.shards[0];
        assert_eq!(s.alarms, 1);
        assert_eq!(s.readmissions, 1);
        assert_eq!(s.startup_runs, 2);
        assert_eq!(s.state, ShardState::Online);
    }
}

#[test]
fn mixed_pool_soaks_through_quarantine_on_every_backend() {
    const SEED: u64 = 0x4B1D;
    const OUT: usize = 16 * 1024;

    let trace =
        Arc::new(RecordedTrace::record(&TrngConfig::paper_k1(), 77, 48 * 1024).expect("capture"));
    let mut config = PoolConfig::new(TrngConfig::paper_k1(), 4)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(SEED)
        .deterministic(true)
        .with_sources(vec![
            SourceSpec::CarryChain,
            SourceSpec::DualOscillator(Box::new(trng_pool::DualOscConfig::betrusted_default())),
            SourceSpec::TraceReplay(trace),
            SourceSpec::OsEntropy,
        ]);
    // Every backend takes a transient Stuck hit at a different point
    // in its stream; every backend must quarantine and re-admit.
    for (shard, after_bytes) in [(0usize, 512u64), (1, 640), (2, 768), (3, 896)] {
        config = config.with_fault(FaultInjection {
            shard,
            after_bytes,
            fault: ShardFault::Stuck,
            transient: true,
        });
    }
    let mut pool = EntropyPool::new(config).expect("pool");
    assert_eq!(
        pool.wait_online(Duration::from_secs(120))
            .expect("admission"),
        4,
        "all four backends must pass AIS-31 admission"
    );
    let mut delivered = vec![0u8; OUT];
    pool.fill_bytes(&mut delivered).expect("fill");

    let stats = pool.stats();
    let kinds: Vec<SourceKind> = stats.shards.iter().map(|s| s.source).collect();
    assert_eq!(
        kinds,
        [
            SourceKind::CarryChain,
            SourceKind::DualOscillator,
            SourceKind::TraceReplay,
            SourceKind::OsEntropy,
        ]
    );
    for s in &stats.shards {
        assert_eq!(s.alarms, 1, "{} shard missed its injected alarm", s.source);
        assert_eq!(s.readmissions, 1, "{} shard was not re-admitted", s.source);
        assert_eq!(s.startup_runs, 2, "{} shard startup count", s.source);
        assert_eq!(s.state, ShardState::Online, "{} shard state", s.source);
        assert!(
            s.bytes_produced > 0,
            "{} shard contributed nothing",
            s.source
        );
    }
    assert_eq!(stats.total_alarms(), 4);
    assert_stream_health_clean(&delivered);

    // The interleaved mixed stream also clears the AIS-31 battery.
    use trng_stattests::ais31::run_ais31;
    use trng_stattests::bits::BitVec;
    let bits: BitVec = delivered
        .iter()
        .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
        .collect();
    let ais = run_ais31(&bits);
    assert!(ais.all_passed(), "{ais}");
}
