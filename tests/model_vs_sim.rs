//! E6 — model-versus-simulation agreement (Figure 6 / Section 4.2).
//!
//! The stochastic model predicts the binary probability P1 of the
//! extracted bit (equation (3)) as a function of the offset τ between
//! the mean edge position and the sampling-bin grid, and the
//! accumulated jitter σ_acc (equation (1)). These tests drive the
//! *simulated* TRNG — fresh oscillator per trial, ideal TDC so the
//! simulation matches the model's assumptions exactly — and check that
//! the empirical statistics obey the model:
//!
//! 1. the empirical bias oscillates in τ with the bin period;
//! 2. its worst-case amplitude matches `worst_case_bias(σ_acc, t)`;
//! 3. the empirical Shannon entropy respects the model's lower bound.

use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_model::binary_prob::worst_case_bias;
use trng_model::entropy::{entropy_lower_bound, h_shannon};
use trng_model::jitter::sigma_acc;
use trng_model::params::{DesignParams, PlatformParams};

/// Empirical P(bit = 1) over `trials` fresh single-shot TRNGs with
/// accumulation time `t_a_ps`.
fn empirical_p1(t_a_ps: f64, trials: u64, seed0: u64) -> f64 {
    // Encode tA through the clock frequency so the design validator
    // stays happy: tA = 1/f_clk with N_A = 1.
    let f_clk_hz = (1e12 / t_a_ps).round() as u64;
    let design = DesignParams {
        f_clk_hz,
        n_a: 1,
        np: 1,
        ..DesignParams::paper_k1()
    };
    let config = TrngConfig::ideal().with_design(design);
    let mut ones = 0u64;
    for t in 0..trials {
        let mut trng = CarryChainTrng::new(config.clone(), seed0 + t).expect("valid config");
        if trng.next_raw_bit() {
            ones += 1;
        }
    }
    ones as f64 / trials as f64
}

/// Sweeps τ across one bin-parity period (2·tstep) around a base tA
/// and returns the empirical biases.
fn bias_sweep(base_ta_ps: f64, steps: usize, trials: u64, seed0: u64) -> Vec<f64> {
    let tstep = PlatformParams::spartan6().tstep_ps;
    (0..steps)
        .map(|i| {
            let delta = 2.0 * tstep * i as f64 / steps as f64;
            let p = empirical_p1(base_ta_ps + delta, trials, seed0 + 10_000 * i as u64);
            p - 0.5
        })
        .collect()
}

#[test]
fn bias_amplitude_matches_model_at_moderate_jitter() {
    // tA = 4 ns: sigma_acc = 2.6*sqrt(4000/480) = 7.5 ps = 0.44 tstep.
    let platform = PlatformParams::spartan6();
    let t_a = 4_000.0;
    let sigma = sigma_acc(platform.sigma_lut_ps, t_a, platform.d0_lut_ps);
    let model_bias = worst_case_bias(sigma, platform.tstep_ps);
    let biases = bias_sweep(t_a, 10, 1_500, 1);
    let max_emp = biases.iter().map(|b| b.abs()).fold(0.0, f64::max);
    // The sweep grid may straddle the exact worst-case offset; accept
    // the model value within a generous band that still distinguishes
    // it from both 0 and 0.5 (se per point ~ 0.013).
    assert!(
        max_emp > 0.55 * model_bias && max_emp < 1.35 * model_bias + 0.04,
        "empirical max bias {max_emp:.3} vs model worst case {model_bias:.3}"
    );
}

#[test]
fn bias_vanishes_at_large_jitter() {
    // tA = 40 ns: sigma_acc = 23.7 ps = 1.4 tstep -> bias ~ 1e-4.
    let biases = bias_sweep(40_000.0, 6, 1_500, 50);
    let max_emp = biases.iter().map(|b| b.abs()).fold(0.0, f64::max);
    // Statistical noise floor for 1500 trials is ~0.013 (1 sigma).
    assert!(max_emp < 0.05, "max bias {max_emp}");
}

#[test]
fn bias_oscillates_with_bin_parity() {
    // At small jitter the bias must change sign across half the
    // parity period (adjacent bins decode as opposite bits).
    // tA = 1.5 ns: sigma_acc = 4.6 ps = 0.27 tstep -> strong bias.
    let biases = bias_sweep(1_500.0, 8, 1_200, 99);
    let max = biases.iter().copied().fold(f64::MIN, f64::max);
    let min = biases.iter().copied().fold(f64::MAX, f64::min);
    assert!(
        max > 0.10 && min < -0.10,
        "expected sign-alternating bias, got {biases:?}"
    );
}

#[test]
fn empirical_entropy_respects_model_lower_bound() {
    // At every sweep point the observed per-bit entropy must be at or
    // above the model's worst-case bound (it is a lower bound over τ).
    let platform = PlatformParams::spartan6();
    for t_a in [4_000.0, 10_000.0] {
        let sigma = sigma_acc(platform.sigma_lut_ps, t_a, platform.d0_lut_ps);
        let bound = entropy_lower_bound(sigma, platform.tstep_ps);
        let biases = bias_sweep(t_a, 6, 1_500, 777);
        for (i, b) in biases.iter().enumerate() {
            let h = h_shannon((0.5 + b).clamp(0.0, 1.0));
            // 3-sigma allowance for the finite-sample estimate.
            assert!(
                h > bound - 0.08,
                "tA = {t_a}: point {i} has H = {h:.3} below bound {bound:.3}"
            );
        }
    }
}

#[test]
fn sigma_accumulation_follows_sqrt_law_in_simulation() {
    // Doubling tA by 4 should double the width of the bias-vs-tau
    // envelope's *decay*: verify via the model-vs-empirical agreement
    // at two accumulation times (integrated check of equation (1)).
    let platform = PlatformParams::spartan6();
    let env = |t_a: f64, seed: u64| -> f64 {
        bias_sweep(t_a, 8, 1_200, seed)
            .iter()
            .map(|b| b.abs())
            .fold(0.0, f64::max)
    };
    let short = env(2_000.0, 31); // sigma = 5.3 ps -> large bias
    let long = env(18_000.0, 41); // sigma = 15.9 ps -> small bias
    let model_short = worst_case_bias(
        sigma_acc(platform.sigma_lut_ps, 2_000.0, platform.d0_lut_ps),
        platform.tstep_ps,
    );
    let model_long = worst_case_bias(
        sigma_acc(platform.sigma_lut_ps, 18_000.0, platform.d0_lut_ps),
        platform.tstep_ps,
    );
    assert!(
        short > long + 0.1,
        "bias must shrink with accumulation: {short:.3} vs {long:.3}"
    );
    assert!(
        (short - model_short).abs() < 0.15 && (long - model_long).abs() < 0.1,
        "empirical ({short:.3}, {long:.3}) vs model ({model_short:.3}, {model_long:.3})"
    );
}
