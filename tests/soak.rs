//! Long-run soak tests — ignored by default; run with
//! `cargo test --release -- --ignored` when you want the heavy
//! validation pass.

use trng_core::postprocess::XorCompressor;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_stattests::ais31::run_ais31;
use trng_stattests::bits::BitVec;
use trng_stattests::diehard::run_diehard;
use trng_stattests::nist::run_battery;

#[test]
#[ignore = "multi-minute soak run; execute with --ignored"]
fn two_million_raw_bits_stay_healthy() {
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 0xF00D).expect("build");
    let raw = trng.generate_raw(2_000_000);
    assert_eq!(trng.stats().missed_edges, 0);
    // Post-process with the paper's np = 7 and run everything.
    let pp: BitVec = XorCompressor::compress(7, &raw).into_iter().collect();
    assert!(pp.len() > 280_000);

    let battery = run_battery(&pp);
    assert!(
        battery.failures().len() <= 1,
        "NIST failures: {:?}\n{battery}",
        battery.failures()
    );

    let ais = run_ais31(&pp);
    assert!(ais.all_passed(), "{ais}");

    // Every DIEHARD test applicable at this length must pass.
    for outcome in run_diehard(&pp).into_iter().flatten() {
        assert!(
            outcome.p_value > 1e-4,
            "{}: p = {}",
            outcome.name,
            outcome.p_value
        );
    }
}

#[test]
#[ignore = "multi-minute soak run; execute with --ignored"]
fn continuous_operation_does_not_drift_statistically() {
    // Compare the first and last quarter of a long run: the simulated
    // device must not wander statistically (flicker is stationary,
    // thermal drift off by default).
    let mut trng = CarryChainTrng::new(TrngConfig::paper_k1(), 0xBEEF).expect("build");
    let raw = trng.generate_raw(1_000_000);
    let quarter = raw.len() / 4;
    let ones_first = raw[..quarter].iter().filter(|&&b| b).count() as f64 / quarter as f64;
    let ones_last = raw[3 * quarter..].iter().filter(|&&b| b).count() as f64 / quarter as f64;
    // Allow a generous band; a trend beyond it means non-stationarity.
    assert!(
        (ones_first - ones_last).abs() < 0.02,
        "first {ones_first} vs last {ones_last}"
    );
}
