//! Extractor strength where XOR compression has nothing to say: the
//! carry-chain's *raw* stream (structural bias ~0.1 from CARRY4 DNL
//! parity imbalance) flunks AIS-31 outright, yet after seeded Toeplitz
//! extraction at the leftover-hash-sized ratio — computed from the
//! same eq. (7)-derived min-entropy claim the pool shards advertise —
//! the stream clears the full NIST SP 800-22 battery and every
//! applicable AIS-31 procedure.

use trng_core::selftest::claimed_min_entropy;
use trng_core::trng::{CarryChainTrng, TrngConfig};
use trng_extract::{leftover_hash_ratio, ToeplitzExtractor};
use trng_fpga_sim::noise::NoiseBackend;
use trng_stattests::ais31::run_ais31;
use trng_stattests::bits::BitVec;
use trng_stattests::nist::run_battery;

/// The paper configuration on the batched noise backend (statistically
/// equivalent to scalar, an order of magnitude faster — this test
/// consumes millions of raw bits).
fn config() -> TrngConfig {
    TrngConfig::paper_k1().with_noise_backend(NoiseBackend::Batched)
}

fn raw_bits(seed: u64, n: usize) -> Vec<bool> {
    let mut trng = CarryChainTrng::new(config(), seed).expect("build");
    let bits = trng.generate_raw(n);
    assert_eq!(trng.stats().missed_edges, 0);
    bits
}

#[test]
fn biased_raw_stream_flunks_ais31() {
    let raw: BitVec = raw_bits(0x70E9, 64 * 1024).into_iter().collect();
    let ais = run_ais31(&raw);
    assert!(
        !ais.all_passed(),
        "a ~0.1-biased raw stream must fail AIS-31\n{ais}"
    );
}

#[test]
fn toeplitz_extracted_raw_clears_nist_and_ais31() {
    const OUT_BITS: usize = 64 * 1024 * 8;
    // Size the ratio from the source's own eq. (7)-derived claim, the
    // figure the pool's health gate polices at runtime.
    let claim = claimed_min_entropy(&config()).expect("valid config");
    let ratio = leftover_hash_ratio(claim, 32, 64) as usize;
    assert!(
        ratio <= 7,
        "ratio {ratio} must not exceed the design's np = 7 — the \
         extractor beats eq. (7)'s rate while adding the uniformity \
         guarantee"
    );

    let raw = raw_bits(0x70E9, OUT_BITS * ratio);
    let mut ex = ToeplitzExtractor::from_seed(64, 64 * ratio, 0x5EED_70E9);
    let mut pp = BitVec::new();
    for &bit in &raw {
        if let Some(word) = ex.push(bit) {
            for i in 0..64 {
                pp.push(word >> i & 1 == 1);
            }
        }
    }
    assert_eq!(pp.len(), OUT_BITS);

    let battery = run_battery(&pp);
    assert!(
        battery.applicable() >= 8,
        "too few applicable tests\n{battery}"
    );
    assert!(
        battery.failures().len() <= 1,
        "NIST failures: {:?}\n{battery}",
        battery.failures()
    );
    let ais = run_ais31(&pp);
    assert!(ais.all_passed(), "{ais}");
}
