//! End-to-end tests for the entropy daemon, all on loopback with
//! ephemeral ports (parallel-safe, no fixed resources).
//!
//! The centerpiece is the byte-identity test: concurrent clients of a
//! server over a *deterministic* pool must between them receive
//! exactly the pool's replayable byte stream, partitioned into
//! contiguous per-request slices — the network layer may reorder whole
//! requests but can never tear, duplicate, or drop bytes inside one.

use std::time::{Duration, Instant};

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_model::params::{DesignParams, PlatformParams};
use trng_pool::{
    ComposedExtract, Conditioning, EntropyPool, FaultInjection, PoolConfig, PoolHandle,
    RespawnPolicy, ShardFault, ShardState,
};
use trng_serve::{client, Client, FetchError, QuotaConfig, ServeConfig, Server};

/// Drift-frozen, injection-locked configuration; a running shard
/// swapped onto it reliably trips the continuous tests.
fn dead_config() -> TrngConfig {
    let mut config = TrngConfig::ideal();
    config.platform = PlatformParams::new(480.0, 17.0, 0.05).expect("valid");
    config.design = DesignParams {
        k: 4,
        n_a: 1,
        np: 1,
        f_clk_hz: (1e12f64 / (21.0 * 480.0)).round() as u64,
        ..DesignParams::paper_k4()
    };
    config
}

fn online_handle(config: PoolConfig) -> PoolHandle {
    let handle = EntropyPool::new(config).expect("pool").into_shared();
    handle
        .wait_online(Duration::from_secs(120))
        .expect("admission");
    handle
}

/// In-process replay of a deterministic pool config: the reference
/// byte stream the served bytes must match.
fn replay(config: PoolConfig, n: usize) -> Vec<u8> {
    let mut pool = EntropyPool::new(config).expect("replay pool");
    let mut bytes = vec![0u8; n];
    pool.fill_bytes(&mut bytes).expect("replay fill");
    bytes
}

fn assert_stream_health_clean(bytes: &[u8]) {
    let mut gate = OnlineHealth::new(0.5);
    for &byte in bytes {
        for bit in (0..8).rev().map(|i| byte >> i & 1 == 1) {
            assert_eq!(
                gate.push(bit),
                HealthStatus::Ok,
                "delivered stream alarmed the continuous tests"
            );
        }
    }
}

/// Acceptance centerpiece: N concurrent clients each fetch 64 KiB
/// from a deterministic pool; every client's bytes are a contiguous
/// slice of the in-process replay, and the slices tile it exactly.
#[test]
fn concurrent_clients_tile_the_deterministic_replay_stream() {
    const CLIENTS: usize = 3;
    const FETCH: usize = 64 * 1024;
    let config = || {
        PoolConfig::new(TrngConfig::paper_k1(), 2)
            .with_conditioning(Conditioning::Raw)
            .with_seed(0x7E57)
            .deterministic(true)
    };
    let server = Server::start(online_handle(config()), ServeConfig::default()).expect("server");
    let addr = server.local_addr();

    let fetchers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || client::fetch(addr, FETCH as u32).expect("client fetch"))
        })
        .collect();
    let buffers: Vec<Vec<u8>> = fetchers
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    let reference = replay(config(), CLIENTS * FETCH);
    // Each fill holds the pool lock end to end, so each client's
    // buffer is one contiguous replay slice; which slice depends only
    // on scheduling order. Locate each and demand a perfect tiling.
    let mut offsets: Vec<usize> = buffers
        .iter()
        .map(|buf| {
            reference
                .windows(FETCH)
                .position(|w| w == buf.as_slice())
                .expect("client bytes are not a contiguous slice of the replay stream")
        })
        .collect();
    offsets.sort_unstable();
    assert_eq!(
        offsets,
        (0..CLIENTS).map(|i| i * FETCH).collect::<Vec<_>>(),
        "client fetches must tile the replay stream exactly"
    );

    let report = server.shutdown();
    assert_eq!(report.bytes_served, (CLIENTS * FETCH) as u64);
    assert_eq!(report.requests_ok, CLIENTS as u64);
    assert!(
        !report.hit_deadline,
        "nothing in flight, drain must be instant"
    );
    assert_eq!(report.workers_joined, ServeConfig::default().workers);
}

/// Quota is per-connection: the second over-budget request on one
/// connection is throttled (typed as a wait, not an error), while a
/// fresh connection's burst is untouched.
#[test]
fn quota_throttles_within_a_connection_but_not_across_connections() {
    let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0x0A11)
        .deterministic(true);
    let server = Server::start(
        online_handle(config),
        ServeConfig::default().with_quota(QuotaConfig::new(8192.0, 2048)),
    )
    .expect("server");

    // An over-burst *first* request makes the deficit exact — the
    // bucket is still full at admission, so the wait is
    // (6144 - 2048) / 8192 = 0.5 s regardless of pool or test pacing.
    let mut first = Client::connect(server.local_addr()).expect("connect");
    let t0 = Instant::now();
    assert_eq!(first.fetch(6144).expect("throttled fetch").len(), 6144);
    assert!(
        t0.elapsed() >= Duration::from_millis(450),
        "over-burst fetch returned in {:?} — quota deficit was not enforced",
        t0.elapsed()
    );

    // A fresh connection gets a fresh bucket: within burst, no new
    // throttle event.
    assert_eq!(
        client::fetch(server.local_addr(), 2048)
            .expect("fresh burst")
            .len(),
        2048
    );
    let stats = server.stats();
    assert_eq!(
        stats.throttle_events, 1,
        "only the over-burst request throttles"
    );
    assert_eq!(stats.throttled, Duration::from_millis(500));
    assert_eq!(stats.requests_ok, 2);
    drop(server);
}

/// Graceful drain: a request in flight when shutdown begins is served
/// to completion, counted as drained, and the listener is gone
/// afterwards.
#[test]
fn drain_completes_in_flight_requests_then_refuses_connections() {
    const FETCH: u32 = 128 * 1024; // well past the rings' ~16 KiB prefill
    let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0xD12A);
    let server = Server::start(
        online_handle(config),
        ServeConfig::default().with_drain_deadline(Duration::from_secs(30)),
    )
    .expect("server");
    let addr = server.local_addr();

    let fetcher =
        std::thread::spawn(move || client::fetch(addr, FETCH).expect("in-flight fetch survives"));
    // Let the request reach the pool, then drain under it.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.shutdown();

    let bytes = fetcher.join().expect("client thread");
    assert_eq!(bytes.len(), FETCH as usize);
    assert_eq!(
        report.drained_requests, 1,
        "the in-flight request must be accounted as drained"
    );
    assert!(!report.hit_deadline);
    assert_eq!(report.workers_joined, ServeConfig::default().workers);

    // The acceptor is gone; a new client cannot complete a fetch.
    let refused = match Client::connect_with_timeout(addr, Duration::from_millis(500)) {
        Err(_) => true,
        Ok(mut late) => late.fetch(16).is_err(),
    };
    assert!(refused, "server still serving after shutdown");
}

/// Fault-injection soak over the wire: a scripted mid-stream transient
/// fault quarantines one shard, the client still receives exactly the
/// healthy replay bytes, and the stats record exactly the one alarm.
#[test]
fn transient_fault_soak_delivers_only_healthy_replay_bytes() {
    const TOTAL: usize = 16 * 1024;
    const CHUNK: u32 = 4 * 1024;
    let config = || {
        PoolConfig::new(TrngConfig::paper_k1(), 3)
            .with_conditioning(Conditioning::DesignXor)
            .with_seed(0x50AC)
            .with_fault(FaultInjection {
                shard: 1,
                after_bytes: 2048,
                fault: ShardFault::Config(Box::new(dead_config())),
                transient: true,
            })
            .deterministic(true)
    };
    let server = Server::start(online_handle(config()), ServeConfig::default()).expect("server");

    let mut conn = Client::connect(server.local_addr()).expect("connect");
    let mut delivered = Vec::with_capacity(TOTAL);
    while delivered.len() < TOTAL {
        delivered.extend_from_slice(&conn.fetch(CHUNK).expect("fetch across the fault"));
    }

    // Byte-for-byte the healthy replay stream: the quarantined
    // stretch never reaches the wire.
    assert_eq!(delivered, replay(config(), TOTAL));
    assert_stream_health_clean(&delivered);

    // Exactly the injected incident, visible through the server.
    let stats = server.pool_stats();
    assert_eq!(stats.total_alarms(), 1);
    assert_eq!(stats.shards[1].alarms, 1);
    assert_eq!(stats.shards[1].readmissions, 1);
    assert_eq!(stats.shards[1].state, ShardState::Online);
    assert_eq!(stats.bytes_delivered, TOTAL as u64);

    let report = server.shutdown();
    assert_eq!(report.bytes_served, TOTAL as u64);
}

/// A persistent fault retires the only shard: the client receives a
/// typed exhaustion frame carrying the healthy prefix (matching the
/// in-process replay), and the server itself stays up and reports
/// `exhausted` on its metrics endpoint.
#[test]
fn exhaustion_is_a_typed_frame_and_the_server_survives() {
    let config = || {
        PoolConfig::new(TrngConfig::paper_k1(), 1)
            .with_conditioning(Conditioning::DesignXor)
            .with_seed(0xD1E)
            .with_fault(FaultInjection {
                shard: 0,
                after_bytes: 1024,
                fault: ShardFault::Config(Box::new(dead_config())),
                transient: false,
            })
            .deterministic(true)
    };
    let server = Server::start(online_handle(config()), ServeConfig::default()).expect("server");

    let partial = match client::fetch(server.local_addr(), 1 << 20) {
        Err(FetchError::Exhausted { partial }) => partial,
        other => panic!("expected a typed exhaustion error, got {other:?}"),
    };
    assert!(
        partial.len() >= 1024,
        "healthy prefix was {}",
        partial.len()
    );
    assert_stream_health_clean(&partial);

    // The prefix matches what the same pool delivers in process.
    let mut reference = EntropyPool::new(config()).expect("replay pool");
    let mut sink = vec![0u8; 1 << 20];
    let filled = match reference.fill_bytes(&mut sink) {
        Err(trng_pool::PoolError::SourcesExhausted { filled }) => filled,
        other => panic!("replay must exhaust too, got {other:?}"),
    };
    assert_eq!(partial, sink[..filled]);

    // The daemon outlives its sources: further requests get an empty
    // typed frame, and the metrics endpoint says so.
    match client::fetch(server.local_addr(), 1024) {
        Err(FetchError::Exhausted { partial }) => assert!(partial.is_empty()),
        other => panic!("expected exhaustion on a dry pool, got {other:?}"),
    }
    let metrics =
        client::scrape_metrics(server.metrics_addr().expect("metrics on")).expect("scrape");
    assert_eq!(metrics.lines().next(), Some("exhausted"));
    assert_eq!(server.stats().requests_exhausted, 2);
    assert_eq!(server.pool_stats().shards[0].state, ShardState::Retired);
    drop(server);
}

/// An oversize request is refused with a typed cap frame and the
/// connection remains usable.
#[test]
fn oversize_request_returns_the_cap_and_keeps_the_connection() {
    let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0xB16)
        .deterministic(true);
    let server = Server::start(
        online_handle(config),
        ServeConfig::default().with_max_request(4096),
    )
    .expect("server");

    let mut conn = Client::connect(server.local_addr()).expect("connect");
    match conn.fetch(8192) {
        Err(FetchError::TooLarge { cap }) => assert_eq!(cap, 4096),
        other => panic!("expected a typed too-large error, got {other:?}"),
    }
    assert_eq!(conn.fetch(1024).expect("connection survives").len(), 1024);
    assert_eq!(server.stats().requests_rejected, 1);
    drop(server);
}

/// A pool deadline shorter than the request maps to a typed timeout
/// frame carrying the partial healthy prefix.
#[test]
fn pool_deadline_maps_to_a_typed_timeout_frame() {
    const FETCH: u32 = 1 << 20; // far beyond what 80 ms can deliver
    let config = PoolConfig::new(TrngConfig::paper_k1(), 1)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0x71E0);
    let server = Server::start(
        online_handle(config),
        ServeConfig::default().with_request_timeout(Duration::from_millis(80)),
    )
    .expect("server");

    match client::fetch(server.local_addr(), FETCH) {
        Err(FetchError::Timeout { partial }) => {
            assert!(
                partial.len() < FETCH as usize,
                "a timeout must mean a shortfall"
            );
        }
        other => panic!("expected a typed timeout error, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.requests_timeout, 1);
    assert_eq!(stats.requests_ok, 0);
    drop(server);
}

/// Self-healing over the wire: a persistent mid-stream fault retires
/// one shard while a respawn budget stands by. The metrics endpoint
/// must walk `healthy → degraded → recovering → healthy` — the
/// respawn backoff keeps `degraded` scrapeable before the supervisor
/// spawns, and the replacement's settle time keeps `recovering`
/// scrapeable before its admission gate runs — and the incident
/// journal must be visible in the metrics JSON afterwards.
#[test]
fn metrics_walk_degraded_recovering_healthy_across_a_respawn() {
    let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0x4EA1)
        .with_max_readmissions(0)
        .with_fault(FaultInjection {
            shard: 0,
            // Far past the ring prefill: the shard only dies once
            // clients have drained real traffic through it.
            after_bytes: 24 * 1024,
            fault: ShardFault::Config(Box::new(dead_config())),
            transient: false,
        })
        // Both windows must outlast one driver iteration (one small
        // fetch plus one scrape), or a scrape can never land inside
        // them.
        .with_respawn(
            RespawnPolicy::new(2, 1)
                .with_backoff(Duration::from_millis(1500))
                .with_settle(Duration::from_secs(3)),
        );
    let server = Server::start(online_handle(config), ServeConfig::default()).expect("server");
    let metrics = server.metrics_addr().expect("metrics on");

    // Drive the pool with small fetches (supervision piggybacks on
    // consumer calls) and record every distinct status the metrics
    // endpoint reports along the way.
    let mut conn = Client::connect(server.local_addr()).expect("connect");
    let mut seen: Vec<String> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let body = client::scrape_metrics(metrics).expect("scrape");
        let status = body.lines().next().expect("status line").to_string();
        if seen.last() != Some(&status) {
            seen.push(status.clone());
        }
        if status == "healthy" && seen.iter().any(|s| s == "recovering") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool never healed; observed statuses {seen:?}"
        );
        conn.fetch(1024).expect("fetch while healing");
    }
    assert_eq!(
        seen,
        ["healthy", "degraded", "recovering", "healthy"],
        "metrics status must walk the respawn state machine"
    );

    // The incident journal rides the same endpoint: the whole story,
    // spawn through respawn, is scrapeable as JSON.
    let body = client::scrape_metrics(metrics).expect("scrape");
    for needle in [
        "\"journal\"",
        "\"kind\": \"respawn\"",
        "\"kind\": \"retire\"",
        "\"respawns\": 1",
        "\"journal_recorded\"",
    ] {
        assert!(
            body.contains(needle),
            "metrics JSON lacks {needle}:\n{body}"
        );
    }
    let stats = server.pool_stats();
    assert_eq!(stats.respawns, 1);
    assert_eq!(stats.shards[0].state, ShardState::Retired);
    assert!(stats.shards[0].superseded);
    assert_eq!(stats.shards[2].state, ShardState::Online);
    drop(server);
}

/// The metrics endpoint renders a status line plus JSON naming both
/// pool and server counters, readable with the workspace JSON tools.
#[test]
fn metrics_endpoint_reports_status_and_counters() {
    let config = PoolConfig::new(TrngConfig::paper_k1(), 2)
        .with_conditioning(Conditioning::Raw)
        .with_seed(0x3E7)
        .deterministic(true);
    let server = Server::start(online_handle(config), ServeConfig::default()).expect("server");
    let n = 2048usize;
    client::fetch(server.local_addr(), n as u32).expect("fetch");

    let body = client::scrape_metrics(server.metrics_addr().expect("metrics on")).expect("scrape");
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("healthy"));
    let json: String = lines.collect::<Vec<_>>().join("\n");
    for needle in [
        "\"status\": \"healthy\"",
        "\"pool\"",
        "\"serve\"",
        &format!("\"bytes_delivered\": {n}"),
        &format!("\"bytes_served\": {n}"),
        "\"requests_ok\": 1",
        "\"online_shards\": 2",
    ] {
        assert!(
            json.contains(needle),
            "metrics JSON lacks {needle}:\n{json}"
        );
    }
    drop(server);
}

/// Per-source metrics are additive: a mixed-backend pool's scrape
/// keeps the exact plaintext format (bare status line, then JSON) and
/// every pre-existing counter key, and gains the per-source labels —
/// a `sources` aggregate keyed by backend plus `source` /
/// `claimed_min_entropy` on each shard entry.
#[test]
fn mixed_source_metrics_add_per_source_keys_without_breaking_the_format() {
    use std::sync::Arc;
    use trng_pool::{DualOscConfig, RecordedTrace, SourceSpec};

    let trace =
        Arc::new(RecordedTrace::record(&TrngConfig::paper_k1(), 5, 32 * 1024).expect("capture"));
    let config = PoolConfig::new(TrngConfig::paper_k1(), 4)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0x313)
        .deterministic(true)
        .with_sources(vec![
            SourceSpec::CarryChain,
            SourceSpec::DualOscillator(Box::new(DualOscConfig::betrusted_default())),
            SourceSpec::TraceReplay(trace),
            SourceSpec::OsEntropy,
        ]);
    let server = Server::start(online_handle(config), ServeConfig::default()).expect("server");
    let n = 4096usize;
    client::fetch(server.local_addr(), n as u32).expect("fetch");

    let body = client::scrape_metrics(server.metrics_addr().expect("metrics on")).expect("scrape");
    // Scrape format unchanged: a bare status line, then pretty JSON.
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("healthy"));
    let json: String = lines.collect::<Vec<_>>().join("\n");
    // Every key the old scrape carried is still present...
    for needle in [
        "\"status\": \"healthy\"",
        "\"pool\"",
        "\"serve\"",
        &format!("\"bytes_delivered\": {n}"),
        &format!("\"bytes_served\": {n}"),
        "\"requests_ok\": 1",
        "\"online_shards\": 4",
        "\"shards\"",
        "\"journal\"",
        "\"journal_recorded\"",
    ] {
        assert!(
            json.contains(needle),
            "metrics JSON lacks {needle}:\n{json}"
        );
    }
    // ...and the additive per-source keys are new alongside them.
    assert!(
        json.contains("\"sources\""),
        "no sources aggregate:\n{json}"
    );
    for backend in ["carry_chain", "dual_osc", "trace_replay", "os_entropy"] {
        assert!(
            json.contains(&format!("\"{backend}\"")),
            "sources aggregate lacks {backend}:\n{json}"
        );
        assert!(
            json.contains(&format!("\"source\": \"{backend}\"")),
            "no shard labelled {backend}:\n{json}"
        );
    }
    assert!(
        json.contains("\"claimed_min_entropy\""),
        "no per-source entropy claim:\n{json}"
    );
    drop(server);
}

/// The conditioning mode and the composed cross-shard extract stage
/// are observable end to end. A pool serving per-shard Toeplitz plus
/// a composed stage labels every shard `"conditioning": "toeplitz:N"`
/// and adds a `"composed"` object carrying the leftover-hash claim
/// next to the measured min-entropy; a default raw pool labels its
/// shards `"raw"` and has no composed object. Both keys are purely
/// additive — every counter the old scrape carried is still present
/// either way.
#[test]
fn metrics_report_conditioning_and_composed_extract() {
    let scrape = |toeplitz: bool, n: u32| {
        let mut config = PoolConfig::new(TrngConfig::paper_k1(), 2)
            .with_seed(0x70E9)
            .deterministic(true);
        if toeplitz {
            config = config
                .with_conditioning(Conditioning::Toeplitz {
                    ratio: 5,
                    seed: 0xE47,
                })
                .with_composed_extract(ComposedExtract::new(32, 0xE47));
        } else {
            config = config.with_conditioning(Conditioning::Raw);
        }
        let server = Server::start(online_handle(config), ServeConfig::default()).expect("server");
        client::fetch(server.local_addr(), n).expect("fetch");
        let body =
            client::scrape_metrics(server.metrics_addr().expect("metrics on")).expect("scrape");
        drop(server);
        body
    };

    for (toeplitz, label) in [(false, "raw"), (true, "toeplitz:5")] {
        let body = scrape(toeplitz, 2048);
        let mut lines = body.lines();
        assert_eq!(lines.next(), Some("healthy"));
        let json: String = lines.collect::<Vec<_>>().join("\n");
        // The conditioning label rides every shard entry...
        assert_eq!(
            json.matches(&format!("\"conditioning\": \"{label}\""))
                .count(),
            2,
            "both shards must report {label} conditioning:\n{json}"
        );
        // ...the composed object appears exactly when configured,
        // carrying the claim/measurement pair...
        if toeplitz {
            for needle in [
                "\"composed\"",
                "\"ratio\"",
                "\"epsilon_log2\": 32",
                "\"input_claim_min_entropy\"",
                "\"claimed_min_entropy\"",
                "\"measured_min_entropy\"",
                "\"bytes_extracted\"",
            ] {
                assert!(
                    json.contains(needle),
                    "composed metrics lack {needle}:\n{json}"
                );
            }
        } else {
            assert!(
                !json.contains("\"composed\""),
                "composed object on a plain pool:\n{json}"
            );
        }
        // ...and both are additive: the pre-existing scrape keys
        // survive untouched.
        for needle in [
            "\"status\": \"healthy\"",
            "\"pool\"",
            "\"serve\"",
            "\"shards\"",
            "\"online_shards\": 2",
            "\"bytes_delivered\": 2048",
            "\"bytes_served\": 2048",
            "\"requests_ok\": 1",
            "\"claimed_min_entropy\"",
            "\"journal_recorded\"",
        ] {
            assert!(
                json.contains(needle),
                "metrics JSON lacks {needle}:\n{json}"
            );
        }
    }
}

/// The noise-backend knob is observable end to end: a pool brought up
/// with [`PoolConfig::with_noise_backend`] labels every simulated-noise
/// shard `"batched"` on the metrics scrape, a default pool labels them
/// `"scalar"`, and the key is purely additive — every counter the old
/// scrape carried is still present either way.
#[test]
fn metrics_report_the_active_noise_backend_per_shard() {
    use trng_pool::NoiseBackend;

    let scrape = |backend: Option<NoiseBackend>| {
        let mut config = PoolConfig::new(TrngConfig::paper_k1(), 2)
            .with_conditioning(Conditioning::Raw)
            .with_seed(0xBA7C)
            .deterministic(true);
        if let Some(backend) = backend {
            config = config.with_noise_backend(backend);
        }
        let server = Server::start(online_handle(config), ServeConfig::default()).expect("server");
        client::fetch(server.local_addr(), 2048).expect("fetch");
        let body =
            client::scrape_metrics(server.metrics_addr().expect("metrics on")).expect("scrape");
        drop(server);
        body
    };

    for (requested, label) in [(None, "scalar"), (Some(NoiseBackend::Batched), "batched")] {
        let body = scrape(requested);
        let mut lines = body.lines();
        assert_eq!(lines.next(), Some("healthy"));
        let json: String = lines.collect::<Vec<_>>().join("\n");
        // The backend label rides every shard entry...
        assert_eq!(
            json.matches(&format!("\"noise_backend\": \"{label}\""))
                .count(),
            2,
            "both shards must report the {label} backend:\n{json}"
        );
        // ...and is additive: the pre-existing scrape keys survive.
        for needle in [
            "\"status\": \"healthy\"",
            "\"pool\"",
            "\"serve\"",
            "\"shards\"",
            "\"online_shards\": 2",
            "\"claimed_min_entropy\"",
            "\"journal_recorded\"",
        ] {
            assert!(
                json.contains(needle),
                "metrics JSON lacks {needle}:\n{json}"
            );
        }
    }
}
