//! Adversarial chaos matrix: scripted noise-environment campaigns
//! (compiled from [`Scenario`]s) against pools running the online
//! jitter monitor, across conditioning modes.
//!
//! Each cell of the matrix asserts three things:
//!
//! 1. **which gate fires first** — the jitter monitor (a `JitterDrift`
//!    incident) or the SP 800-90B health gate (an `Alarm` incident) —
//!    matching the physics of the scenario. Empirically the monitor is
//!    *always* first: subtle degradations (injection locking, mild
//!    thermal ramps, flicker-dominated regimes) keep the bit stream
//!    statistically plausible, so the 90B gates stay silent while the
//!    physics probes move. Only a severe thermal runaway eventually
//!    breaks the bit statistics too, and even then the monitor's
//!    journal entry precedes the alarm;
//! 2. **zero unhealthy bytes**: the delivered stream replays clean
//!    through a fresh continuous-test gate regardless of what the
//!    attacker did;
//! 3. **determinism**: the whole campaign is a pure function of the
//!    configuration and seed.
//!
//! One scenario — the sub-threshold cross-shard supply tone — is
//! *provably missed* by both per-shard gates; the matrix pins that
//! down (see DESIGN.md §12). The pool-level coherence detector exists
//! for exactly that cell: the `coherence_*` tests below assert the
//! same tone IS caught once cross-shard spectral comparison is enabled
//! (DESIGN.md §16), while a genuinely local tone does not trip the
//! quorum.

use std::time::Duration;

use trng_core::health::{HealthStatus, OnlineHealth};
use trng_core::trng::TrngConfig;
use trng_fpga_sim::scenario::Scenario;
use trng_fpga_sim::time::Ps;
use trng_pool::{
    compile_campaign, decode_coherence_detail, onset_bytes, CoherenceConfig, CoherenceResponse,
    Conditioning, EntropyPool, IncidentEvent, IncidentKind, MonitorConfig, PoolConfig, ProbeCode,
    ShardState,
};

/// What a scenario is expected to provoke. Probe codes from the drift
/// detail word: 1 = differential sigma, 2 = period.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expected {
    /// The monitor journals a drift; the 90B gate stays silent for the
    /// whole run (the bit statistics remain plausible).
    MonitorOnly {
        /// Expected probe code in the drift detail word.
        probe: u64,
    },
    /// Both layers fire, the monitor strictly first.
    MonitorThenAlarm {
        /// Expected probe code in the drift detail word.
        probe: u64,
    },
    /// Nothing fires — a documented detection gap.
    Undetected,
}

struct Cell {
    scenario: Scenario,
    conditioning: Conditioning,
    expected: Expected,
    /// Shards the campaign targets.
    targets: Vec<usize>,
    /// Bytes to pull from the pool (total, both shards).
    fill: usize,
    /// Upper bound on detection latency in target-shard bytes.
    max_latency: u64,
}

const ONSET: Ps = Ps::from_us(300.0);

/// Severe thermal runaway: the drift is so fast the delay factor rails
/// at its +50 % clamp within ~100 us, which eventually breaks the bit
/// statistics too — the one scripted scenario both gates catch.
fn thermal_runaway(onset: Ps) -> Scenario {
    let mut scenario = Scenario::thermal_ramp(onset, 5000.0);
    scenario.name = "thermal_runaway".into();
    scenario
}

fn cells() -> Vec<Cell> {
    let lock = |conditioning, fill| Cell {
        scenario: Scenario::injection_locking(ONSET, 1e12 / 480.0, 0.85),
        conditioning,
        expected: Expected::MonitorOnly { probe: 1 },
        targets: vec![0],
        fill,
        max_latency: 2048,
    };
    let ramp = |conditioning, fill, max_latency| Cell {
        scenario: Scenario::thermal_ramp(ONSET, 200.0),
        conditioning,
        expected: Expected::MonitorOnly { probe: 2 },
        targets: vec![0],
        fill,
        max_latency,
    };
    let flicker = |conditioning, fill, max_latency| Cell {
        scenario: Scenario::flicker_dominated(ONSET, Ps::from_ps(8.0), Ps::from_us(0.2)),
        conditioning,
        expected: Expected::MonitorOnly { probe: 1 },
        targets: vec![0],
        fill,
        max_latency,
    };
    let tone = |conditioning, fill| Cell {
        scenario: Scenario::shared_supply_tone(ONSET, 5e6, 0.004),
        conditioning,
        expected: Expected::Undetected,
        targets: vec![0, 1],
        fill,
        max_latency: 0,
    };
    vec![
        // DesignXor rows: onset = 535 bytes on the target shard.
        lock(Conditioning::DesignXor, 4096),
        ramp(Conditioning::DesignXor, 6144, 1024),
        flicker(Conditioning::DesignXor, 4096, 512),
        tone(Conditioning::DesignXor, 4096),
        Cell {
            scenario: thermal_runaway(ONSET),
            conditioning: Conditioning::DesignXor,
            expected: Expected::MonitorThenAlarm { probe: 2 },
            targets: vec![0],
            fill: 4096,
            max_latency: 1024,
        },
        // Raw rows: onset = 3750 bytes on the target shard.
        lock(Conditioning::Raw, 16 * 1024),
        ramp(Conditioning::Raw, 24 * 1024, 6144),
        flicker(Conditioning::Raw, 16 * 1024, 3072),
        tone(Conditioning::Raw, 16 * 1024),
    ]
}

/// The monitor's sampling budget per conditioning mode: Raw bytes span
/// 7x less simulated time, so observations are spaced further apart to
/// keep the probe overhead comparable.
fn monitor_for(conditioning: Conditioning) -> MonitorConfig {
    let interval = match conditioning {
        Conditioning::Raw => 1024,
        _ => 128,
    };
    MonitorConfig::default().with_interval_bytes(interval)
}

fn pool_for(cell: &Cell, seed: u64) -> EntropyPool {
    let base = TrngConfig::paper_k1();
    let faults = compile_campaign(
        &cell.scenario,
        cell.conditioning,
        &base.design,
        &cell.targets,
        false,
    );
    let config = PoolConfig::new(base, 2)
        .with_conditioning(cell.conditioning)
        .with_seed(seed)
        .with_block_bytes(64)
        .with_faults(faults)
        .with_monitor(monitor_for(cell.conditioning))
        .deterministic(true);
    EntropyPool::new(config).expect("pool")
}

/// Replays the delivered bytes through a fresh continuous-test gate.
/// The ones-fraction check only applies to unbiased (XOR-conditioned)
/// streams — raw packing keeps the source's inherent bias.
fn assert_stream_health_clean(bytes: &[u8], check_bias: bool) {
    let mut gate = OnlineHealth::new(0.5);
    let mut ones = 0u64;
    for &byte in bytes {
        for bit in (0..8).rev().map(|i| byte >> i & 1 == 1) {
            ones += u64::from(bit);
            assert_eq!(
                gate.push(bit),
                HealthStatus::Ok,
                "delivered stream alarmed the continuous tests"
            );
        }
    }
    if check_bias {
        let frac = ones as f64 / (bytes.len() as f64 * 8.0);
        assert!(
            (frac - 0.5).abs() < 0.015,
            "delivered stream is biased: ones fraction {frac}"
        );
    }
}

/// First journal event of `kind` on the given shard.
fn first_event(
    events: &[IncidentEvent],
    shard: usize,
    kind: IncidentKind,
) -> Option<IncidentEvent> {
    events
        .iter()
        .find(|e| e.shard == shard && e.kind == kind)
        .cloned()
}

fn assert_drift(name: &str, drift: &IncidentEvent, probe: u64, onset: u64, max_latency: u64) {
    assert_eq!(
        drift.detail >> 56,
        probe,
        "{name}: wrong probe tripped (detail {:#x})",
        drift.detail
    );
    assert!(
        drift.at_bytes >= onset,
        "{name}: drift at {} before onset {onset}",
        drift.at_bytes
    );
    assert!(
        drift.at_bytes - onset <= max_latency,
        "{name}: detection latency {} bytes exceeds {max_latency}",
        drift.at_bytes - onset
    );
}

#[test]
fn chaos_matrix_fires_the_right_gate_first_and_never_taints_the_stream() {
    for cell in cells() {
        let name = format!("{}/{:?}", cell.scenario.name, cell.conditioning);
        let onset = onset_bytes(
            cell.scenario.phases[0].onset,
            cell.conditioning,
            &TrngConfig::paper_k1().design,
        );

        let mut pool = pool_for(&cell, 0xAD5A);
        pool.wait_online(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{name}: admission failed: {e}"));
        let mut delivered = vec![0u8; cell.fill];
        pool.fill_bytes(&mut delivered)
            .unwrap_or_else(|e| panic!("{name}: fill failed: {e}"));
        assert_stream_health_clean(
            &delivered,
            matches!(cell.conditioning, Conditioning::DesignXor)
                && cell.expected == Expected::Undetected,
        );

        let stats = pool.stats();
        let target = cell.targets[0];
        let alarm = first_event(&stats.journal, target, IncidentKind::Alarm);
        let drift = first_event(&stats.journal, target, IncidentKind::JitterDrift);

        match cell.expected {
            Expected::MonitorOnly { probe } => {
                let drift = drift.unwrap_or_else(|| panic!("{name}: no monitor drift event"));
                assert_drift(&name, &drift, probe, onset, cell.max_latency);
                // The whole point: the bit-statistics gate stays silent
                // while the physics probe fires — for these scenarios
                // the 90B tests are provably blind (see DESIGN.md §12).
                assert!(
                    alarm.is_none(),
                    "{name}: health gate unexpectedly alarmed: {alarm:?}"
                );
                assert!(
                    stats.shards[target].monitor_drift_events >= 1,
                    "{name}: drift missing from stats"
                );
            }
            Expected::MonitorThenAlarm { probe } => {
                let drift = drift.unwrap_or_else(|| panic!("{name}: no monitor drift event"));
                let alarm = alarm.unwrap_or_else(|| panic!("{name}: no health alarm"));
                assert_drift(&name, &drift, probe, onset, cell.max_latency);
                assert!(
                    drift.seq < alarm.seq,
                    "{name}: the monitor must journal drift before the 90B alarm"
                );
                assert!(alarm.at_bytes >= onset);
                // Persistent environment: re-admission fails, retire.
                assert_eq!(stats.shards[target].state, ShardState::Retired);
            }
            Expected::Undetected => {
                assert!(alarm.is_none(), "{name}: unexpected health alarm {alarm:?}");
                assert!(
                    drift.is_none(),
                    "{name}: unexpected monitor drift {drift:?}"
                );
                // Documented gap: the tone rides through undetected and
                // the stream still replays clean (the conditioning and
                // entropy margin absorb it — see DESIGN.md §12).
                assert_eq!(stats.bytes_delivered, cell.fill as u64);
            }
        }

        // The monitor ran on schedule and published its estimates; the
        // untouched shard's estimate is live and non-degenerate.
        for s in &stats.shards {
            assert!(
                s.monitor_measurements > 0,
                "{name}: monitor never ran on shard {}",
                s.id
            );
        }
        let witness = &stats.shards[1 - target.min(1)];
        if !cell.targets.contains(&witness.id) {
            assert!(
                witness.jitter_fs > 0,
                "{name}: no jitter estimate on the healthy shard"
            );
        }
    }
}

#[test]
fn chaos_cells_replay_byte_identically() {
    // One representative detected cell and the undetected one: same
    // seed, same campaign => same bytes, same stats, same journal.
    for cell in [
        Cell {
            scenario: Scenario::injection_locking(ONSET, 1e12 / 480.0, 0.85),
            conditioning: Conditioning::DesignXor,
            expected: Expected::MonitorOnly { probe: 1 },
            targets: vec![0],
            fill: 4096,
            max_latency: 2048,
        },
        Cell {
            scenario: Scenario::shared_supply_tone(ONSET, 5e6, 0.004),
            conditioning: Conditioning::DesignXor,
            expected: Expected::Undetected,
            targets: vec![0, 1],
            fill: 4096,
            max_latency: 0,
        },
    ] {
        let mut a = pool_for(&cell, 0xD0_0D);
        let mut b = pool_for(&cell, 0xD0_0D);
        let mut x = vec![0u8; cell.fill];
        let mut y = vec![0u8; cell.fill];
        a.fill_bytes(&mut x).expect("fill");
        b.fill_bytes(&mut y).expect("fill");
        assert_eq!(x, y, "{}: replay diverged", cell.scenario.name);
        assert_eq!(
            a.stats(),
            b.stats(),
            "{}: stats diverged",
            cell.scenario.name
        );
    }
}

/// A 2-shard pool with the coherence detector on, running the cell's
/// scenario against `targets`.
fn coherence_pool(targets: &[usize], coherence: CoherenceConfig, seed: u64) -> EntropyPool {
    let base = TrngConfig::paper_k1();
    let scenario = Scenario::shared_supply_tone(ONSET, 5e6, 0.004);
    let faults = compile_campaign(
        &scenario,
        Conditioning::DesignXor,
        &base.design,
        targets,
        true,
    );
    let config = PoolConfig::new(base, 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(seed)
        .with_block_bytes(64)
        .with_faults(faults)
        .with_monitor(MonitorConfig::default().with_interval_bytes(128))
        .with_coherence(coherence)
        .deterministic(true);
    EntropyPool::new(config).expect("pool")
}

#[test]
fn coherence_detector_catches_the_shared_tone_the_gates_miss() {
    // The exact matrix cell documented as Undetected above — same
    // scenario, same amplitude, same conditioning — with the
    // cross-shard detector enabled. The per-shard gates must stay as
    // blind as ever; the quorum rule must fire.
    let mut pool = coherence_pool(&[0, 1], CoherenceConfig::new(), 0xAD5A);
    let mut delivered = vec![0u8; 8192];
    pool.fill_bytes(&mut delivered).expect("fill");
    assert_stream_health_clean(&delivered, true);

    let stats = pool.stats();
    let onset = onset_bytes(
        ONSET,
        Conditioning::DesignXor,
        &TrngConfig::paper_k1().design,
    );
    for shard in 0..2 {
        assert!(first_event(&stats.journal, shard, IncidentKind::Alarm).is_none());
        assert!(first_event(&stats.journal, shard, IncidentKind::JitterDrift).is_none());
    }
    let event = stats
        .journal
        .iter()
        .find(|e| e.kind == IncidentKind::CommonModeCoherence)
        .expect("the shared tone must trip the coherence quorum");
    // Journaled against the lowest-indexed quorum shard, after onset,
    // within a bounded detection latency (window x interval plus one
    // partially-filled window of slack).
    assert_eq!(event.shard, 0);
    assert!(
        event.at_bytes >= onset,
        "event at {} < onset {onset}",
        event.at_bytes
    );
    assert!(
        event.at_bytes - onset <= 2560,
        "detection latency {} bytes exceeds 2560",
        event.at_bytes - onset
    );
    // The packed detail decodes: coherence probe code, the aliased
    // 5 MHz line (bin 6.4 of a 16-sample window at 71.68 us spacing,
    // so bin 6 or 7), both shards in the quorum mask, and a magnitude
    // in the right ballpark for a 0.4 % (4000 ppm) tone.
    assert_eq!(
        ProbeCode::from_detail(event.detail),
        Some(ProbeCode::Coherence)
    );
    let (bin, mask, permille) = decode_coherence_detail(event.detail).expect("coherence detail");
    assert!((5..=7).contains(&bin), "aliased tone line at bin {bin}");
    assert_eq!(mask & 0b11, 0b11, "both shards in quorum mask {mask:#b}");
    assert!((2..=6).contains(&permille), "magnitude {permille} permille");
    // Surfaced through stats (and therefore serve metrics).
    let c = stats.coherence.as_ref().expect("coherence stats");
    assert!(c.events >= 1);
    assert!(c.passes > c.events);
    assert_eq!(c.bins.len(), c.magnitudes_ppm.len());
    let peak = c.magnitudes_ppm.iter().cloned().fold(0.0_f64, f64::max);
    assert!(peak > 2000.0, "peak line magnitude {peak} ppm too small");
}

#[test]
fn single_shard_tone_does_not_trip_the_quorum() {
    // A genuinely local tone — same spectral content, one shard — is
    // the per-shard monitor's jurisdiction, not the coherence
    // detector's; the quorum must hold.
    let mut pool = coherence_pool(&[0], CoherenceConfig::new(), 0xAD5A);
    let mut delivered = vec![0u8; 8192];
    pool.fill_bytes(&mut delivered).expect("fill");
    let stats = pool.stats();
    assert!(
        !stats
            .journal
            .iter()
            .any(|e| e.kind == IncidentKind::CommonModeCoherence),
        "single-shard tone must not reach the coherence quorum"
    );
    let c = stats.coherence.as_ref().expect("coherence stats");
    assert_eq!(c.events, 0);
    assert!(c.passes > 0, "detector never scanned");
    // The line is still visible in the magnitude telemetry — one
    // shard's spectrum shows it, it just cannot make quorum.
    let peak = c.magnitudes_ppm.iter().cloned().fold(0.0_f64, f64::max);
    assert!(peak > 2000.0, "local line magnitude {peak} ppm too small");
}

#[test]
fn alarm_all_escalation_quarantines_and_readmits_the_quorum() {
    // Under AlarmAll every quorum shard takes its normal alarm path:
    // quarantine, fresh admission test, readmission (the scripted tone
    // is transient, so the rebuilt sources come back clean).
    let mut pool = coherence_pool(
        &[0, 1],
        CoherenceConfig::new().with_response(CoherenceResponse::AlarmAll),
        0xAD5A,
    );
    let mut delivered = vec![0u8; 16384];
    pool.fill_bytes(&mut delivered).expect("fill");
    let stats = pool.stats();
    let event = stats
        .journal
        .iter()
        .find(|e| e.kind == IncidentKind::CommonModeCoherence)
        .expect("coherence event");
    for shard in 0..2 {
        let alarm = first_event(&stats.journal, shard, IncidentKind::Alarm)
            .unwrap_or_else(|| panic!("shard {shard}: no escalated alarm"));
        assert!(
            alarm.seq > event.seq,
            "shard {shard}: alarm precedes the coherence event"
        );
        assert!(
            first_event(&stats.journal, shard, IncidentKind::Quarantine).is_some(),
            "shard {shard}: no quarantine"
        );
        assert!(
            first_event(&stats.journal, shard, IncidentKind::Readmit).is_some(),
            "shard {shard}: never readmitted"
        );
        assert_eq!(stats.shards[shard].state, ShardState::Online);
        assert!(stats.shards[shard].alarms >= 1);
    }
}

#[test]
fn coherence_runs_replay_byte_identically() {
    // Detector state is part of the deterministic replay contract:
    // same config, same seed => same bytes, same stats (including
    // passes/events/magnitudes), same journal.
    for targets in [vec![0usize, 1], vec![0]] {
        let mut a = coherence_pool(&targets, CoherenceConfig::new(), 0xD0_0D);
        let mut b = coherence_pool(&targets, CoherenceConfig::new(), 0xD0_0D);
        let mut x = vec![0u8; 8192];
        let mut y = vec![0u8; 8192];
        a.fill_bytes(&mut x).expect("fill");
        b.fill_bytes(&mut y).expect("fill");
        assert_eq!(x, y, "replay diverged for targets {targets:?}");
        assert_eq!(
            a.stats(),
            b.stats(),
            "stats diverged for targets {targets:?}"
        );
    }
}

#[test]
fn multi_phase_supply_ramp_escalates_until_detected() {
    // The escalating supply ramp exercises fault *escalation*: each
    // phase supersedes the previous environment without a quarantine
    // in between. The early sub-threshold phases must ride through;
    // once the tone amplitude crosses the period band the monitor
    // fires.
    let base = TrngConfig::paper_k1();
    let scenario = Scenario::supply_ramp(Ps::from_us(200.0), 5e6, 0.2, 4, Ps::from_us(150.0));
    let faults = compile_campaign(
        &scenario,
        Conditioning::DesignXor,
        &base.design,
        &[0],
        false,
    );
    let config = PoolConfig::new(base, 2)
        .with_conditioning(Conditioning::DesignXor)
        .with_seed(0x5A3B)
        .with_block_bytes(64)
        .with_faults(faults)
        .with_monitor(MonitorConfig::default().with_interval_bytes(128))
        .deterministic(true);
    let mut pool = EntropyPool::new(config).expect("pool");
    let mut delivered = vec![0u8; 8192];
    pool.fill_bytes(&mut delivered).expect("fill");
    assert_stream_health_clean(&delivered, false);

    let stats = pool.stats();
    let drift = stats
        .journal
        .iter()
        .find(|e| e.shard == 0 && e.kind == IncidentKind::JitterDrift)
        .expect("the ramp must eventually trip the monitor");
    // Not before the first phase onset — the early phases are quiet.
    let first_onset = onset_bytes(
        scenario.phases[0].onset,
        Conditioning::DesignXor,
        &TrngConfig::paper_k1().design,
    );
    assert!(drift.at_bytes >= first_onset);
}
